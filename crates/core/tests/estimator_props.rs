//! Property battery for the rendezvous-latency estimator behind
//! adaptive watchdog windows ([`LatencyEstimator`], [`AdaptiveWindow`]).
//!
//! The estimator's contract is deliberately strong — its output is a
//! pure function of the retained sample *multiset* — because the
//! watchdog derives abort decisions from it. The properties checked:
//!
//! 1. any reported quantile lies within the retained samples' min/max;
//! 2. quantiles are monotone in the requested rank;
//! 3. window eviction forgets old regimes (a burst of fast samples
//!    after a slow regime pulls the window back down once the slow
//!    samples age out);
//! 4. the same samples in any order yield the same window.

use std::time::Duration;

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use script_core::{AdaptiveWindow, LatencyEstimator};

/// Feeds every duration (as micros) into a fresh estimator of the given
/// capacity.
fn fed(capacity: usize, micros: &[u64]) -> LatencyEstimator {
    let est = LatencyEstimator::new(capacity);
    for &us in micros {
        est.record(Duration::from_micros(us));
    }
    est
}

/// Deterministic xorshift64* Fisher–Yates shuffle, so the permutation
/// property needs no RNG dependency and replays from the proptest seed.
fn shuffled(samples: &[u64], mut state: u64) -> Vec<u64> {
    let mut out = samples.to_vec();
    state = state.max(1);
    for i in (1..out.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.swap(i, (state % (i as u64 + 1)) as usize);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every quantile of a non-empty estimator lies within the min and
    /// max of the samples it has *retained* (the last `capacity`).
    #[test]
    fn quantiles_lie_within_retained_extremes(
        samples in pvec(1u64..=1_000_000, 1..400),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let capacity = 256usize;
        let est = fed(capacity, &samples);
        let retained = &samples[samples.len().saturating_sub(capacity)..];
        let lo = Duration::from_micros(*retained.iter().min().unwrap());
        let hi = Duration::from_micros(*retained.iter().max().unwrap());
        let got = est.quantile(q).expect("non-empty estimator reports");
        prop_assert!(got >= lo && got <= hi,
            "quantile({q}) = {got:?} outside retained [{lo:?}, {hi:?}]");
    }

    /// Quantiles are monotone: a higher requested rank never reports a
    /// smaller latency.
    #[test]
    fn quantiles_are_monotone_in_rank(
        samples in pvec(1u64..=1_000_000, 1..300),
        a in 0u64..=1000,
        b in 0u64..=1000,
    ) {
        let (a, b) = (a as f64 / 1000.0, b as f64 / 1000.0);
        let (lo_q, hi_q) = if a <= b { (a, b) } else { (b, a) };
        let est = fed(128, &samples);
        let lo = est.quantile(lo_q).unwrap();
        let hi = est.quantile(hi_q).unwrap();
        prop_assert!(lo <= hi,
            "quantile({lo_q}) = {lo:?} > quantile({hi_q}) = {hi:?}");
    }

    /// Eviction forgets old regimes: after a full window of fast
    /// samples, a preceding slow regime no longer influences the
    /// quantile or the adaptive window — the window collapses to the
    /// policy floor instead of staying pinned wide.
    #[test]
    fn eviction_forgets_old_regimes(
        capacity in 4usize..64,
        slow_ms in 10u64..100,
        fast_us in 1u64..100,
    ) {
        let est = LatencyEstimator::new(capacity);
        let slow = Duration::from_millis(slow_ms);
        let fast = Duration::from_micros(fast_us);
        for _ in 0..capacity {
            est.record(slow);
        }
        let policy = AdaptiveWindow::default();
        let (wide, observed) = policy.window_for(&est);
        prop_assert_eq!(observed, Some(slow));
        for _ in 0..capacity {
            est.record(fast);
        }
        prop_assert_eq!(est.quantile(0.99), Some(fast),
            "a full window of fast samples must evict the slow regime");
        let (narrow, observed) = policy.window_for(&est);
        prop_assert_eq!(observed, Some(fast));
        prop_assert_eq!(narrow, policy.min_window,
            "fast-regime windows clamp to the policy floor");
        prop_assert!(wide > narrow,
            "the slow-regime window ({wide:?}) must exceed the fast one ({narrow:?})");
    }

    /// Order independence: identical samples fed in any order yield the
    /// same window and the same quantiles. (Valid because the sample
    /// count never exceeds capacity, so the retained multiset is equal.)
    #[test]
    fn sample_order_does_not_change_the_window(
        samples in pvec(1u64..=1_000_000, 1..128),
        seed in any::<u64>(),
    ) {
        let capacity = 128usize;
        let a = fed(capacity, &samples);
        let b = fed(capacity, &shuffled(&samples, seed));
        let policy = AdaptiveWindow::default();
        prop_assert_eq!(policy.window_for(&a), policy.window_for(&b));
        prop_assert_eq!(a.quantile(0.5), b.quantile(0.5));
        prop_assert_eq!(a.quantile(0.99), b.quantile(0.99));
    }
}

/// Deterministic spot checks complementing the properties above.
#[test]
fn median_of_known_multiset() {
    let est = fed(16, &[100, 200, 300, 400, 500]);
    assert_eq!(est.quantile(0.5), Some(Duration::from_micros(300)));
    assert_eq!(est.quantile(0.0), Some(Duration::from_micros(100)));
    assert_eq!(est.quantile(1.0), Some(Duration::from_micros(500)));
}

#[test]
fn empty_estimator_reports_nothing_and_initial_window() {
    let est = LatencyEstimator::new(8);
    assert_eq!(est.quantile(0.99), None);
    let policy = AdaptiveWindow::default();
    assert_eq!(policy.window_for(&est), (policy.initial, None));
}
