//! The crate-wide error type.

use std::error::Error;
use std::fmt;

use crate::RoleId;

/// Error returned by script construction, enrollment, and inter-role
/// communication.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScriptError {
    /// The addressed role has terminated, or the cast froze without it
    /// ever being filled.
    ///
    /// This is the paper's "distinguished value" returned by attempts to
    /// communicate with an unfilled role.
    RoleUnavailable(RoleId),
    /// Every possible communication partner of the operation has
    /// terminated.
    AllPartnersTerminated,
    /// The performance was aborted (usually because a role body
    /// panicked); all participants are released with this error.
    PerformanceAborted,
    /// This role's own body panicked; returned to the enroller of the
    /// panicking role (its partners see [`ScriptError::PerformanceAborted`]).
    RolePanicked(RoleId),
    /// A deadline expired before the operation completed.
    Timeout,
    /// The instance watchdog aborted the performance because it made no
    /// communication progress within the configured quiescence window
    /// (see `Instance::set_watchdog`).
    Stalled,
    /// A non-blocking enrollment could not be admitted immediately
    /// (see `Enrollment::non_blocking` — "script enrollment as a
    /// guard").
    WouldBlock,
    /// The named role does not exist in the script.
    UnknownRole(RoleId),
    /// A role attempted to communicate with itself.
    SelfCommunication,
    /// A selection was attempted with no (enabled) guards.
    NoEnabledGuards,
    /// The instance was closed; no further enrollments are accepted.
    InstanceClosed,
    /// The script declaration is invalid (builder-time validation).
    InvalidSpec(String),
    /// Enrollment parameters did not match the role's declared parameter
    /// type. Cannot happen when using the typed handles produced by the
    /// builder.
    ParamType {
        /// The role whose body was invoked.
        role: RoleId,
        /// The declared Rust type of the role's parameters.
        expected: &'static str,
    },
    /// An application-level error raised by a role body.
    App(String),
}

impl ScriptError {
    /// Convenience constructor for application-level role-body errors.
    pub fn app(msg: impl Into<String>) -> Self {
        ScriptError::App(msg.into())
    }

    /// Is this a transient failure worth retrying (timeouts, aborted or
    /// stalled performances)? Structural errors — unknown roles, bad
    /// parameters, a closed instance — are permanent and are not.
    ///
    /// This is the default predicate used by `RetryPolicy`-driven
    /// runners.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ScriptError::Timeout
                | ScriptError::Stalled
                | ScriptError::PerformanceAborted
                | ScriptError::WouldBlock
        )
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::RoleUnavailable(r) => {
                write!(f, "role {r} terminated or will never be filled")
            }
            ScriptError::AllPartnersTerminated => {
                write!(f, "all possible partner roles terminated")
            }
            ScriptError::PerformanceAborted => write!(f, "performance aborted"),
            ScriptError::RolePanicked(r) => write!(f, "role {r} panicked"),
            ScriptError::Timeout => write!(f, "operation timed out"),
            ScriptError::Stalled => {
                write!(f, "performance stalled (watchdog quiescence deadline)")
            }
            ScriptError::WouldBlock => {
                write!(f, "enrollment would block (no immediate admission)")
            }
            ScriptError::UnknownRole(r) => write!(f, "role {r} is not declared in the script"),
            ScriptError::SelfCommunication => write!(f, "a role cannot communicate with itself"),
            ScriptError::NoEnabledGuards => write!(f, "selection has no enabled guards"),
            ScriptError::InstanceClosed => write!(f, "script instance closed"),
            ScriptError::InvalidSpec(msg) => write!(f, "invalid script: {msg}"),
            ScriptError::ParamType { role, expected } => {
                write!(f, "parameters for role {role} must have type {expected}")
            }
            ScriptError::App(msg) => write!(f, "role error: {msg}"),
        }
    }
}

impl Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_role() {
        let e = ScriptError::RoleUnavailable(RoleId::indexed("recipient", 2));
        assert!(e.to_string().contains("recipient[2]"));
    }

    #[test]
    fn app_constructor() {
        assert_eq!(
            ScriptError::app("lock denied"),
            ScriptError::App("lock denied".into())
        );
    }

    #[test]
    fn transient_classification() {
        assert!(ScriptError::Timeout.is_transient());
        assert!(ScriptError::Stalled.is_transient());
        assert!(ScriptError::PerformanceAborted.is_transient());
        assert!(!ScriptError::InstanceClosed.is_transient());
        assert!(!ScriptError::UnknownRole(RoleId::new("r")).is_transient());
        assert!(!ScriptError::App("x".into()).is_transient());
    }

    #[test]
    fn implements_std_error() {
        fn is_error<E: Error + Send + Sync + 'static>(_: &E) {}
        is_error(&ScriptError::Timeout);
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants = [
            ScriptError::RoleUnavailable(RoleId::new("r")),
            ScriptError::AllPartnersTerminated,
            ScriptError::PerformanceAborted,
            ScriptError::RolePanicked(RoleId::new("r")),
            ScriptError::Timeout,
            ScriptError::Stalled,
            ScriptError::WouldBlock,
            ScriptError::UnknownRole(RoleId::new("r")),
            ScriptError::SelfCommunication,
            ScriptError::NoEnabledGuards,
            ScriptError::InstanceClosed,
            ScriptError::InvalidSpec("x".into()),
            ScriptError::ParamType {
                role: RoleId::new("r"),
                expected: "u32",
            },
            ScriptError::App("x".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
