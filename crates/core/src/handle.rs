//! Typed handles to declared roles, used at enrollment time.

use std::fmt;
use std::marker::PhantomData;

use crate::spec::FamilySize;
use crate::RoleId;

/// A typed handle to a singleton role.
///
/// Produced by [`ScriptBuilder::role`](crate::ScriptBuilder::role); carries
/// the role's parameter type `P` and result type `O` so that
/// [`Instance::enroll`](crate::Instance::enroll) is fully type-checked.
pub struct RoleHandle<M, P, O> {
    pub(crate) id: RoleId,
    pub(crate) _marker: PhantomData<fn(M, P) -> O>,
}

impl<M, P, O> RoleHandle<M, P, O> {
    /// The role's identity.
    pub fn id(&self) -> &RoleId {
        &self.id
    }
}

impl<M, P, O> Clone for RoleHandle<M, P, O> {
    fn clone(&self) -> Self {
        Self {
            id: self.id.clone(),
            _marker: PhantomData,
        }
    }
}

impl<M, P, O> fmt::Debug for RoleHandle<M, P, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoleHandle").field("id", &self.id).finish()
    }
}

/// A typed handle to an indexed role family.
///
/// Produced by [`ScriptBuilder::family`](crate::ScriptBuilder::family) and
/// [`ScriptBuilder::open_family`](crate::ScriptBuilder::open_family).
pub struct FamilyHandle<M, P, O> {
    pub(crate) name: String,
    pub(crate) size: FamilySize,
    pub(crate) _marker: PhantomData<fn(M, P) -> O>,
}

impl<M, P, O> FamilyHandle<M, P, O> {
    /// The family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared size of the family.
    pub fn size(&self) -> FamilySize {
        self.size
    }

    /// The [`RoleId`] of member `index`.
    pub fn at(&self, index: usize) -> RoleId {
        RoleId::indexed(self.name.clone(), index)
    }
}

impl<M, P, O> Clone for FamilyHandle<M, P, O> {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            size: self.size,
            _marker: PhantomData,
        }
    }
}

impl<M, P, O> fmt::Debug for FamilyHandle<M, P, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FamilyHandle")
            .field("name", &self.name)
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> RoleHandle<u8, (), ()> {
        RoleHandle {
            id: RoleId::new("sender"),
            _marker: PhantomData,
        }
    }

    #[test]
    fn role_handle_exposes_id() {
        let h = handle();
        assert_eq!(h.id(), &RoleId::new("sender"));
        assert!(format!("{h:?}").contains("sender"));
        let h2 = h.clone();
        assert_eq!(h2.id(), h.id());
    }

    #[test]
    fn family_handle_indexes() {
        let f: FamilyHandle<u8, (), ()> = FamilyHandle {
            name: "recipient".into(),
            size: FamilySize::Fixed(5),
            _marker: PhantomData,
        };
        assert_eq!(f.at(2), RoleId::indexed("recipient", 2));
        assert_eq!(f.name(), "recipient");
        assert_eq!(f.size(), FamilySize::Fixed(5));
        assert!(format!("{:?}", f.clone()).contains("recipient"));
    }
}
