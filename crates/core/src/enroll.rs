//! Enrollment options: process identity and partner naming.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::{ProcessId, RoleId};

/// A constraint on which process may fill a role, from the point of view
/// of one enrolling process.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProcessSel {
    /// Any process is acceptable (partners-unnamed).
    #[default]
    Any,
    /// Exactly the named process (partners-named, as in "with `T` as
    /// transmitter").
    Is(ProcessId),
    /// Any of the named processes (the paper's "role fulfilled by either
    /// process A or process B").
    OneOf(BTreeSet<ProcessId>),
}

impl ProcessSel {
    /// Constraint requiring exactly `p`.
    pub fn is(p: impl Into<ProcessId>) -> Self {
        ProcessSel::Is(p.into())
    }

    /// Constraint allowing any of `ps`.
    pub fn one_of<I, P>(ps: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<ProcessId>,
    {
        ProcessSel::OneOf(ps.into_iter().map(Into::into).collect())
    }

    /// Does this constraint admit `p`?
    pub fn allows(&self, p: &ProcessId) -> bool {
        match self {
            ProcessSel::Any => true,
            ProcessSel::Is(q) => q == p,
            ProcessSel::OneOf(set) => set.contains(p),
        }
    }
}

/// The partner constraints of one enrollment: a (partial) map from roles
/// to acceptable processes.
///
/// Supports all three regimes of the paper: *partners-named* (constrain
/// every partner role), *partners-unnamed* (constrain nothing — the
/// default), and mixtures.
///
/// # Example
///
/// ```
/// use script_core::{Partners, ProcessSel, RoleId};
///
/// // "I want to see T as transmitter, and either A or B as recipient 0."
/// let partners = Partners::any()
///     .with("transmitter", ProcessSel::is("T"))
///     .with(RoleId::indexed("recipient", 0), ProcessSel::one_of(["A", "B"]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Partners {
    constraints: BTreeMap<RoleId, ProcessSel>,
}

impl Partners {
    /// No constraints: partners-unnamed enrollment.
    pub fn any() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a constraint for `role`.
    pub fn with(mut self, role: impl Into<RoleId>, sel: ProcessSel) -> Self {
        self.constraints.insert(role.into(), sel);
        self
    }

    /// Shorthand for `with(role, ProcessSel::is(process))`.
    pub fn named(self, role: impl Into<RoleId>, process: impl Into<ProcessId>) -> Self {
        self.with(role, ProcessSel::is(process))
    }

    /// Does this enrollment accept `process` in `role`?
    ///
    /// Roles without an explicit constraint accept anyone.
    pub fn allows(&self, role: &RoleId, process: &ProcessId) -> bool {
        self.constraints
            .get(role)
            .map(|sel| sel.allows(process))
            .unwrap_or(true)
    }

    /// Iterates over the explicit constraints.
    pub fn iter(&self) -> impl Iterator<Item = (&RoleId, &ProcessSel)> {
        self.constraints.iter()
    }

    /// Returns `true` if there are no explicit constraints.
    pub fn is_unconstrained(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// Options accompanying an enrollment: the enrolling process's identity,
/// its partner constraints, and an optional deadline.
///
/// # Example
///
/// ```
/// use script_core::{Enrollment, ProcessSel};
/// use std::time::Duration;
///
/// let e = Enrollment::as_process("T")
///     .partner("recipient", ProcessSel::is("P"))
///     .timeout(Duration::from_secs(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Enrollment {
    pub(crate) process: Option<ProcessId>,
    pub(crate) partners: Partners,
    pub(crate) deadline: Option<DeadlineSpec>,
    pub(crate) non_blocking: bool,
}

/// How an enrollment deadline was specified. A relative budget is
/// resolved to an absolute cutoff at each enrollment attempt, so that a
/// cloned `Enrollment` (e.g. under
/// [`enroll_with_retry`](crate::ScriptInstance::enroll_with_retry))
/// grants every attempt its full budget instead of re-using a cutoff
/// that already expired with the first attempt.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeadlineSpec {
    /// Absolute wall-clock cutoff, fixed when the option was built.
    At(Instant),
    /// Relative budget, resolved when the enrollment starts.
    After(Duration),
}

impl DeadlineSpec {
    pub(crate) fn resolve(self) -> Instant {
        match self {
            DeadlineSpec::At(d) => d,
            DeadlineSpec::After(t) => Instant::now() + t,
        }
    }
}

impl Enrollment {
    /// Anonymous, unconstrained, unbounded enrollment (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enrolls under the given process identity, so that partner-named
    /// enrollments of other processes can refer to this one.
    pub fn as_process(process: impl Into<ProcessId>) -> Self {
        Self {
            process: Some(process.into()),
            ..Self::default()
        }
    }

    /// Adds a partner constraint.
    pub fn partner(mut self, role: impl Into<RoleId>, sel: ProcessSel) -> Self {
        self.partners = self.partners.with(role, sel);
        self
    }

    /// Replaces all partner constraints at once.
    pub fn partners(mut self, partners: Partners) -> Self {
        self.partners = partners;
        self
    }

    /// Fails the enrollment (and the whole run of the role, if it has not
    /// started) after `timeout`.
    ///
    /// The deadline covers the wait-to-be-admitted phase and every
    /// blocking communication performed by the role body through its
    /// context. The budget is relative: each enrollment started from
    /// this option set (including every attempt under
    /// [`enroll_with_retry`](crate::Instance::enroll_with_retry))
    /// gets the full `timeout` from the moment it enrolls.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(DeadlineSpec::After(timeout));
        self
    }

    /// Sets an absolute deadline instead of a relative timeout.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(DeadlineSpec::At(deadline));
        self
    }

    /// Makes the enrollment non-blocking: if it cannot be admitted to a
    /// performance immediately, it fails with
    /// [`ScriptError::WouldBlock`](crate::ScriptError::WouldBlock)
    /// instead of queueing.
    ///
    /// This is the paper's "script enrollment acting as a guard": a
    /// process can offer to participate and fall through to an
    /// alternative when no performance is ready for it.
    pub fn non_blocking(mut self) -> Self {
        self.non_blocking = true;
        self
    }
}

impl fmt::Display for Partners {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return f.write_str("[any partners]");
        }
        write!(f, "[")?;
        for (i, (role, sel)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            match sel {
                ProcessSel::Any => write!(f, "{role}: any")?,
                ProcessSel::Is(p) => write!(f, "{role}: {p}")?,
                ProcessSel::OneOf(ps) => {
                    write!(f, "{role}: one of ")?;
                    for (j, p) in ps.iter().enumerate() {
                        if j > 0 {
                            write!(f, "|")?;
                        }
                        write!(f, "{p}")?;
                    }
                }
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_allows_everyone() {
        let p = Partners::any();
        assert!(p.allows(&RoleId::new("r"), &ProcessId::new("X")));
        assert!(p.is_unconstrained());
    }

    #[test]
    fn is_constraint_matches_exactly() {
        let p = Partners::any().named("r", "A");
        assert!(p.allows(&RoleId::new("r"), &ProcessId::new("A")));
        assert!(!p.allows(&RoleId::new("r"), &ProcessId::new("B")));
        // Unconstrained roles still accept anyone.
        assert!(p.allows(&RoleId::new("s"), &ProcessId::new("B")));
    }

    #[test]
    fn one_of_constraint() {
        let sel = ProcessSel::one_of(["A", "B"]);
        assert!(sel.allows(&ProcessId::new("A")));
        assert!(sel.allows(&ProcessId::new("B")));
        assert!(!sel.allows(&ProcessId::new("C")));
    }

    #[test]
    fn with_replaces_existing() {
        let p = Partners::any()
            .named("r", "A")
            .with("r", ProcessSel::is("B"));
        assert!(!p.allows(&RoleId::new("r"), &ProcessId::new("A")));
        assert!(p.allows(&RoleId::new("r"), &ProcessId::new("B")));
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn enrollment_builder() {
        let e = Enrollment::as_process("T")
            .partner("x", ProcessSel::Any)
            .timeout(Duration::from_millis(1));
        assert_eq!(e.process, Some(ProcessId::new("T")));
        assert!(e.deadline.is_some());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Partners::any().to_string(), "[any partners]");
        let p = Partners::any()
            .named("a", "P")
            .with("b", ProcessSel::one_of(["Q", "R"]))
            .with("c", ProcessSel::Any);
        let s = p.to_string();
        assert!(s.contains("a: P"));
        assert!(s.contains("b: one of Q|R"));
        assert!(s.contains("c: any"));
    }
}
