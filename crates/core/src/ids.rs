//! Identifiers for roles, processes, and performances.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The identity of a role within a script: a name, optionally with an
/// index when the role belongs to an indexed family.
///
/// The paper writes singleton roles as `sender` and family members as
/// `recipient[3]`; [`RoleId`] renders the same way in its `Display`
/// implementation.
///
/// # Example
///
/// ```
/// use script_core::RoleId;
///
/// let sender = RoleId::new("sender");
/// let third = RoleId::indexed("recipient", 3);
/// assert_eq!(sender.to_string(), "sender");
/// assert_eq!(third.to_string(), "recipient[3]");
/// assert_eq!(third.index(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoleId {
    name: String,
    index: Option<usize>,
}

impl RoleId {
    /// A singleton role (no index).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            index: None,
        }
    }

    /// Member `index` of the role family `name`.
    pub fn indexed(name: impl Into<String>, index: usize) -> Self {
        Self {
            name: name.into(),
            index: Some(index),
        }
    }

    /// The role (or family) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family index, if this is a family member.
    pub fn index(&self) -> Option<usize> {
        self.index
    }

    /// Returns `true` if this id belongs to family `family`.
    pub fn in_family(&self, family: &str) -> bool {
        self.index.is_some() && self.name == family
    }
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.name, i),
            None => f.write_str(&self.name),
        }
    }
}

impl From<&str> for RoleId {
    fn from(name: &str) -> Self {
        RoleId::new(name)
    }
}

impl From<(&str, usize)> for RoleId {
    fn from((name, index): (&str, usize)) -> Self {
        RoleId::indexed(name, index)
    }
}

/// The identity of an (actual) enrolling process.
///
/// Partner-named enrollment matches on these identities. Processes that do
/// not name themselves are given a fresh anonymous identity which no
/// partner constraint can name.
///
/// # Example
///
/// ```
/// use script_core::ProcessId;
///
/// let p = ProcessId::new("T");
/// assert_eq!(p.to_string(), "T");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(String);

impl ProcessId {
    /// A named process identity.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// A fresh anonymous identity, unequal to every named identity.
    pub fn anonymous() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        Self(format!("<anon-{}>", NEXT.fetch_add(1, Ordering::Relaxed)))
    }

    /// The process name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ProcessId {
    fn from(name: &str) -> Self {
        ProcessId::new(name)
    }
}

impl From<String> for ProcessId {
    fn from(name: String) -> Self {
        ProcessId::new(name)
    }
}

/// The sequence number of a performance of a script instance.
///
/// Sequence numbers record *start* order: they are assigned strictly
/// increasing, beginning at 0. Performances of one instance may overlap
/// (the paper's §II overlapping activations), so they need not
/// *complete* in sequence order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PerformanceId(pub u64);

impl fmt::Display for PerformanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "performance#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RoleId::new("writer").to_string(), "writer");
        assert_eq!(RoleId::indexed("manager", 0).to_string(), "manager[0]");
        assert_eq!(PerformanceId(4).to_string(), "performance#4");
    }

    #[test]
    fn family_membership() {
        let r = RoleId::indexed("recipient", 1);
        assert!(r.in_family("recipient"));
        assert!(!r.in_family("sender"));
        assert!(!RoleId::new("recipient").in_family("recipient"));
    }

    #[test]
    fn conversions() {
        assert_eq!(RoleId::from("x"), RoleId::new("x"));
        assert_eq!(RoleId::from(("y", 2)), RoleId::indexed("y", 2));
        assert_eq!(ProcessId::from("P"), ProcessId::new("P"));
    }

    #[test]
    fn anonymous_ids_are_unique() {
        assert_ne!(ProcessId::anonymous(), ProcessId::anonymous());
        assert_ne!(ProcessId::anonymous(), ProcessId::new("<anon-0>").clone());
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![
            RoleId::indexed("a", 2),
            RoleId::new("a"),
            RoleId::indexed("a", 1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                RoleId::new("a"),
                RoleId::indexed("a", 1),
                RoleId::indexed("a", 2),
            ]
        );
    }

    #[test]
    fn ids_are_serde_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<RoleId>();
        assert_serde::<ProcessId>();
        assert_serde::<PerformanceId>();
    }
}
