//! Script declarations: role definitions, the builder, and validation.

use std::any::Any;
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::ctx::RoleCtx;
use crate::policy::{CriticalEntry, CriticalSet, Initiation, Termination};
use crate::{FamilyHandle, RoleHandle, RoleId, ScriptError};

/// The declared size of a role family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilySize {
    /// Exactly this many members, `recipient[0..n]`.
    Fixed(usize),
    /// An *open-ended* family (paper §V future work): membership is
    /// determined per performance, optionally bounded by `max`.
    Open {
        /// Upper bound on members per performance, if any.
        max: Option<usize>,
    },
}

/// An expanded critical set: the exact role ids required, plus
/// `(family, minimum count)` requirements for `FamilyAtLeast` entries.
pub(crate) type ExpandedCritical = (BTreeSet<RoleId>, Vec<(String, usize)>);

/// Type-erased role body: `(ctx, boxed params) -> boxed output`.
pub(crate) type ErasedBody<M> = Arc<
    dyn Fn(&mut RoleCtx<M>, Box<dyn Any + Send>) -> Result<Box<dyn Any + Send>, ScriptError>
        + Send
        + Sync,
>;

/// One role (or role family) declaration.
pub(crate) struct RoleDef<M> {
    pub(crate) name: String,
    /// `None` for singleton roles.
    pub(crate) family: Option<FamilySize>,
    pub(crate) body: ErasedBody<M>,
    /// Rust type name of the parameters, for error reporting.
    pub(crate) param_ty: &'static str,
}

impl<M> fmt::Debug for RoleDef<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoleDef")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("param_ty", &self.param_ty)
            .finish()
    }
}

/// The validated, immutable declaration of a script.
pub(crate) struct ScriptSpec<M> {
    pub(crate) name: String,
    pub(crate) roles: Vec<RoleDef<M>>,
    pub(crate) initiation: Initiation,
    pub(crate) termination: Termination,
    /// Alternative critical role sets. Empty only for scripts containing
    /// open families with no explicit critical set, in which case the
    /// cast freezes solely via `seal_cast`.
    pub(crate) critical: Vec<CriticalSet>,
}

impl<M> ScriptSpec<M> {
    pub(crate) fn role_def(&self, name: &str) -> Option<&RoleDef<M>> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// All concrete role ids of fixed roles and families (open families
    /// contribute none).
    pub(crate) fn fixed_role_ids(&self) -> Vec<RoleId> {
        let mut out = Vec::new();
        for def in &self.roles {
            match def.family {
                None => out.push(RoleId::new(def.name.clone())),
                Some(FamilySize::Fixed(n)) => {
                    out.extend((0..n).map(|i| RoleId::indexed(def.name.clone(), i)))
                }
                Some(FamilySize::Open { .. }) => {}
            }
        }
        out
    }

    pub(crate) fn has_open_family(&self) -> bool {
        self.roles
            .iter()
            .any(|r| matches!(r.family, Some(FamilySize::Open { .. })))
    }

    /// Checks that a role id refers to a declared role and is in range.
    pub(crate) fn validate_role_id(&self, id: &RoleId) -> Result<(), ScriptError> {
        let def = self
            .role_def(id.name())
            .ok_or_else(|| ScriptError::UnknownRole(id.clone()))?;
        match (def.family, id.index()) {
            (None, None) => Ok(()),
            (Some(FamilySize::Fixed(n)), Some(i)) if i < n => Ok(()),
            (Some(FamilySize::Open { max }), Some(i)) if max.is_none_or(|m| i < m) => Ok(()),
            _ => Err(ScriptError::UnknownRole(id.clone())),
        }
    }

    /// Expands each critical set against this spec's family sizes.
    pub(crate) fn expanded_critical(&self) -> Vec<ExpandedCritical> {
        let sizes = |name: &str| match self.role_def(name).and_then(|d| d.family) {
            Some(FamilySize::Fixed(n)) => Some(n),
            _ => None,
        };
        self.critical.iter().map(|cs| cs.expand(&sizes)).collect()
    }
}

impl<M> fmt::Debug for ScriptSpec<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptSpec")
            .field("name", &self.name)
            .field("roles", &self.roles)
            .field("initiation", &self.initiation)
            .field("termination", &self.termination)
            .field("critical", &self.critical)
            .finish()
    }
}

/// Incrementally declares a script: roles, families, policies, critical
/// sets. Obtained from [`Script::builder`](crate::Script::builder).
///
/// # Example
///
/// ```
/// use script_core::{Initiation, Script, Termination};
///
/// let mut b = Script::<u64>::builder("relay");
/// let left = b.role("left", |ctx, n: u64| {
///     ctx.send(&"right".into(), n + 1)?;
///     Ok(())
/// });
/// let right = b.role("right", |ctx, ()| ctx.recv_from(&"left".into()));
/// b.initiation(Initiation::Delayed).termination(Termination::Delayed);
/// let script = b.build()?;
/// # let _ = (left, right, script);
/// # Ok::<(), script_core::ScriptError>(())
/// ```
pub struct ScriptBuilder<M> {
    name: String,
    roles: Vec<RoleDef<M>>,
    initiation: Initiation,
    termination: Termination,
    critical: Vec<CriticalSet>,
}

impl<M> fmt::Debug for ScriptBuilder<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptBuilder")
            .field("name", &self.name)
            .field("roles", &self.roles)
            .finish()
    }
}

impl<M: Send + Clone + 'static> ScriptBuilder<M> {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            roles: Vec::new(),
            initiation: Initiation::default(),
            termination: Termination::default(),
            critical: Vec::new(),
        }
    }

    fn erase<P, O, F>(body: F) -> ErasedBody<M>
    where
        P: Send + 'static,
        O: Send + 'static,
        F: Fn(&mut RoleCtx<M>, P) -> Result<O, ScriptError> + Send + Sync + 'static,
    {
        Arc::new(move |ctx, boxed| {
            let params = boxed.downcast::<P>().map_err(|_| ScriptError::ParamType {
                role: ctx.role().clone(),
                expected: std::any::type_name::<P>(),
            })?;
            body(ctx, *params).map(|o| Box::new(o) as Box<dyn Any + Send>)
        })
    }

    /// Declares a singleton role with the given body.
    ///
    /// The body receives a communication context and the enrollment's
    /// data parameters `P`, and produces result parameters `O` (the
    /// paper's `VAR` parameters), which `enroll` hands back to the
    /// enrolling process.
    pub fn role<P, O, F>(&mut self, name: impl Into<String>, body: F) -> RoleHandle<M, P, O>
    where
        P: Send + 'static,
        O: Send + 'static,
        F: Fn(&mut RoleCtx<M>, P) -> Result<O, ScriptError> + Send + Sync + 'static,
    {
        let name = name.into();
        self.roles.push(RoleDef {
            name: name.clone(),
            family: None,
            body: Self::erase(body),
            param_ty: std::any::type_name::<P>(),
        });
        RoleHandle {
            id: RoleId::new(name),
            _marker: PhantomData,
        }
    }

    /// Declares an indexed family of `size` roles sharing one body.
    ///
    /// The body learns which member it is from
    /// [`RoleCtx::role`](crate::RoleCtx::role).
    pub fn family<P, O, F>(
        &mut self,
        name: impl Into<String>,
        size: usize,
        body: F,
    ) -> FamilyHandle<M, P, O>
    where
        P: Send + 'static,
        O: Send + 'static,
        F: Fn(&mut RoleCtx<M>, P) -> Result<O, ScriptError> + Send + Sync + 'static,
    {
        let name = name.into();
        self.roles.push(RoleDef {
            name: name.clone(),
            family: Some(FamilySize::Fixed(size)),
            body: Self::erase(body),
            param_ty: std::any::type_name::<P>(),
        });
        FamilyHandle {
            name,
            size: FamilySize::Fixed(size),
            _marker: PhantomData,
        }
    }

    /// Declares an *open-ended* family (paper §V): the member count is
    /// determined per performance, optionally capped at `max`.
    ///
    /// Open families require [`Initiation::Immediate`]; performances
    /// freeze their cast via an explicit critical set or
    /// [`Instance::seal_cast`](crate::Instance::seal_cast).
    pub fn open_family<P, O, F>(
        &mut self,
        name: impl Into<String>,
        max: Option<usize>,
        body: F,
    ) -> FamilyHandle<M, P, O>
    where
        P: Send + 'static,
        O: Send + 'static,
        F: Fn(&mut RoleCtx<M>, P) -> Result<O, ScriptError> + Send + Sync + 'static,
    {
        let name = name.into();
        self.roles.push(RoleDef {
            name: name.clone(),
            family: Some(FamilySize::Open { max }),
            body: Self::erase(body),
            param_ty: std::any::type_name::<P>(),
        });
        FamilyHandle {
            name,
            size: FamilySize::Open { max },
            _marker: PhantomData,
        }
    }

    /// Sets the initiation policy (default [`Initiation::Delayed`]).
    pub fn initiation(&mut self, initiation: Initiation) -> &mut Self {
        self.initiation = initiation;
        self
    }

    /// Sets the termination policy (default [`Termination::Delayed`]).
    pub fn termination(&mut self, termination: Termination) -> &mut Self {
        self.termination = termination;
        self
    }

    /// Adds an alternative critical role set. If none are added, the
    /// entire collection of (fixed) roles is critical, as in the paper.
    pub fn critical_set(&mut self, set: CriticalSet) -> &mut Self {
        self.critical.push(set);
        self
    }

    /// Validates the declaration and produces an immutable
    /// [`Script`](crate::Script).
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError::InvalidSpec`] when the declaration is
    /// inconsistent: no roles, duplicate role names, an empty fixed
    /// family, critical entries naming unknown roles or out-of-range
    /// members, open families or `FamilyAtLeast` sets combined with
    /// delayed initiation, or an explicitly empty critical set.
    pub fn build(self) -> Result<crate::Script<M>, ScriptError> {
        let invalid = |msg: String| Err(ScriptError::InvalidSpec(msg));
        if self.roles.is_empty() {
            return invalid(format!("script '{}' declares no roles", self.name));
        }
        {
            let mut seen = BTreeSet::new();
            for def in &self.roles {
                if !seen.insert(def.name.clone()) {
                    return invalid(format!("duplicate role name '{}'", def.name));
                }
                if def.family == Some(FamilySize::Fixed(0)) {
                    return invalid(format!("family '{}' has size 0", def.name));
                }
                if let Some(FamilySize::Open { max: Some(0) }) = def.family {
                    return invalid(format!("open family '{}' has max 0", def.name));
                }
            }
        }
        let find = |name: &str| self.roles.iter().find(|r| r.name == name);
        for cs in &self.critical {
            if cs.is_empty() {
                return invalid("critical set with no entries".into());
            }
            for entry in &cs.entries {
                match entry {
                    CriticalEntry::Role(n) => match find(n) {
                        Some(def) if def.family.is_none() => {}
                        Some(_) => {
                            return invalid(format!(
                                "critical entry '{n}' names a family; use family()/member()"
                            ))
                        }
                        None => return invalid(format!("critical entry '{n}' unknown")),
                    },
                    CriticalEntry::Member(n, i) => match find(n).and_then(|d| d.family) {
                        Some(FamilySize::Fixed(size)) if *i < size => {}
                        Some(FamilySize::Open { max }) if max.is_none_or(|m| *i < m) => {}
                        _ => return invalid(format!("critical member '{n}[{i}]' out of range")),
                    },
                    CriticalEntry::Family(n) => match find(n).and_then(|d| d.family) {
                        Some(FamilySize::Fixed(_)) => {}
                        Some(FamilySize::Open { .. }) => {
                            return invalid(format!(
                                "critical family '{n}' is open-ended; use family_at_least()"
                            ))
                        }
                        None => return invalid(format!("critical family '{n}' unknown")),
                    },
                    CriticalEntry::FamilyAtLeast(n, k) => {
                        match find(n).and_then(|d| d.family) {
                            Some(FamilySize::Fixed(size)) if *k <= size && *k > 0 => {}
                            Some(FamilySize::Open { max })
                                if *k > 0 && max.is_none_or(|m| *k <= m) => {}
                            _ => {
                                return invalid(format!(
                                    "critical 'at least {k} of {n}' is unsatisfiable"
                                ))
                            }
                        }
                        if self.initiation == Initiation::Delayed {
                            return invalid(
                                "family_at_least critical sets require immediate initiation".into(),
                            );
                        }
                    }
                }
            }
        }
        let has_open = self
            .roles
            .iter()
            .any(|r| matches!(r.family, Some(FamilySize::Open { .. })));
        if has_open && self.initiation == Initiation::Delayed {
            return invalid("open families require immediate initiation".into());
        }
        let mut critical = self.critical;
        if critical.is_empty() && !has_open {
            // Default: the entire collection of roles is critical.
            let mut cs = CriticalSet::new();
            for def in &self.roles {
                cs = match def.family {
                    None => cs.role(def.name.clone()),
                    Some(_) => cs.family(def.name.clone()),
                };
            }
            critical.push(cs);
        }
        Ok(crate::Script::from_spec(ScriptSpec {
            name: self.name,
            roles: self.roles,
            initiation: self.initiation,
            termination: self.termination,
            critical,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Script;

    fn noop_role(b: &mut ScriptBuilder<u8>, name: &str) -> RoleHandle<u8, (), ()> {
        b.role(name, |_ctx, ()| Ok(()))
    }

    #[test]
    fn build_minimal_script() {
        let mut b = Script::<u8>::builder("s");
        noop_role(&mut b, "only");
        let script = b.build().unwrap();
        assert_eq!(script.name(), "s");
    }

    #[test]
    fn empty_script_rejected() {
        let b = Script::<u8>::builder("empty");
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn duplicate_role_rejected() {
        let mut b = Script::<u8>::builder("dup");
        noop_role(&mut b, "x");
        noop_role(&mut b, "x");
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn zero_size_family_rejected() {
        let mut b = Script::<u8>::builder("z");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 0, |_ctx, ()| Ok(()));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn unknown_critical_role_rejected() {
        let mut b = Script::<u8>::builder("c");
        noop_role(&mut b, "a");
        b.critical_set(CriticalSet::new().role("ghost"));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn critical_member_out_of_range_rejected() {
        let mut b = Script::<u8>::builder("c");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 2, |_ctx, ()| Ok(()));
        b.critical_set(CriticalSet::new().member("f", 2));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn open_family_with_delayed_initiation_rejected() {
        let mut b = Script::<u8>::builder("o");
        let _f: FamilyHandle<u8, (), ()> = b.open_family("f", None, |_ctx, ()| Ok(()));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn open_family_with_immediate_initiation_ok() {
        let mut b = Script::<u8>::builder("o");
        let _f: FamilyHandle<u8, (), ()> = b.open_family("f", Some(8), |_ctx, ()| Ok(()));
        b.initiation(Initiation::Immediate);
        assert!(b.build().is_ok());
    }

    #[test]
    fn at_least_requires_immediate() {
        let mut b = Script::<u8>::builder("al");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 3, |_ctx, ()| Ok(()));
        b.critical_set(CriticalSet::new().family_at_least("f", 2));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn unsatisfiable_at_least_rejected() {
        let mut b = Script::<u8>::builder("al");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 3, |_ctx, ()| Ok(()));
        b.initiation(Initiation::Immediate);
        b.critical_set(CriticalSet::new().family_at_least("f", 4));
        assert!(matches!(b.build(), Err(ScriptError::InvalidSpec(_))));
    }

    #[test]
    fn default_critical_set_covers_all_roles() {
        let mut b = Script::<u8>::builder("d");
        noop_role(&mut b, "a");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 2, |_ctx, ()| Ok(()));
        let script = b.build().unwrap();
        let expanded = script.spec().expanded_critical();
        assert_eq!(expanded.len(), 1);
        let (exact, at_least) = &expanded[0];
        assert_eq!(exact.len(), 3);
        assert!(at_least.is_empty());
    }

    #[test]
    fn validate_role_ids() {
        let mut b = Script::<u8>::builder("v");
        noop_role(&mut b, "a");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 2, |_ctx, ()| Ok(()));
        let script = b.build().unwrap();
        let spec = script.spec();
        assert!(spec.validate_role_id(&RoleId::new("a")).is_ok());
        assert!(spec.validate_role_id(&RoleId::indexed("f", 1)).is_ok());
        assert!(spec.validate_role_id(&RoleId::indexed("f", 2)).is_err());
        assert!(spec.validate_role_id(&RoleId::new("f")).is_err());
        assert!(spec.validate_role_id(&RoleId::indexed("a", 0)).is_err());
        assert!(spec.validate_role_id(&RoleId::new("ghost")).is_err());
    }

    #[test]
    fn fixed_role_ids_enumerated() {
        let mut b = Script::<u8>::builder("e");
        noop_role(&mut b, "a");
        let _f: FamilyHandle<u8, (), ()> = b.family("f", 2, |_ctx, ()| Ok(()));
        let _o: FamilyHandle<u8, (), ()> = b.open_family("o", None, |_ctx, ()| Ok(()));
        b.initiation(Initiation::Immediate);
        b.critical_set(CriticalSet::new().role("a"));
        let script = b.build().unwrap();
        let ids = script.spec().fixed_role_ids();
        assert_eq!(ids.len(), 3);
        assert!(script.spec().has_open_family());
    }
}
