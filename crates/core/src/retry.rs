//! Retrying transient failures: exponential backoff with decorrelated
//! jitter.
//!
//! A [`RetryPolicy`] drives whole-enrollment (and, in the library
//! crates, whole-performance) retries after transient failures —
//! timeouts, aborted or stalled performances — injected by the chaos
//! layer or arising naturally. Backoff follows the *decorrelated
//! jitter* scheme: each sleep is drawn uniformly from
//! `[base, 3 * previous]` and clamped to `cap`, which spreads repeated
//! contenders apart faster than plain exponential doubling while
//! keeping a hard ceiling.
//!
//! The jitter source is a seeded SplitMix64 chain, so a given policy
//! value always produces the same backoff sequence — chaos soak tests
//! can replay a schedule exactly.

use std::time::Duration;

use crate::ScriptError;

/// SplitMix64 step: full-period 64-bit generator, one multiply chain
/// per draw.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bounded retry schedule: up to `max_attempts` tries separated by
/// exponential backoff with decorrelated jitter.
///
/// # Example
///
/// ```
/// use script_core::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::new(4)
///     .with_base(Duration::from_millis(5))
///     .with_cap(Duration::from_millis(100))
///     .with_seed(42);
/// // Deterministic: the same policy always sleeps the same amounts.
/// let a: Vec<_> = policy.backoffs().collect();
/// let b: Vec<_> = policy.backoffs().collect();
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 3); // one backoff between each pair of attempts
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total tries (so `max_attempts -
    /// 1` retries), with a 10 ms base and a 1 s cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "a policy must allow at least one attempt");
        Self {
            max_attempts,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x5ca1_ab1e,
        }
    }

    /// Sets the minimum (and first) backoff.
    #[must_use]
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Sets the backoff ceiling.
    #[must_use]
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Seeds the jitter chain (policies with equal seeds sleep equal
    /// amounts).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total attempts this policy allows.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The deterministic backoff sequence: one duration per retry
    /// (`max_attempts - 1` items).
    pub fn backoffs(&self) -> Backoffs {
        Backoffs {
            state: self.seed,
            prev: self.base,
            base: self.base,
            cap: self.cap,
            remaining: self.max_attempts - 1,
        }
    }

    /// Runs `op` until it succeeds, fails permanently, or attempts run
    /// out, retrying errors for which `retryable` is true. `op` receives
    /// the 0-based attempt number; the final error is returned verbatim.
    pub fn run_if<T, E>(
        &self,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut backoffs = self.backoffs();
        for attempt in 0..self.max_attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < self.max_attempts && retryable(&e) => {
                    if let Some(d) = backoffs.next() {
                        std::thread::sleep(d);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// [`RetryPolicy::run_if`] specialized to script operations:
    /// retries exactly the transient errors
    /// ([`ScriptError::is_transient`]).
    pub fn run<T>(&self, op: impl FnMut(u32) -> Result<T, ScriptError>) -> Result<T, ScriptError> {
        self.run_if(ScriptError::is_transient, op)
    }
}

/// Iterator over a policy's backoff durations (see
/// [`RetryPolicy::backoffs`]).
#[derive(Debug, Clone)]
pub struct Backoffs {
    state: u64,
    prev: Duration,
    base: Duration,
    cap: Duration,
    remaining: u32,
}

impl Iterator for Backoffs {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Decorrelated jitter: uniform in [base, 3 * prev], capped.
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let pick = lo + splitmix(&mut self.state) % (hi - lo);
        let d = Duration::from_nanos(pick).min(self.cap);
        self.prev = d;
        Some(d)
    }
}

impl ExactSizeIterator for Backoffs {
    fn len(&self) -> usize {
        self.remaining as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy::new(5)
            .with_base(Duration::from_micros(10))
            .with_cap(Duration::from_micros(200))
            .with_seed(9)
    }

    #[test]
    fn backoffs_are_deterministic_and_seed_sensitive() {
        let a: Vec<_> = fast().backoffs().collect();
        let b: Vec<_> = fast().backoffs().collect();
        assert_eq!(a, b);
        let c: Vec<_> = fast().with_seed(10).backoffs().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn backoffs_respect_base_and_cap() {
        let p = RetryPolicy::new(50)
            .with_base(Duration::from_micros(10))
            .with_cap(Duration::from_micros(100))
            .with_seed(3);
        for d in p.backoffs() {
            assert!(d >= Duration::from_micros(10), "below base: {d:?}");
            assert!(d <= Duration::from_micros(100), "above cap: {d:?}");
        }
        assert_eq!(p.backoffs().len(), 49);
    }

    #[test]
    fn retries_transient_until_success() {
        let mut calls = 0;
        let out = fast().run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(ScriptError::Timeout)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut calls = 0;
        let out: Result<(), _> = fast().run(|_| {
            calls += 1;
            Err(ScriptError::InstanceClosed)
        });
        assert_eq!(out, Err(ScriptError::InstanceClosed));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhausted_attempts_return_last_error() {
        let mut calls = 0;
        let out: Result<(), _> = fast().run(|_| {
            calls += 1;
            Err(ScriptError::Stalled)
        });
        assert_eq!(out, Err(ScriptError::Stalled));
        assert_eq!(calls, 5);
    }

    #[test]
    fn custom_predicate_controls_retry() {
        let mut calls = 0;
        let out: Result<(), &str> = fast().run_if(
            |e| *e == "again",
            |attempt| {
                calls += 1;
                Err(if attempt == 0 { "again" } else { "fatal" })
            },
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls, 2);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::new(0);
    }
}
