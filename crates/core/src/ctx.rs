//! The communication context handed to role bodies.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use script_chan::{Arm, ChanError, Outcome, PeerState, Port};

use crate::engine::{Engine, PerfShard};
use crate::{PerformanceId, ProcessId, RoleId, ScriptError};

/// One guarded alternative for [`RoleCtx::select`].
///
/// Guards carry a boolean condition (CSP-style): disabled guards are
/// ignored by the selection.
///
/// # Example
///
/// ```no_run
/// # use script_core::{Guard, RoleId};
/// let busy = false;
/// let g: Guard<u32> = Guard::recv_from(RoleId::new("reader")).when(!busy);
/// ```
#[derive(Debug)]
pub struct Guard<M> {
    kind: GuardKind<M>,
    enabled: bool,
}

#[derive(Debug)]
enum GuardKind<M> {
    Recv(Option<RoleId>),
    Send(RoleId, M),
    Watch(RoleId),
}

impl<M> Guard<M> {
    /// Fires when a message from `role` can be received.
    pub fn recv_from(role: impl Into<RoleId>) -> Self {
        Self {
            kind: GuardKind::Recv(Some(role.into())),
            enabled: true,
        }
    }

    /// Fires when a message from any role can be received.
    pub fn recv_any() -> Self {
        Self {
            kind: GuardKind::Recv(None),
            enabled: true,
        }
    }

    /// Fires when `msg` can be synchronously delivered to `role`
    /// (CSP output guard).
    pub fn send(role: impl Into<RoleId>, msg: M) -> Self {
        Self {
            kind: GuardKind::Send(role.into(), msg),
            enabled: true,
        }
    }

    /// Fires when `role` has terminated (or will never be filled) and no
    /// message from it remains pending.
    pub fn watch(role: impl Into<RoleId>) -> Self {
        Self {
            kind: GuardKind::Watch(role.into()),
            enabled: true,
        }
    }

    /// Attaches a boolean condition; a `false` guard never fires.
    pub fn when(mut self, condition: bool) -> Self {
        self.enabled = self.enabled && condition;
        self
    }
}

/// A fired selection alternative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A receive guard fired.
    Received {
        /// Index of the guard (in the order passed to `select`).
        guard: usize,
        /// The role the message came from.
        from: RoleId,
        /// The message.
        msg: M,
    },
    /// A send guard fired; the message was delivered.
    Sent {
        /// Index of the guard.
        guard: usize,
        /// The role the message went to.
        to: RoleId,
    },
    /// A watch guard fired: the role terminated with nothing pending.
    Terminated {
        /// Index of the guard.
        guard: usize,
        /// The terminated role.
        role: RoleId,
    },
}

pub(crate) fn map_chan_err(e: ChanError<RoleId>) -> ScriptError {
    match e {
        ChanError::Terminated(r) => ScriptError::RoleUnavailable(r),
        ChanError::AllTerminated => ScriptError::AllPartnersTerminated,
        ChanError::Aborted => ScriptError::PerformanceAborted,
        ChanError::Timeout => ScriptError::Timeout,
        ChanError::Unknown(r) => ScriptError::UnknownRole(r),
        ChanError::Myself => ScriptError::SelfCommunication,
        ChanError::EmptySelect => ScriptError::NoEnabledGuards,
    }
}

/// The context a role body communicates through.
///
/// Provides the inter-role communication primitives of the paper's host
/// languages — synchronous send/receive, guarded selection — plus the
/// script-specific queries: who is in the cast, which roles have
/// terminated, and the performance number.
///
/// All blocking operations respect the enrollment's deadline, if any.
pub struct RoleCtx<M> {
    engine: Arc<Engine<M>>,
    /// The performance this role runs in: cast queries and sealing go
    /// straight to its shard, bypassing the engine front end.
    shard: Arc<PerfShard<M>>,
    port: Port<RoleId, M>,
    role: RoleId,
    performance: PerformanceId,
    process: ProcessId,
    deadline: Option<Instant>,
}

impl<M> fmt::Debug for RoleCtx<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoleCtx")
            .field("role", &self.role)
            .field("performance", &self.performance)
            .field("process", &self.process)
            .finish()
    }
}

impl<M> RoleCtx<M> {
    /// The role this body is playing (family members learn their index
    /// here).
    pub fn role(&self) -> &RoleId {
        &self.role
    }

    /// The current performance number.
    pub fn performance(&self) -> PerformanceId {
        self.performance
    }

    /// The identity of the process enrolled in this role.
    pub fn process(&self) -> &ProcessId {
        &self.process
    }
}

impl<M: Send + Clone + 'static> RoleCtx<M> {
    pub(crate) fn new(
        engine: Arc<Engine<M>>,
        shard: Arc<PerfShard<M>>,
        port: Port<RoleId, M>,
        role: RoleId,
        performance: PerformanceId,
        process: ProcessId,
        deadline: Option<Instant>,
    ) -> Self {
        Self {
            engine,
            shard,
            port,
            role,
            performance,
            process,
            deadline,
        }
    }

    fn deadline_for(&self, timeout: Option<Duration>) -> Option<Instant> {
        let op = timeout.map(|t| Instant::now() + t);
        match (self.deadline, op) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn check_role(&self, role: &RoleId) -> Result<(), ScriptError> {
        self.engine.spec.validate_role_id(role)
    }

    /// Synchronously sends `msg` to `to` (rendezvous: blocks until the
    /// partner receives it). If `to` is an unfilled role the send blocks
    /// until a process enrolls in it — or fails once the cast freezes
    /// without it.
    ///
    /// # Errors
    ///
    /// * [`ScriptError::RoleUnavailable`] if `to` terminated or will
    ///   never be filled,
    /// * [`ScriptError::PerformanceAborted`] if the performance aborted,
    /// * [`ScriptError::Timeout`] if the enrollment deadline expires,
    /// * [`ScriptError::UnknownRole`] / [`ScriptError::SelfCommunication`]
    ///   on bad addressing.
    pub fn send(&self, to: &RoleId, msg: M) -> Result<(), ScriptError> {
        self.check_role(to)?;
        self.port
            .send_deadline(to, msg, self.deadline)
            .map_err(map_chan_err)
    }

    /// [`RoleCtx::send`] with an additional per-operation timeout
    /// (the earlier of it and the enrollment deadline applies).
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::send`].
    pub fn send_timeout(&self, to: &RoleId, msg: M, timeout: Duration) -> Result<(), ScriptError> {
        self.check_role(to)?;
        self.port
            .send_deadline(to, msg, self.deadline_for(Some(timeout)))
            .map_err(map_chan_err)
    }

    /// Receives the next message from `from`, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::send`].
    pub fn recv_from(&self, from: &RoleId) -> Result<M, ScriptError> {
        self.check_role(from)?;
        self.port
            .recv_from_deadline(from, self.deadline)
            .map_err(map_chan_err)
    }

    /// [`RoleCtx::recv_from`] with a per-operation timeout.
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::send`].
    pub fn recv_from_timeout(&self, from: &RoleId, timeout: Duration) -> Result<M, ScriptError> {
        self.check_role(from)?;
        self.port
            .recv_from_deadline(from, self.deadline_for(Some(timeout)))
            .map_err(map_chan_err)
    }

    /// Non-blocking receive: takes a pending message from `from` if one
    /// is already deposited; returns `Ok(None)` when nothing is pending
    /// but the role could still send.
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::recv_from`] (a terminated/unfilled `from` is an
    /// error even when polling).
    pub fn try_recv_from(&self, from: &RoleId) -> Result<Option<M>, ScriptError> {
        self.check_role(from)?;
        self.port.try_recv_from(from).map_err(map_chan_err)
    }

    /// Receives a message from any role (partners-unnamed reception, like
    /// an Ada `accept`).
    ///
    /// # Errors
    ///
    /// [`ScriptError::AllPartnersTerminated`] once no partner can ever
    /// send again, plus the errors of [`RoleCtx::send`].
    pub fn recv_any(&self) -> Result<(RoleId, M), ScriptError> {
        self.port
            .recv_any_deadline(self.deadline)
            .map_err(map_chan_err)
    }

    /// [`RoleCtx::recv_any`] with a per-operation timeout.
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::recv_any`].
    pub fn recv_any_timeout(&self, timeout: Duration) -> Result<(RoleId, M), ScriptError> {
        self.port
            .recv_any_deadline(self.deadline_for(Some(timeout)))
            .map_err(map_chan_err)
    }

    /// Guarded selection (CSP alternative command) over the enabled
    /// guards: blocks until one can fire, fires exactly one (chosen
    /// fairly among the ready alternatives), and reports it.
    ///
    /// # Errors
    ///
    /// * [`ScriptError::NoEnabledGuards`] if every guard is disabled,
    /// * [`ScriptError::AllPartnersTerminated`] /
    ///   [`ScriptError::RoleUnavailable`] when no enabled guard can ever
    ///   fire,
    /// * abort/timeout/addressing errors as for [`RoleCtx::send`].
    pub fn select(&self, guards: Vec<Guard<M>>) -> Result<Event<M>, ScriptError> {
        self.select_inner(guards, self.deadline)
    }

    /// [`RoleCtx::select`] with a per-operation timeout.
    ///
    /// # Errors
    ///
    /// As [`RoleCtx::select`].
    pub fn select_timeout(
        &self,
        guards: Vec<Guard<M>>,
        timeout: Duration,
    ) -> Result<Event<M>, ScriptError> {
        self.select_inner(guards, self.deadline_for(Some(timeout)))
    }

    fn select_inner(
        &self,
        guards: Vec<Guard<M>>,
        deadline: Option<Instant>,
    ) -> Result<Event<M>, ScriptError> {
        let mut arms = Vec::new();
        let mut index_map = Vec::new();
        for (i, g) in guards.into_iter().enumerate() {
            if !g.enabled {
                continue;
            }
            let arm = match g.kind {
                GuardKind::Recv(Some(role)) => {
                    self.check_role(&role)?;
                    Arm::recv_from(role)
                }
                GuardKind::Recv(None) => Arm::recv_any(),
                GuardKind::Send(role, msg) => {
                    self.check_role(&role)?;
                    Arm::send(role, msg)
                }
                GuardKind::Watch(role) => {
                    self.check_role(&role)?;
                    Arm::watch(role)
                }
            };
            arms.push(arm);
            index_map.push(i);
        }
        if arms.is_empty() {
            return Err(ScriptError::NoEnabledGuards);
        }
        match self.port.select_deadline(arms, deadline) {
            Ok(Outcome::Received { arm, from, msg }) => Ok(Event::Received {
                guard: index_map[arm],
                from,
                msg,
            }),
            Ok(Outcome::Sent { arm, to }) => Ok(Event::Sent {
                guard: index_map[arm],
                to,
            }),
            Ok(Outcome::Terminated { arm, peer }) => Ok(Event::Terminated {
                guard: index_map[arm],
                role: peer,
            }),
            Err(e) => Err(map_chan_err(e)),
        }
    }

    /// Returns `true` if `role` has terminated in this performance, or
    /// the cast froze without it ever being filled — the paper's
    /// `r.terminated` query from the lock-manager example.
    ///
    /// Before the critical role set is filled this is `false` for
    /// unfilled roles; once the cast freezes, every unfilled role reads
    /// as terminated.
    pub fn terminated(&self, role: &RoleId) -> bool {
        self.port.network().peer_state(role) == Some(PeerState::Done)
    }

    /// The cast of this performance so far: `(role, process)` bindings.
    pub fn cast(&self) -> Vec<(RoleId, ProcessId)> {
        self.shard.cast_pairs()
    }

    /// The process enrolled in `role`, if it is currently in the cast.
    pub fn process_of(&self, role: &RoleId) -> Option<ProcessId> {
        self.cast()
            .into_iter()
            .find(|(r, _)| r == role)
            .map(|(_, p)| p)
    }

    /// Returns `true` once this performance's cast is frozen (no further
    /// roles can join).
    pub fn cast_frozen(&self) -> bool {
        self.shard.frozen()
    }

    /// Freezes the cast of *this* performance (for open-ended scripts
    /// without a critical role set).
    pub fn seal_cast(&self) {
        self.engine.seal_shard(&self.shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_conditions_disable() {
        let g: Guard<u8> = Guard::recv_any().when(false);
        assert!(!g.enabled);
        let g: Guard<u8> = Guard::recv_any().when(true).when(true);
        assert!(g.enabled);
        let g: Guard<u8> = Guard::send(RoleId::new("r"), 1).when(true).when(false);
        assert!(!g.enabled);
    }

    #[test]
    fn guard_constructors() {
        let g: Guard<u8> = Guard::recv_from("a");
        assert!(matches!(g.kind, GuardKind::Recv(Some(_))));
        let g: Guard<u8> = Guard::watch("a");
        assert!(matches!(g.kind, GuardKind::Watch(_)));
    }

    #[test]
    fn event_equality() {
        let a: Event<u8> = Event::Sent {
            guard: 0,
            to: RoleId::new("x"),
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
