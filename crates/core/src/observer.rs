//! The observability plane: a single subscriber seam through which the
//! engine publishes everything it used to scatter across three
//! poll-drained side-channels (the bounded [`ScriptEvent`] ring, the
//! transport latency-sample log, and the chaos fault log).
//!
//! An [`Observer`] is installed per instance
//! ([`Instance::set_observer`](crate::Instance::set_observer)) and
//! receives every [`TelemetryEvent`] *push-based*, at the moment the
//! engine makes the corresponding decision — no draining, no loss
//! window. The built-in subscribers cover the common consumption
//! patterns:
//!
//! * [`RingObserver`] — the bounded in-memory log behind
//!   [`Instance::enable_event_log`](crate::Instance::enable_event_log)
//!   and `take_events`; overflow is *counted* and surfaced as a
//!   [`TelemetryPayload::Lost`] marker instead of vanishing;
//! * [`MetricsObserver`] — folds the stream into an
//!   [`InstanceMetrics`] snapshot (counters plus log-scale latency
//!   histograms, per instance and per performance);
//! * [`MultiObserver`] — fans one stream out to several subscribers
//!   (the engine composes one automatically when both a ring log and a
//!   user observer are installed).
//!
//! # Ordering guarantees
//!
//! Events of one performance carry a gapless, strictly increasing
//! `seq` starting at 0, and are delivered in `seq` order: the engine
//! holds the performance's telemetry lock across delivery, so no
//! observer ever sees performance-local events reordered — even when
//! part of the performance runs on a remote hub and its fault events
//! arrive over TCP. Instance-scoped events (those with
//! `performance == None`) form their own gapless sequence. Across
//! *different* performances the interleaving is the real arrival
//! order, which is all a causally consistent merged stream can
//! promise.
//!
//! # Observer discipline
//!
//! `on_event` runs synchronously on whichever thread produced the
//! event — a role body mid-rendezvous, the watchdog, a socket reader —
//! possibly with engine locks held. Observers must be fast, must not
//! block, and **must not call back into the [`Instance`](crate::Instance)
//! API** (doing so can deadlock the engine).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{LatencySample, PerformanceId, RoleId, ScriptEvent};

/// A subscriber on the instance's telemetry plane.
///
/// See the [module docs](self) for the delivery and ordering contract.
pub trait Observer: Send + Sync {
    /// Called once per [`TelemetryEvent`], on the producing thread.
    fn on_event(&self, event: TelemetryEvent);
}

/// One event on the observability plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Position in this event's sequence: gapless and strictly
    /// increasing from 0 within one performance (or within the
    /// instance-scoped stream when `performance` is `None`).
    pub seq: u64,
    /// The performance this event belongs to; `None` for
    /// instance-scoped events (enrollment queueing, instance close,
    /// and synthesized [`TelemetryPayload::Lost`] markers).
    pub performance: Option<PerformanceId>,
    /// Coarse timestamp: elapsed time since the instance was created.
    pub timestamp: Duration,
    /// What happened.
    pub payload: TelemetryPayload,
}

/// The unified payload of a [`TelemetryEvent`]: everything the three
/// pre-existing side-channels carried, on one plane.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TelemetryPayload {
    /// An engine lifecycle decision (see [`ScriptEvent`]).
    Script(ScriptEvent),
    /// A successful blocking operation's measured rendezvous latency,
    /// routed up from the performance's transport.
    Latency(LatencySample),
    /// The quiescence watchdog (re-)armed its window for this
    /// performance. Emitted when the window first arms and whenever it
    /// moves by at least 1/8 relative to the last announced value, so
    /// adaptive policies do not flood the plane on every poll.
    WatchdogArmed {
        /// The armed quiescence window.
        window: Duration,
        /// The rendezvous-latency p99 the window was derived from
        /// (`None` before any rendezvous completed).
        observed_p99: Option<Duration>,
    },
    /// `count` events were dropped by a bounded subscriber since it
    /// was last drained. Synthesized by [`RingObserver::drain`]; sits
    /// outside per-performance numbering (`seq` 0, no performance,
    /// zero timestamp).
    Lost {
        /// How many events were dropped.
        count: u64,
    },
    /// A session-aware transport reported `peer`'s connection severed;
    /// its session — and the performances it animates — stays alive
    /// until the lease expires. Only connection-oriented transports
    /// emit this.
    PeerDisconnected {
        /// The role whose link dropped.
        peer: RoleId,
    },
    /// A severed peer presented its session id within the lease and
    /// resumed where it left off — queued operations replayed, event
    /// stream gapless.
    PeerResumed {
        /// The role whose link came back.
        peer: RoleId,
    },
    /// A severed peer's lease expired without a resume: from here it
    /// degrades exactly like a crashed peer (`Terminated` errors,
    /// watchdog `Stalled`).
    LeaseExpired {
        /// The role whose session lapsed.
        peer: RoleId,
    },
    /// A runtime conformance monitor (`script_proto::monitor`) found
    /// the performance's observed communication trace diverging from
    /// its protocol — the **first** divergence per performance is
    /// reported, then checking for that performance stops.
    /// Synthesized by the monitor and forwarded to its downstream
    /// subscriber; the engine itself never emits this.
    ProtocolViolation {
        /// The role whose local protocol was violated.
        role: RoleId,
        /// What the role's local type expected next
        /// (human-readable, e.g. `B!ack`).
        expected: String,
        /// The rendezvous actually observed (e.g. `C!ack`).
        observed: String,
        /// `seq` of the [`ScriptEvent::Rendezvous`] telemetry event
        /// that diverged — identifies the exact point in the
        /// performance's gapless stream, comparable across
        /// transports.
        at_seq: u64,
    },
}

/// State shared by every [`RingObserver`] accessor.
struct RingState {
    buf: VecDeque<TelemetryEvent>,
    /// Overflow drops since the last [`RingObserver::drain`].
    dropped_since_drain: u64,
    /// Overflow drops over the ring's lifetime.
    dropped_total: u64,
}

/// The bounded in-memory event log, as a plane subscriber: retains the
/// most recent `capacity` events, *counting* what overflow discards.
///
/// [`Instance::enable_event_log`](crate::Instance::enable_event_log)
/// installs one of these; `take_events`/`take_telemetry` drain it. A
/// drain that lost events is prefixed with a synthesized
/// [`TelemetryPayload::Lost`] marker, and the lifetime total is
/// surfaced as
/// [`InstanceStatus::events_dropped`](crate::InstanceStatus::events_dropped).
pub struct RingObserver {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingObserver {
    /// A ring retaining the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                buf: VecDeque::with_capacity(capacity.clamp(1, 1024)),
                dropped_since_drain: 0,
                dropped_total: 0,
            }),
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped to overflow over the ring's lifetime.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped_total
    }

    /// Drains the retained events, oldest first. If overflow dropped
    /// events since the previous drain, the result is prefixed with a
    /// [`TelemetryPayload::Lost`] marker carrying the count.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let mut st = self.state.lock();
        let lost = st.dropped_since_drain;
        st.dropped_since_drain = 0;
        let mut out = Vec::with_capacity(st.buf.len() + usize::from(lost > 0));
        if lost > 0 {
            out.push(TelemetryEvent {
                seq: 0,
                performance: None,
                timestamp: Duration::ZERO,
                payload: TelemetryPayload::Lost { count: lost },
            });
        }
        out.extend(st.buf.drain(..));
        out
    }
}

impl Observer for RingObserver {
    fn on_event(&self, event: TelemetryEvent) {
        let mut st = self.state.lock();
        if st.buf.len() == self.capacity {
            st.buf.pop_front();
            st.dropped_since_drain += 1;
            st.dropped_total += 1;
        }
        st.buf.push_back(event);
    }
}

impl fmt::Debug for RingObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RingObserver")
            .field("capacity", &self.capacity)
            .field("len", &st.buf.len())
            .field("dropped", &st.dropped_total)
            .finish()
    }
}

/// Fans one telemetry stream out to several subscribers, in
/// subscription order.
#[derive(Default)]
pub struct MultiObserver {
    subscribers: Vec<Arc<dyn Observer>>,
}

impl MultiObserver {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fan-out over `subscribers`.
    pub fn with(subscribers: Vec<Arc<dyn Observer>>) -> Self {
        Self { subscribers }
    }

    /// Adds a subscriber.
    pub fn subscribe(&mut self, observer: Arc<dyn Observer>) {
        self.subscribers.push(observer);
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether the fan-out has no subscribers.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }
}

impl Observer for MultiObserver {
    fn on_event(&self, event: TelemetryEvent) {
        for sub in &self.subscribers {
            sub.on_event(event.clone());
        }
    }
}

impl fmt::Debug for MultiObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiObserver")
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

/// A log-scale (powers of two, in nanoseconds) latency histogram.
///
/// Bucket *b* covers elapsed times in `[2^(b-1), 2^b)` ns (bucket 0 is
/// "zero"), so [`LatencyHistogram::quantile`] answers within a factor
/// of two at any scale — microsecond in-process rendezvous and
/// millisecond socket RPCs fit the same 64 buckets.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one elapsed time.
    pub fn record(&mut self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let idx = if nanos == 0 {
            0
        } else {
            ((64 - nanos.leading_zeros()) as usize).min(63)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0 < q <= 1`), as the upper bound of the
    /// bucket holding the rank — an estimate within a factor of two.
    /// `None` while empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = 1u64.checked_shl(idx as u32).unwrap_or(u64::MAX);
                return Some(Duration::from_nanos(upper));
            }
        }
        None
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Per-performance slice of an [`InstanceMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct PerformanceMetrics {
    /// Telemetry events attributed to this performance.
    pub events: u64,
    /// Rendezvous completed on its network
    /// ([`ScriptEvent::Rendezvous`]).
    pub rendezvous: u64,
    /// Protocol divergences a conformance monitor reported against it
    /// ([`TelemetryPayload::ProtocolViolation`]).
    pub protocol_violations: u64,
    /// Faults the chaos layer injected into its network.
    pub faults_injected: u64,
    /// Its observed rendezvous latencies.
    pub latency: LatencyHistogram,
    /// Whether it has completed (normally or by abort).
    pub completed: bool,
    /// Whether it aborted.
    pub aborted: bool,
    /// Whether the watchdog declared it stalled.
    pub stalled: bool,
}

/// A point-in-time aggregate of everything a [`MetricsObserver`] has
/// seen: lifecycle counters plus latency histograms, per instance and
/// per performance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct InstanceMetrics {
    /// Total telemetry events observed.
    pub events: u64,
    /// Enrollments that entered the pending queue.
    pub enrollments_queued: u64,
    /// Performances created.
    pub performances_started: u64,
    /// Performances fully terminated.
    pub performances_completed: u64,
    /// Performances aborted (panic, close, or watchdog).
    pub performances_aborted: u64,
    /// Performances the watchdog declared stalled.
    pub performances_stalled: u64,
    /// Roles admitted into casts.
    pub roles_admitted: u64,
    /// Role bodies that returned.
    pub roles_finished: u64,
    /// Casts frozen.
    pub casts_frozen: u64,
    /// Faults the chaos layer injected.
    pub faults_injected: u64,
    /// Watchdog window (re-)arms announced on the plane.
    pub watchdog_arms: u64,
    /// Events a bounded subscriber reported lost
    /// ([`TelemetryPayload::Lost`]).
    pub events_lost: u64,
    /// Peer connections reported severed within a live session lease
    /// ([`TelemetryPayload::PeerDisconnected`]).
    pub peer_disconnects: u64,
    /// Severed peers that resumed their session within the lease
    /// ([`TelemetryPayload::PeerResumed`]).
    pub peer_resumes: u64,
    /// Severed peers whose lease expired without a resume
    /// ([`TelemetryPayload::LeaseExpired`]).
    pub lease_expiries: u64,
    /// Rendezvous completed ([`ScriptEvent::Rendezvous`]).
    pub rendezvous: u64,
    /// Protocol divergences reported by a conformance monitor
    /// ([`TelemetryPayload::ProtocolViolation`]).
    pub protocol_violations: u64,
    /// All observed rendezvous latencies.
    pub latency: LatencyHistogram,
    /// Per-performance aggregates, in performance order.
    pub per_performance: Vec<(PerformanceId, PerformanceMetrics)>,
}

struct MetricsState {
    totals: InstanceMetrics,
    per_performance: BTreeMap<PerformanceId, PerformanceMetrics>,
}

/// A plane subscriber that folds the event stream into an
/// [`InstanceMetrics`] snapshot — counters and latency histograms
/// derived *entirely* from observed [`TelemetryEvent`]s, with no
/// second seam into the engine.
pub struct MetricsObserver {
    state: Mutex<MetricsState>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsObserver {
    /// A fresh, all-zero metrics aggregator.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(MetricsState {
                totals: InstanceMetrics::default(),
                per_performance: BTreeMap::new(),
            }),
        }
    }

    /// The current aggregate, as of the last event delivered.
    pub fn snapshot(&self) -> InstanceMetrics {
        let st = self.state.lock();
        let mut out = st.totals.clone();
        out.per_performance = st
            .per_performance
            .iter()
            .map(|(id, m)| (*id, m.clone()))
            .collect();
        out
    }
}

impl Observer for MetricsObserver {
    fn on_event(&self, event: TelemetryEvent) {
        let mut st = self.state.lock();
        st.totals.events += 1;
        let perf = event
            .performance
            .map(|id| st.per_performance.entry(id).or_default());
        if let Some(p) = perf {
            p.events += 1;
            match &event.payload {
                TelemetryPayload::Script(ScriptEvent::Rendezvous { .. }) => p.rendezvous += 1,
                TelemetryPayload::ProtocolViolation { .. } => p.protocol_violations += 1,
                TelemetryPayload::Script(ScriptEvent::FaultInjected { .. }) => {
                    p.faults_injected += 1
                }
                TelemetryPayload::Script(ScriptEvent::PerformanceCompleted { aborted, .. }) => {
                    p.completed = true;
                    p.aborted |= aborted;
                }
                TelemetryPayload::Script(ScriptEvent::PerformanceAborted { .. }) => {
                    p.aborted = true
                }
                TelemetryPayload::Script(ScriptEvent::PerformanceStalled { .. }) => {
                    p.stalled = true
                }
                TelemetryPayload::Latency(sample) => p.latency.record(sample.elapsed),
                _ => {}
            }
        }
        let totals = &mut st.totals;
        match event.payload {
            TelemetryPayload::Script(ev) => match ev {
                ScriptEvent::EnrollmentQueued { .. } => totals.enrollments_queued += 1,
                ScriptEvent::PerformanceStarted { .. } => totals.performances_started += 1,
                ScriptEvent::RoleAdmitted { .. } => totals.roles_admitted += 1,
                ScriptEvent::CastFrozen { .. } => totals.casts_frozen += 1,
                ScriptEvent::RoleFinished { .. } => totals.roles_finished += 1,
                ScriptEvent::PerformanceAborted { .. } => totals.performances_aborted += 1,
                ScriptEvent::PerformanceStalled { .. } => totals.performances_stalled += 1,
                ScriptEvent::FaultInjected { .. } => totals.faults_injected += 1,
                ScriptEvent::Rendezvous { .. } => totals.rendezvous += 1,
                ScriptEvent::PerformanceCompleted { .. } => totals.performances_completed += 1,
                ScriptEvent::InstanceClosed => {}
            },
            TelemetryPayload::Latency(sample) => totals.latency.record(sample.elapsed),
            TelemetryPayload::WatchdogArmed { .. } => totals.watchdog_arms += 1,
            TelemetryPayload::Lost { count } => totals.events_lost += count,
            TelemetryPayload::PeerDisconnected { .. } => totals.peer_disconnects += 1,
            TelemetryPayload::PeerResumed { .. } => totals.peer_resumes += 1,
            TelemetryPayload::LeaseExpired { .. } => totals.lease_expiries += 1,
            TelemetryPayload::ProtocolViolation { .. } => totals.protocol_violations += 1,
        }
    }
}

impl fmt::Debug for MetricsObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MetricsObserver")
            .field("events", &st.totals.events)
            .field("performances", &st.per_performance.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, perf: u64, payload: TelemetryPayload) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            performance: Some(PerformanceId(perf)),
            timestamp: Duration::from_millis(seq),
            payload,
        }
    }

    fn started(seq: u64, perf: u64) -> TelemetryEvent {
        ev(
            seq,
            perf,
            TelemetryPayload::Script(ScriptEvent::PerformanceStarted {
                performance: PerformanceId(perf),
            }),
        )
    }

    #[test]
    fn ring_counts_overflow_and_prefixes_lost_marker() {
        let ring = RingObserver::new(2);
        for i in 0..5 {
            ring.on_event(started(i, 0));
        }
        assert_eq!(ring.dropped(), 3);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].payload, TelemetryPayload::Lost { count: 3 });
        assert_eq!(drained[1].seq, 3);
        assert_eq!(drained[2].seq, 4);
        // The since-drain counter reset; the lifetime total did not.
        assert!(ring.drain().is_empty());
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn multi_observer_fans_out_in_order() {
        let a = Arc::new(RingObserver::new(8));
        let b = Arc::new(RingObserver::new(8));
        let mut multi = MultiObserver::new();
        multi.subscribe(Arc::clone(&a) as Arc<dyn Observer>);
        multi.subscribe(Arc::clone(&b) as Arc<dyn Observer>);
        assert_eq!(multi.len(), 2);
        multi.on_event(started(0, 1));
        assert_eq!(a.drain(), b.drain());
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        assert!(h.quantile(0.5).is_none());
        for micros in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(40) && p50 <= Duration::from_micros(80));
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= Duration::from_micros(5000));
        assert!(p100 <= Duration::from_micros(16384));
    }

    #[test]
    fn metrics_observer_folds_the_stream() {
        let m = MetricsObserver::new();
        m.on_event(TelemetryEvent {
            seq: 0,
            performance: None,
            timestamp: Duration::ZERO,
            payload: TelemetryPayload::Script(ScriptEvent::EnrollmentQueued {
                role: crate::RoleId::new("r"),
                process: crate::ProcessId::new("p"),
            }),
        });
        m.on_event(started(0, 3));
        m.on_event(ev(
            1,
            3,
            TelemetryPayload::Latency(LatencySample {
                op: crate::LatencyOp::Send,
                elapsed: Duration::from_micros(50),
            }),
        ));
        m.on_event(ev(
            2,
            3,
            TelemetryPayload::Script(ScriptEvent::PerformanceCompleted {
                performance: PerformanceId(3),
                aborted: false,
            }),
        ));
        m.on_event(TelemetryEvent {
            seq: 0,
            performance: None,
            timestamp: Duration::ZERO,
            payload: TelemetryPayload::Lost { count: 7 },
        });
        let snap = m.snapshot();
        assert_eq!(snap.events, 5);
        assert_eq!(snap.enrollments_queued, 1);
        assert_eq!(snap.performances_started, 1);
        assert_eq!(snap.performances_completed, 1);
        assert_eq!(snap.events_lost, 7);
        assert_eq!(snap.latency.count(), 1);
        assert_eq!(snap.per_performance.len(), 1);
        let (id, perf) = &snap.per_performance[0];
        assert_eq!(*id, PerformanceId(3));
        assert_eq!(perf.events, 3);
        assert!(perf.completed && !perf.aborted);
        assert_eq!(perf.latency.count(), 1);
    }
}
