//! Joint-enrollment matching.
//!
//! For delayed initiation the paper requires that processes "jointly
//! enroll in the script only when their enrollment specifications match,
//! that is they all agree on the binding of processes to roles". With
//! `OneOf` constraints this is a constraint-satisfaction problem; the
//! matcher below solves it by backtracking with a fewest-candidates-first
//! role order, which is exact and fast at the scales scripts are written
//! for (casts of tens of roles).
//!
//! Constraints are only checked against roles that actually join the
//! cast: a constraint on a role that remains unfilled (permitted by a
//! critical role set) does not block enrollment. Within one performance a
//! named process may fill at most one role (the paper's rule for delayed
//! initiation); anonymous processes are always distinct.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::{Partners, ProcessId, RoleId};

/// A pending enrollment as seen by the matcher.
#[derive(Debug, Clone)]
pub(crate) struct Candidate<'a> {
    /// Index into the engine's pending list.
    pub idx: usize,
    pub role: &'a RoleId,
    pub process: &'a ProcessId,
    pub partners: &'a Partners,
}

fn pair_compatible(a: &Candidate<'_>, b: &Candidate<'_>) -> bool {
    a.role != b.role
        && a.process != b.process
        && a.partners.allows(b.role, b.process)
        && b.partners.allows(a.role, a.process)
}

fn compatible_with_all(cand: &Candidate<'_>, chosen: &[&Candidate<'_>]) -> bool {
    chosen.iter().all(|c| pair_compatible(cand, c))
}

/// Attempts to assemble a cast from `candidates` that covers one of the
/// `critical` sets (tried in declaration order), then greedily extends it
/// with further compatible candidates for still-unfilled roles.
///
/// Returns `role → candidate index` on success.
pub(crate) fn match_performance(
    candidates: &[Candidate<'_>],
    critical: &[BTreeSet<RoleId>],
) -> Option<HashMap<RoleId, usize>> {
    for cover in critical {
        if let Some(assignment) = cover_critical_set(candidates, cover) {
            return Some(extend(candidates, assignment));
        }
    }
    None
}

fn cover_critical_set(
    candidates: &[Candidate<'_>],
    cover: &BTreeSet<RoleId>,
) -> Option<Vec<usize>> {
    // Collect per-role candidate lists, in arrival order (FIFO fairness).
    let mut per_role: Vec<(&RoleId, Vec<usize>)> = Vec::with_capacity(cover.len());
    for role in cover {
        let list: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.role == role)
            .map(|(i, _)| i)
            .collect();
        if list.is_empty() {
            return None;
        }
        per_role.push((role, list));
    }
    // Fewest candidates first prunes the search hardest.
    per_role.sort_by_key(|(_, list)| list.len());

    fn backtrack<'a>(
        per_role: &[(&RoleId, Vec<usize>)],
        candidates: &'a [Candidate<'a>],
        chosen: &mut Vec<usize>,
    ) -> bool {
        if chosen.len() == per_role.len() {
            return true;
        }
        let (_, list) = &per_role[chosen.len()];
        for &idx in list {
            let cand = &candidates[idx];
            let selected: Vec<&Candidate<'_>> = chosen.iter().map(|&i| &candidates[i]).collect();
            if compatible_with_all(cand, &selected) {
                chosen.push(idx);
                if backtrack(per_role, candidates, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    let mut chosen = Vec::with_capacity(per_role.len());
    if backtrack(&per_role, candidates, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

fn extend(candidates: &[Candidate<'_>], chosen: Vec<usize>) -> HashMap<RoleId, usize> {
    let mut assignment: HashMap<RoleId, usize> = chosen
        .iter()
        .map(|&i| (candidates[i].role.clone(), i))
        .collect();
    let mut selected: Vec<&Candidate<'_>> = chosen.iter().map(|&i| &candidates[i]).collect();
    let mut used: HashSet<usize> = chosen.into_iter().collect();
    for (idx, cand) in candidates.iter().enumerate() {
        if used.contains(&idx) || assignment.contains_key(cand.role) {
            continue;
        }
        if compatible_with_all(cand, &selected) {
            assignment.insert(cand.role.clone(), idx);
            selected.push(cand);
            used.insert(idx);
        }
    }
    assignment
}

/// Immediate-mode admission check: can `cand` join a cast whose members
/// (with their recorded constraints) are `cast`?
///
/// The caller guarantees `cand.role` is not yet filled.
pub(crate) fn admissible(cand: &Candidate<'_>, cast: &[(RoleId, ProcessId, Partners)]) -> bool {
    cast.iter().all(|(role, process, partners)| {
        process != cand.process
            && cand.partners.allows(role, process)
            && partners.allows(cand.role, cand.process)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessSel;

    struct Arena {
        entries: Vec<(RoleId, ProcessId, Partners)>,
    }

    impl Arena {
        fn new() -> Self {
            Self {
                entries: Vec::new(),
            }
        }
        fn add(&mut self, role: RoleId, process: &str, partners: Partners) -> &mut Self {
            self.entries.push((role, ProcessId::new(process), partners));
            self
        }
        fn candidates(&self) -> Vec<Candidate<'_>> {
            self.entries
                .iter()
                .enumerate()
                .map(|(idx, (role, process, partners))| Candidate {
                    idx,
                    role,
                    process,
                    partners,
                })
                .collect()
        }
    }

    fn set(roles: &[RoleId]) -> BTreeSet<RoleId> {
        roles.iter().cloned().collect()
    }

    #[test]
    fn unconstrained_cover_found() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any());
        a.add(RoleId::new("q"), "B", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[&RoleId::new("p")], 0);
        assert_eq!(m[&RoleId::new("q")], 1);
    }

    #[test]
    fn missing_role_blocks_cover() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        assert!(match_performance(&cands, &critical).is_none());
    }

    #[test]
    fn named_partners_must_agree() {
        // A wants B as q; B wants C as p: specifications do not match.
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any().named("q", "B"));
        a.add(RoleId::new("q"), "B", Partners::any().named("p", "C"));
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        assert!(match_performance(&cands, &critical).is_none());
    }

    #[test]
    fn matching_specifications_jointly_enroll() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any().named("q", "B"));
        a.add(RoleId::new("q"), "B", Partners::any().named("p", "A"));
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        assert!(match_performance(&cands, &critical).is_some());
    }

    #[test]
    fn backtracking_resolves_conflicts() {
        // Two candidates for p; only the second is acceptable to q's
        // occupant. A naive first-fit would fail.
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A1", Partners::any());
        a.add(RoleId::new("p"), "A2", Partners::any());
        a.add(RoleId::new("q"), "B", Partners::any().named("p", "A2"));
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m[&RoleId::new("p")], 1);
        assert_eq!(m[&RoleId::new("q")], 2);
    }

    #[test]
    fn one_of_constraints_searched() {
        let mut a = Arena::new();
        a.add(
            RoleId::new("p"),
            "A",
            Partners::any().with("q", ProcessSel::one_of(["B", "C"])),
        );
        a.add(RoleId::new("q"), "D", Partners::any());
        a.add(RoleId::new("q"), "C", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m[&RoleId::new("q")], 2, "must pick C, not D");
    }

    #[test]
    fn same_process_cannot_fill_two_roles() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any());
        a.add(RoleId::new("q"), "A", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p"), RoleId::new("q")])];
        assert!(match_performance(&cands, &critical).is_none());
    }

    #[test]
    fn alternative_critical_sets_tried_in_order() {
        let mut a = Arena::new();
        a.add(RoleId::new("writer"), "W", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("reader")]), set(&[RoleId::new("writer")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert!(m.contains_key(&RoleId::new("writer")));
    }

    #[test]
    fn cover_is_greedily_extended() {
        // Critical set is just p, but q's candidate is compatible and
        // should be swept into the same performance.
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any());
        a.add(RoleId::new("q"), "B", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn incompatible_extension_skipped() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "A", Partners::any().named("q", "C"));
        a.add(RoleId::new("q"), "B", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m.len(), 1, "B is not acceptable to A as q");
    }

    #[test]
    fn fifo_preference_among_equals() {
        let mut a = Arena::new();
        a.add(RoleId::new("p"), "First", Partners::any());
        a.add(RoleId::new("p"), "Second", Partners::any());
        let cands = a.candidates();
        let critical = vec![set(&[RoleId::new("p")])];
        let m = match_performance(&cands, &critical).unwrap();
        assert_eq!(m[&RoleId::new("p")], 0);
    }

    #[test]
    fn admissible_checks_both_directions() {
        let cast = vec![(
            RoleId::new("p"),
            ProcessId::new("A"),
            Partners::any().named("q", "B"),
        )];
        let role_q = RoleId::new("q");
        let proc_b = ProcessId::new("B");
        let proc_c = ProcessId::new("C");
        let unconstrained = Partners::any();
        let ok = Candidate {
            idx: 0,
            role: &role_q,
            process: &proc_b,
            partners: &unconstrained,
        };
        assert!(admissible(&ok, &cast));
        let bad = Candidate {
            idx: 0,
            role: &role_q,
            process: &proc_c,
            partners: &unconstrained,
        };
        assert!(!admissible(&bad, &cast), "cast member A demands q=B");
        let wants_other_p = Partners::any().named("p", "Z");
        let bad2 = Candidate {
            idx: 0,
            role: &role_q,
            process: &proc_b,
            partners: &wants_other_p,
        };
        assert!(!admissible(&bad2, &cast), "candidate rejects A as p");
    }

    #[test]
    fn admissible_rejects_duplicate_process() {
        let cast = vec![(RoleId::new("p"), ProcessId::new("A"), Partners::any())];
        let role_q = RoleId::new("q");
        let proc_a = ProcessId::new("A");
        let unconstrained = Partners::any();
        let cand = Candidate {
            idx: 0,
            role: &role_q,
            process: &proc_a,
            partners: &unconstrained,
        };
        assert!(!admissible(&cand, &cast));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ProcessSel;
    use proptest::prelude::*;

    fn arb_partners(n_roles: usize, n_procs: usize) -> impl Strategy<Value = Partners> {
        proptest::collection::vec((0..n_roles, proptest::option::of(0..n_procs)), 0..=n_roles)
            .prop_map(move |constraints| {
                let mut p = Partners::any();
                for (role, proc_opt) in constraints {
                    let sel = match proc_opt {
                        Some(q) => ProcessSel::is(format!("P{q}")),
                        None => ProcessSel::Any,
                    };
                    p = p.with(RoleId::new(format!("r{role}")), sel);
                }
                p
            })
    }

    proptest! {
        /// Soundness: any assignment returned satisfies every pairwise
        /// constraint and never reuses a process.
        #[test]
        fn matcher_is_sound(
            entries in proptest::collection::vec(
                (0usize..4, 0usize..6, arb_partners(4, 6)),
                1..12,
            ),
            cover_roles in proptest::collection::btree_set(0usize..4, 1..4),
        ) {
            let owned: Vec<(RoleId, ProcessId, Partners)> = entries
                .into_iter()
                .map(|(r, p, partners)| {
                    (RoleId::new(format!("r{r}")), ProcessId::new(format!("P{p}")), partners)
                })
                .collect();
            let cands: Vec<Candidate<'_>> = owned
                .iter()
                .enumerate()
                .map(|(idx, (role, process, partners))| Candidate { idx, role, process, partners })
                .collect();
            let critical = vec![cover_roles
                .iter()
                .map(|r| RoleId::new(format!("r{r}")))
                .collect::<std::collections::BTreeSet<_>>()];

            if let Some(assignment) = match_performance(&cands, &critical) {
                // Covers the critical set.
                for r in &critical[0] {
                    prop_assert!(assignment.contains_key(r));
                }
                let chosen: Vec<&Candidate<'_>> =
                    assignment.values().map(|&i| &cands[i]).collect();
                // Role consistency and process uniqueness.
                for (role, &i) in &assignment {
                    prop_assert_eq!(cands[i].role, role);
                }
                let mut procs: Vec<_> = chosen.iter().map(|c| c.process.clone()).collect();
                procs.sort();
                procs.dedup();
                prop_assert_eq!(procs.len(), chosen.len());
                // Pairwise constraint satisfaction.
                for a in &chosen {
                    for b in &chosen {
                        if a.role != b.role {
                            prop_assert!(a.partners.allows(b.role, b.process));
                        }
                    }
                }
            }
        }

        /// Completeness on unconstrained instances: if every critical role
        /// has a distinct-process candidate, a cover is found.
        #[test]
        fn matcher_finds_trivial_covers(n_roles in 1usize..6) {
            let owned: Vec<(RoleId, ProcessId, Partners)> = (0..n_roles)
                .map(|r| {
                    (RoleId::new(format!("r{r}")), ProcessId::new(format!("P{r}")), Partners::any())
                })
                .collect();
            let cands: Vec<Candidate<'_>> = owned
                .iter()
                .enumerate()
                .map(|(idx, (role, process, partners))| Candidate { idx, role, process, partners })
                .collect();
            let critical = vec![(0..n_roles)
                .map(|r| RoleId::new(format!("r{r}")))
                .collect::<std::collections::BTreeSet<_>>()];
            prop_assert!(match_performance(&cands, &critical).is_some());
        }
    }
}
