//! Scripts: a communication abstraction mechanism.
//!
//! This crate implements the *script* construct of Nissim Francez and
//! Brent Hailpern, "Script: A Communication Abstraction Mechanism"
//! (PODC 1983). A script localizes a *pattern of communication* between a
//! set of **roles** — formal process parameters — to which actual
//! processes **enroll** in order to participate. The body of each role
//! runs on the enrolling thread (the role is a logical continuation of
//! the enroller; the engine spawns no processes of its own), and the
//! roles communicate through synchronous rendezvous and guarded
//! selection.
//!
//! Supported, directly from the paper:
//!
//! * **partners-named, partners-unnamed, and partially named enrollment**
//!   ([`Enrollment`], [`Partners`], [`ProcessSel`]), with joint
//!   enrollment resolved by an exact backtracking matcher;
//! * **delayed and immediate initiation**, **delayed and immediate
//!   termination** ([`Initiation`], [`Termination`]);
//! * **critical role sets** ([`CriticalSet`]) with the paper's freeze
//!   semantics: once a critical set is filled, every unfilled role reads
//!   as terminated ([`RoleCtx::terminated`]) and communication with it
//!   fails with a distinguished error;
//! * **successive and overlapping activations** (§II): enrollments that
//!   cover a critical role set start a fresh performance immediately,
//!   even while earlier performances of the same instance are still in
//!   progress — each performance runs on its own engine shard and
//!   network, so casts never interact across performances;
//! * **indexed role families**, and — from the paper's future-work
//!   section — **open-ended families** whose size is fixed per
//!   performance, plus **nested enrollment** (role bodies may enroll into
//!   other scripts, since they run on the enrolling thread).
//!
//! # Example: synchronized star broadcast (paper Figure 3)
//!
//! ```
//! use script_core::{RoleId, Script, ScriptError};
//!
//! const N: usize = 5;
//! let mut b = Script::<u64>::builder("star_broadcast");
//! let sender = b.role("sender", move |ctx, data: u64| {
//!     for i in 0..N {
//!         ctx.send(&RoleId::indexed("recipient", i), data)?;
//!     }
//!     Ok(())
//! });
//! let recipient = b.family("recipient", N, |ctx, ()| {
//!     ctx.recv_from(&RoleId::new("sender"))
//! });
//! let script = b.build()?;
//! let instance = script.instance();
//!
//! std::thread::scope(|s| {
//!     let mut receivers = Vec::new();
//!     for i in 0..N {
//!         let instance = &instance;
//!         let recipient = &recipient;
//!         receivers.push(s.spawn(move || instance.enroll_member(recipient, i, ())));
//!     }
//!     instance.enroll(&sender, 42).unwrap();
//!     for r in receivers {
//!         assert_eq!(r.join().unwrap().unwrap(), 42);
//!     }
//! });
//! # Ok::<(), ScriptError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod ctx;
mod engine;
mod enroll;
mod error;
mod estimator;
mod handle;
mod ids;
mod matcher;
pub mod observer;
mod policy;
mod retry;
mod spec;

use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use ctx::{Event, Guard, RoleCtx};
pub use engine::{NetworkFactory, PerformanceNet};
pub use enroll::{Enrollment, Partners, ProcessSel};
pub use error::ScriptError;
pub use estimator::{LatencyEstimator, WindowFloor};
pub use retry::RetryPolicy;
// Fault injection is configured with the channel-layer plan type.
pub use handle::{FamilyHandle, RoleHandle};
pub use ids::{PerformanceId, ProcessId, RoleId};
pub use observer::{
    InstanceMetrics, LatencyHistogram, MetricsObserver, MultiObserver, Observer,
    PerformanceMetrics, RingObserver, TelemetryEvent, TelemetryPayload,
};
pub use policy::{
    AdaptiveWindow, CriticalEntry, CriticalSet, Initiation, Termination, WatchdogPolicy,
};
pub use script_chan::{FaultKind, FaultPlan, FaultRecord, LabelFn, LatencyOp, LatencySample};
pub use spec::{FamilySize, ScriptBuilder};

use engine::{Engine, RoleRef};
use spec::ScriptSpec;

/// One entry of the optional instance event log (see
/// [`Instance::enable_event_log`]). Events record the engine's
/// decisions in order: queueing, performance starts, admissions,
/// freezes, finishes, completions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScriptEvent {
    /// An enrollment entered the pending queue. For auto-indexed open
    /// family enrollments the role carries the family name without an
    /// index.
    EnrollmentQueued {
        /// The requested role.
        role: RoleId,
        /// The enrolling process.
        process: ProcessId,
    },
    /// A new performance was created.
    PerformanceStarted {
        /// Its sequence number.
        performance: PerformanceId,
    },
    /// A pending enrollment was admitted into the performance's cast.
    RoleAdmitted {
        /// The performance joined.
        performance: PerformanceId,
        /// The concrete role (auto-indexed members are resolved here).
        role: RoleId,
        /// The enrolled process.
        process: ProcessId,
    },
    /// The cast froze: unfilled roles became terminated.
    CastFrozen {
        /// The affected performance.
        performance: PerformanceId,
    },
    /// A role's body returned.
    RoleFinished {
        /// The performance it ran in.
        performance: PerformanceId,
        /// The finished role.
        role: RoleId,
    },
    /// The performance aborted (panic, close, or watchdog).
    PerformanceAborted {
        /// The aborted performance.
        performance: PerformanceId,
    },
    /// The watchdog found the performance quiescent past its deadline
    /// (always followed by [`ScriptEvent::PerformanceAborted`]).
    PerformanceStalled {
        /// The stalled performance.
        performance: PerformanceId,
        /// The rendezvous-latency quantile the performance's estimator
        /// had observed when the watchdog fired (`None` before any
        /// rendezvous completed).
        observed_p99: Option<Duration>,
        /// The quiescence window the watchdog had armed — fixed or
        /// adaptively derived (see [`WatchdogPolicy`]).
        window: Duration,
    },
    /// The chaos layer injected a fault into the performance's network.
    /// Streamed at injection time when the performance opened with
    /// telemetry enabled; otherwise recorded when the performance
    /// completes, in schedule order.
    FaultInjected {
        /// The affected performance.
        performance: PerformanceId,
        /// Human-readable fault record (`kind from->to #seq`).
        fault: String,
    },
    /// A rendezvous completed: `from`'s message was picked up by `to`.
    /// Observed at delivery on the performance's transport, so the
    /// stream of these events *is* the performance's communication
    /// trace — the input a protocol conformance monitor checks against
    /// a projected global type (`script_proto::monitor`). Only emitted
    /// while a subscriber is installed; the no-subscriber cost stays
    /// one relaxed atomic load on the transport's delivery path.
    Rendezvous {
        /// The performance the rendezvous belongs to.
        performance: PerformanceId,
        /// The sending role.
        from: RoleId,
        /// The receiving role.
        to: RoleId,
        /// The message label, when a labeler is installed
        /// ([`Instance::set_message_labeler`]); `None` otherwise.
        label: Option<String>,
        /// Zero-based delivery counter of the directed edge
        /// `from -> to` within this performance — deterministic across
        /// runs and transports, so duplicate or reordered observations
        /// are detectable.
        seq: u64,
    },
    /// Every role of the performance terminated.
    PerformanceCompleted {
        /// The completed performance.
        performance: PerformanceId,
        /// Whether it completed by abort.
        aborted: bool,
    },
    /// The instance was closed.
    InstanceClosed,
}

/// A diagnostic snapshot of one performance in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct PerformanceStatus {
    /// The performance's sequence number.
    pub id: PerformanceId,
    /// The cast so far: role-to-process bindings.
    pub cast: Vec<(RoleId, ProcessId)>,
    /// Whether the cast is frozen (no further roles may join).
    pub frozen: bool,
    /// Roles currently executing their bodies.
    pub running: usize,
    /// Roles that have finished.
    pub finished: usize,
    /// Whether the performance has been aborted.
    pub aborted: bool,
}

/// A diagnostic snapshot of a script instance (see
/// [`Instance::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct InstanceStatus {
    /// Performances that have fully terminated.
    pub completed_performances: u64,
    /// Enrollments queued but not yet admitted.
    pub pending_enrollments: usize,
    /// The oldest performance in progress, if any (kept for callers that
    /// predate overlapping activations; equals `performances.first()`).
    pub current: Option<PerformanceStatus>,
    /// Every performance in progress, oldest first. Overlapping
    /// activations mean there can be more than one.
    pub performances: Vec<PerformanceStatus>,
    /// Events the bounded event log has dropped to overflow over its
    /// lifetime (see [`Instance::enable_event_log`]); 0 while no log
    /// is enabled. Drops are also surfaced in-stream as a
    /// [`TelemetryPayload::Lost`] marker on the next
    /// [`Instance::take_telemetry`] drain.
    pub events_dropped: u64,
}

/// An immutable, validated script declaration.
///
/// Build one with [`Script::builder`], then create any number of
/// [`Instance`]s (the paper's multiple instances of a generic script).
/// `M` is the message type exchanged between the roles of this script.
pub struct Script<M> {
    spec: Arc<ScriptSpec<M>>,
}

impl<M> Clone for Script<M> {
    fn clone(&self) -> Self {
        Self {
            spec: Arc::clone(&self.spec),
        }
    }
}

impl<M> fmt::Debug for Script<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Script").field("spec", &self.spec).finish()
    }
}

impl<M: Send + Clone + 'static> Script<M> {
    /// Starts declaring a script named `name`.
    pub fn builder(name: impl Into<String>) -> ScriptBuilder<M> {
        ScriptBuilder::new(name)
    }

    pub(crate) fn from_spec(spec: ScriptSpec<M>) -> Self {
        Self {
            spec: Arc::new(spec),
        }
    }

    /// The script's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Creates a fresh instance of this script. Instances are
    /// independent: enrollments and performances of one never interact
    /// with another.
    pub fn instance(&self) -> Instance<M> {
        Instance {
            engine: Engine::new(Arc::clone(&self.spec)),
        }
    }

    #[cfg(test)]
    pub(crate) fn spec(&self) -> &ScriptSpec<M> {
        &self.spec
    }
}

/// A live instance of a [`Script`], accepting enrollments.
///
/// Cloning yields another handle to the same instance. All enrollment
/// methods block the calling thread for the duration of its role (that is
/// the point: the role body is a logical continuation of the caller), and
/// return the role's result parameters.
pub struct Instance<M> {
    engine: Arc<Engine<M>>,
}

impl<M> Clone for Instance<M> {
    fn clone(&self) -> Self {
        Self {
            engine: Arc::clone(&self.engine),
        }
    }
}

impl<M> fmt::Debug for Instance<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("engine", &self.engine)
            .finish()
    }
}

impl<M: Send + Clone + 'static> Instance<M> {
    /// The script's name.
    pub fn name(&self) -> &str {
        &self.engine.spec.name
    }

    fn run<O: Send + 'static>(
        &self,
        role: RoleRef,
        params: Box<dyn Any + Send>,
        options: Enrollment,
    ) -> Result<O, ScriptError> {
        let out = self.engine.enroll_erased(role, params, options)?;
        out.downcast::<O>()
            .map(|b| *b)
            .map_err(|_| ScriptError::ParamType {
                role: RoleId::new("<output>"),
                expected: std::any::type_name::<O>(),
            })
    }

    /// Enrolls in a singleton role with default options (anonymous
    /// process, unnamed partners, no deadline). Blocks until the role has
    /// been admitted to a performance, run, and — under delayed
    /// termination — the whole cast has finished; returns the role's
    /// result.
    ///
    /// # Errors
    ///
    /// Any [`ScriptError`] produced by admission or by the role body;
    /// see [`Instance::enroll_with`].
    pub fn enroll<P, O>(&self, role: &RoleHandle<M, P, O>, params: P) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.enroll_with(role, params, Enrollment::new())
    }

    /// Enrolls in a singleton role with explicit [`Enrollment`] options
    /// (process identity, partner constraints, deadline).
    ///
    /// # Errors
    ///
    /// * [`ScriptError::Timeout`] if the enrollment deadline expires,
    /// * [`ScriptError::PerformanceAborted`] if a partner role panicked,
    /// * [`ScriptError::RolePanicked`] if this role's own body panicked,
    /// * [`ScriptError::InstanceClosed`] after [`Instance::close`],
    /// * any error returned by the role body itself.
    pub fn enroll_with<P, O>(
        &self,
        role: &RoleHandle<M, P, O>,
        params: P,
        options: Enrollment,
    ) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.run(
            RoleRef::Concrete(role.id.clone()),
            Box::new(params),
            options,
        )
    }

    /// Enrolls as member `index` of a role family.
    ///
    /// # Errors
    ///
    /// As [`Instance::enroll_with`], plus [`ScriptError::UnknownRole`]
    /// for an out-of-range index.
    pub fn enroll_member<P, O>(
        &self,
        family: &FamilyHandle<M, P, O>,
        index: usize,
        params: P,
    ) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.enroll_member_with(family, index, params, Enrollment::new())
    }

    /// [`Instance::enroll_member`] with explicit options.
    ///
    /// # Errors
    ///
    /// As [`Instance::enroll_member`].
    pub fn enroll_member_with<P, O>(
        &self,
        family: &FamilyHandle<M, P, O>,
        index: usize,
        params: P,
        options: Enrollment,
    ) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.run(
            RoleRef::Concrete(family.at(index)),
            Box::new(params),
            options,
        )
    }

    /// Enrolls as the next free member of an *open* family (the index is
    /// assigned at admission; the body can read it from
    /// [`RoleCtx::role`]).
    ///
    /// # Errors
    ///
    /// As [`Instance::enroll_with`], plus [`ScriptError::UnknownRole`] if
    /// the family is not open-ended.
    pub fn enroll_auto<P, O>(
        &self,
        family: &FamilyHandle<M, P, O>,
        params: P,
    ) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.enroll_auto_with(family, params, Enrollment::new())
    }

    /// [`Instance::enroll_auto`] with explicit options.
    ///
    /// # Errors
    ///
    /// As [`Instance::enroll_auto`].
    pub fn enroll_auto_with<P, O>(
        &self,
        family: &FamilyHandle<M, P, O>,
        params: P,
        options: Enrollment,
    ) -> Result<O, ScriptError>
    where
        P: Send + 'static,
        O: Send + 'static,
    {
        self.run(
            RoleRef::NextOf(family.name.clone()),
            Box::new(params),
            options,
        )
    }

    /// Freezes the cast of the current performance: unfilled roles become
    /// terminated, and no further enrollments join it. Intended for
    /// open-ended scripts without a critical role set.
    pub fn seal_cast(&self) {
        self.engine.seal_cast();
    }

    /// The number of performances that have fully terminated.
    pub fn completed_performances(&self) -> u64 {
        self.engine.completed_performances()
    }

    /// The number of enrollments currently queued but not yet admitted
    /// to a performance. Useful for staging enrollments when several
    /// alternative critical role sets could fire (see the lock-manager
    /// crate) and for diagnostics.
    pub fn pending_enrollments(&self) -> usize {
        self.engine.pending_enrollments()
    }

    /// A diagnostic snapshot: completed performances, queued
    /// enrollments, and the cast of the performance in progress.
    pub fn status(&self) -> InstanceStatus {
        self.engine.status()
    }

    /// Enables a bounded in-memory event log — a built-in
    /// [`RingObserver`] on the instance's telemetry plane. When full,
    /// the oldest events are dropped, but no longer silently: the drop
    /// count is surfaced via [`InstanceStatus::events_dropped`] and as
    /// a [`TelemetryPayload::Lost`] marker on the next
    /// [`Instance::take_telemetry`] drain. Calling it again resizes
    /// and clears the log (including its drop counters).
    pub fn enable_event_log(&self, capacity: usize) {
        self.engine.enable_event_log(capacity);
    }

    /// Drains the event log and returns its lifecycle events
    /// ([`ScriptEvent`]), in order. Latency samples, watchdog arms,
    /// and loss markers also retained by the log are skipped here; use
    /// [`Instance::take_telemetry`] for the full stream.
    pub fn take_events(&self) -> Vec<ScriptEvent> {
        self.engine.take_events()
    }

    /// Drains the event log and returns the full telemetry stream
    /// ([`TelemetryEvent`]): lifecycle events, rendezvous latency
    /// samples, watchdog window arms, and — if the log overflowed
    /// since the last drain — a leading [`TelemetryPayload::Lost`]
    /// marker.
    pub fn take_telemetry(&self) -> Vec<TelemetryEvent> {
        self.engine.take_telemetry()
    }

    /// Subscribes `observer` to the instance's telemetry plane,
    /// replacing any previous subscriber. Every engine decision,
    /// rendezvous latency sample, watchdog arm, and injected fault is
    /// pushed to it as a [`TelemetryEvent`] at the moment it happens —
    /// including hub-side faults of performances placed on a remote
    /// transport, which arrive on the same per-performance sequence.
    /// Composes with [`Instance::enable_event_log`]: when both are
    /// installed the engine fans out to both (see [`MultiObserver`]).
    ///
    /// `on_event` runs synchronously on the producing thread, possibly
    /// with engine locks held: observers must not block and must not
    /// call back into this instance's API (see
    /// [`observer`] module docs). Events of one
    /// performance carry a gapless, strictly increasing `seq` and are
    /// delivered in that order; fault streaming starts with the first
    /// performance opened *after* an observer (or the event log) is
    /// installed.
    pub fn set_observer(&self, observer: std::sync::Arc<dyn Observer>) {
        self.engine.set_observer(observer);
    }

    /// Unsubscribes the user observer installed by
    /// [`Instance::set_observer`] (the event log, if enabled, keeps
    /// receiving events).
    pub fn clear_observer(&self) {
        self.engine.clear_observer();
    }

    /// Closes the instance: pending and future enrollments fail with
    /// [`ScriptError::InstanceClosed`], and a performance in progress is
    /// aborted.
    pub fn close(&self) {
        self.engine.close();
    }

    /// Arms a quiescence watchdog: any **future** performance whose
    /// network makes no communication progress for `window` is aborted,
    /// and its participants unblock with [`ScriptError::Stalled`].
    ///
    /// "Progress" means network activity — sends landing, receives
    /// completing, roles joining or finishing. A performance of roles
    /// that compute without communicating for longer than `window` will
    /// be treated as hung; size the window accordingly — or let the
    /// engine size it from observed latency with
    /// [`Instance::set_watchdog_policy`] and
    /// [`WatchdogPolicy::Adaptive`]. This method is shorthand for
    /// [`WatchdogPolicy::Fixed`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_watchdog(&self, window: Duration) {
        self.engine
            .set_watchdog_policy(WatchdogPolicy::Fixed(window));
    }

    /// Arms the quiescence watchdog of **future** performances with an
    /// explicit [`WatchdogPolicy`]. Under [`WatchdogPolicy::Adaptive`]
    /// each performance's window is re-derived on every watchdog poll
    /// from that performance's *own* observed rendezvous latency —
    /// `max(min_window, multiplier × p99)` — so in-process performances
    /// keep tight millisecond windows while socket-backed performances
    /// widen to RPC latency without per-transport tuning. The chosen
    /// window and the observed p99 are carried on any resulting
    /// [`ScriptEvent::PerformanceStalled`] event.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (a zero window, `multiplier < 1`,
    /// a quantile outside `(0, 1]`, zero sample capacity).
    pub fn set_watchdog_policy(&self, policy: WatchdogPolicy) {
        self.engine.set_watchdog_policy(policy);
    }

    /// Disarms the watchdog for future performances.
    pub fn clear_watchdog(&self) {
        self.engine.clear_watchdog();
    }

    /// Seeds the nondeterministic choices (selection shuffling) of every
    /// future performance's network, derived per performance, so that
    /// chaos runs are reproducible.
    pub fn set_chaos_seed(&self, seed: u64) {
        self.engine.set_chaos_seed(seed);
    }

    /// Injects the deterministic fault schedule described by `plan` into
    /// every future performance (each performance draws an independent
    /// schedule derived from the plan's seed). Injected faults surface
    /// as [`ScriptEvent::FaultInjected`] telemetry: streamed live, at
    /// injection time, for performances opened while an observer or
    /// the event log was installed, and drained in schedule order at
    /// completion otherwise.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.engine.set_fault_plan(plan);
    }

    /// Stops injecting faults into future performances.
    pub fn clear_fault_plan(&self) {
        self.engine.clear_fault_plan();
    }

    /// Installs a message labeler for every **future** performance:
    /// [`ScriptEvent::Rendezvous`] telemetry of those performances
    /// carries `label_of(&message)` as its label, letting a protocol
    /// conformance monitor (`script_proto::monitor`) distinguish
    /// message kinds. A plain `fn` pointer (not a closure) so the
    /// labeler can cross the transport seam without adding bounds;
    /// it runs on the delivery path under transport locks and must be
    /// pure and fast. Without a labeler, rendezvous events carry
    /// `label: None`.
    ///
    /// On a hub-backed network the labels observed by spokes are
    /// extracted *hub-side* (the hub owns the rendezvous state); use
    /// `TransportServer::set_message_labeler` there — this instance
    /// labeler applies to networks whose delivery happens in-process.
    pub fn set_message_labeler(&self, label_of: script_chan::LabelFn<M>) {
        self.engine.set_message_labeler(label_of);
    }

    /// Routes every **future** performance's network through `factory`
    /// — the distribution seam. The factory receives a
    /// [`PerformanceNet`] describing the performance and returns the
    /// [`Network`](script_chan::Network) it should run on; returning
    /// one backed by a socket transport (`script-net`) lets a single
    /// performance span OS processes. Chaos seeds, fault plans, and the
    /// watchdog compose unchanged: the engine reseeds and attaches the
    /// plan to whatever network the factory returns.
    pub fn set_network_factory(&self, factory: std::sync::Arc<NetworkFactory<M>>) {
        self.engine.set_network_factory(factory);
    }

    /// Future performances build the default in-process network again.
    pub fn clear_network_factory(&self) {
        self.engine.clear_network_factory();
    }

    /// Attaches a placement hint to every **future** performance's
    /// [`PerformanceNet`]: an opaque string the network factory may use
    /// to decide *where* the performance's rendezvous state lives. A
    /// federated `script-net` deployment treats it as the role-family
    /// key its control plane shards on, so performances sharing a hint
    /// are matched by the same hub shard; the default in-process
    /// network ignores it entirely.
    pub fn set_placement_hint(&self, hint: impl Into<String>) {
        self.engine.set_placement_hint(hint.into());
    }

    /// Future performances carry no placement hint.
    pub fn clear_placement_hint(&self) {
        self.engine.clear_placement_hint();
    }

    /// [`Instance::enroll_with`] under a [`RetryPolicy`]: transient
    /// failures ([`ScriptError::is_transient`]) are retried with
    /// exponential backoff until the policy's attempts are exhausted;
    /// the last error is returned. Requires cloneable parameters.
    ///
    /// An enrollment deadline in `options` applies per attempt.
    ///
    /// # Errors
    ///
    /// As [`Instance::enroll_with`]; permanent errors are returned
    /// immediately.
    pub fn enroll_with_retry<P, O>(
        &self,
        role: &RoleHandle<M, P, O>,
        params: P,
        options: Enrollment,
        policy: &RetryPolicy,
    ) -> Result<O, ScriptError>
    where
        P: Clone + Send + 'static,
        O: Send + 'static,
    {
        policy.run(|_attempt| self.enroll_with(role, params.clone(), options.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    fn sender_id() -> RoleId {
        RoleId::new("sender")
    }

    type StarScript = (
        Script<u64>,
        RoleHandle<u64, u64, ()>,
        FamilyHandle<u64, (), u64>,
    );

    /// Figure 3: synchronized star broadcast, delayed/delayed.
    fn star_script(n: usize) -> StarScript {
        let mut b = Script::<u64>::builder("star_broadcast");
        let sender = b.role("sender", move |ctx, data: u64| {
            for i in 0..n {
                ctx.send(&RoleId::indexed("recipient", i), data)?;
            }
            Ok(())
        });
        let recipient = b.family("recipient", n, |ctx, ()| ctx.recv_from(&sender_id()));
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        (b.build().unwrap(), sender, recipient)
    }

    #[test]
    fn star_broadcast_delivers_to_all() {
        let (script, sender, recipient) = star_script(5);
        let inst = script.instance();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..5 {
                let inst = &inst;
                let recipient = &recipient;
                handles.push(s.spawn(move || inst.enroll_member(recipient, i, ())));
            }
            inst.enroll(&sender, 7).unwrap();
            for h in handles {
                assert_eq!(h.join().unwrap().unwrap(), 7);
            }
        });
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn delayed_initiation_waits_for_full_cast() {
        let (script, sender, _recipient) = star_script(2);
        let inst = script.instance();
        // Only the sender enrolls: with delayed initiation nothing starts,
        // and the enrollment times out.
        let err = inst
            .enroll_with(
                &sender,
                1,
                Enrollment::new().timeout(Duration::from_millis(50)),
            )
            .unwrap_err();
        assert_eq!(err, ScriptError::Timeout);
        assert_eq!(inst.completed_performances(), 0);
    }

    /// Figure 4: pipeline broadcast with immediate initiation and
    /// termination.
    #[test]
    fn pipeline_broadcast_immediate() {
        const N: usize = 4;
        let mut b = Script::<u64>::builder("pipeline_broadcast");
        let sender = b.role("sender", |ctx, data: u64| {
            ctx.send(&RoleId::indexed("recipient", 0), data)?;
            Ok(())
        });
        let recipient = b.family("recipient", N, move |ctx, ()| {
            let me = ctx.role().index().unwrap();
            let value = if me == 0 {
                ctx.recv_from(&sender_id())?
            } else {
                ctx.recv_from(&RoleId::indexed("recipient", me - 1))?
            };
            if me + 1 < N {
                ctx.send(&RoleId::indexed("recipient", me + 1), value)?;
            }
            Ok(value)
        });
        b.initiation(Initiation::Immediate)
            .termination(Termination::Immediate);
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            // The sender can enroll, deliver to recipient 0, and leave
            // before later recipients even arrive.
            let inst_s = inst.clone();
            let sender_h = s.spawn(move || inst_s.enroll(&sender, 9));
            let mut handles = Vec::new();
            for i in 0..N {
                let inst = &inst;
                let recipient = &recipient;
                // Stagger arrivals to exercise the immediate regime.
                std::thread::sleep(Duration::from_millis(2));
                handles.push(s.spawn(move || inst.enroll_member(recipient, i, ())));
            }
            sender_h.join().unwrap().unwrap();
            for h in handles {
                assert_eq!(h.join().unwrap().unwrap(), 9);
            }
        });
        assert_eq!(inst.completed_performances(), 1);
    }

    /// Serially driven rounds each run as their own performance, in
    /// order. (The full Figure 1 semantics — an enrollment that cannot
    /// cover the critical set waits out the performance in progress —
    /// is pinned in `tests/successive_performances.rs`.)
    #[test]
    fn successive_performances_complete_in_order() {
        let mut b = Script::<u8>::builder("two_perf");
        let ping = b.role("ping", |ctx, ()| ctx.send(&RoleId::new("pong"), 1));
        let pong = b.role("pong", |ctx, ()| {
            ctx.recv_from(&RoleId::new("ping"))?;
            Ok(())
        });
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let i1 = inst.clone();
                let ping = ping.clone();
                let h = s.spawn(move || i1.enroll(&ping, ()));
                inst.enroll(&pong, ()).unwrap();
                h.join().unwrap().unwrap();
            }
        });
        assert_eq!(inst.completed_performances(), 3);
    }

    /// Figure 2 semantics: two broadcasts by the same processes never
    /// cross performances.
    #[test]
    fn repeated_enrollments_deliver_in_order() {
        let (script, sender, recipient) = star_script(2);
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let r1 = recipient.clone();
            let h0 = s.spawn(move || {
                (0..10)
                    .map(|_| i1.enroll_member(&r1, 0, ()).unwrap())
                    .collect::<Vec<u64>>()
            });
            let i2 = inst.clone();
            let r2 = recipient.clone();
            let h1 = s.spawn(move || {
                (0..10)
                    .map(|_| i2.enroll_member(&r2, 1, ()).unwrap())
                    .collect::<Vec<u64>>()
            });
            for x in 0..10 {
                inst.enroll(&sender, x).unwrap();
            }
            let expected: Vec<u64> = (0..10).collect();
            assert_eq!(h0.join().unwrap(), expected);
            assert_eq!(h1.join().unwrap(), expected);
        });
        assert_eq!(inst.completed_performances(), 10);
    }

    #[test]
    fn partner_named_enrollment_matches() {
        let mut b = Script::<u8>::builder("named");
        let left = b.role("left", |ctx, ()| ctx.send(&RoleId::new("right"), 1));
        let right = b.role("right", |ctx, ()| ctx.recv_from(&RoleId::new("left")));
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let left = left.clone();
            let h = s.spawn(move || {
                i1.enroll_with(
                    &left,
                    (),
                    Enrollment::as_process("L").partner("right", ProcessSel::is("R")),
                )
            });
            let got = inst
                .enroll_with(
                    &right,
                    (),
                    Enrollment::as_process("R").partner("left", ProcessSel::is("L")),
                )
                .unwrap();
            assert_eq!(got, 1);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn mismatched_partner_specs_never_start() {
        let mut b = Script::<u8>::builder("mismatch");
        let left = b.role("left", |ctx, ()| ctx.send(&RoleId::new("right"), 1));
        let right = b.role("right", |ctx, ()| ctx.recv_from(&RoleId::new("left")));
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let left = left.clone();
            let h = s.spawn(move || {
                i1.enroll_with(
                    &left,
                    (),
                    Enrollment::as_process("L")
                        .partner("right", ProcessSel::is("SOMEONE_ELSE"))
                        .timeout(Duration::from_millis(50)),
                )
            });
            let err = inst
                .enroll_with(
                    &right,
                    (),
                    Enrollment::as_process("R").timeout(Duration::from_millis(50)),
                )
                .unwrap_err();
            assert_eq!(err, ScriptError::Timeout);
            assert_eq!(h.join().unwrap().unwrap_err(), ScriptError::Timeout);
        });
        assert_eq!(inst.completed_performances(), 0);
    }

    /// Critical role sets: a reader-or-writer script can perform with
    /// only the reader; the writer role reads as terminated once the cast
    /// freezes.
    #[test]
    fn critical_set_allows_partial_cast() {
        let mut b = Script::<u8>::builder("partial");
        let server = b.role("server", |ctx, ()| {
            let mut served = 0;
            loop {
                let reader_done = ctx.terminated(&RoleId::new("reader"));
                let writer_done = ctx.terminated(&RoleId::new("writer"));
                if reader_done && writer_done {
                    return Ok(served);
                }
                match ctx.select(vec![
                    Guard::recv_from("reader").when(!reader_done),
                    Guard::recv_from("writer").when(!writer_done),
                    Guard::watch("reader").when(!reader_done),
                    Guard::watch("writer").when(!writer_done),
                ])? {
                    Event::Received { .. } => served += 1,
                    Event::Terminated { .. } => {}
                    Event::Sent { .. } => unreachable!(),
                }
            }
        });
        let reader = b.role("reader", |ctx, ()| ctx.send(&RoleId::new("server"), 1));
        let _writer: RoleHandle<u8, (), ()> =
            b.role("writer", |ctx, ()| ctx.send(&RoleId::new("server"), 2));
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        b.critical_set(CriticalSet::new().role("server").role("reader"));
        b.critical_set(CriticalSet::new().role("server").role("writer"));
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let server = server.clone();
            let h = s.spawn(move || i1.enroll(&server, ()));
            inst.enroll(&reader, ()).unwrap();
            assert_eq!(h.join().unwrap().unwrap(), 1);
        });
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn panicking_role_aborts_performance() {
        let mut b = Script::<u8>::builder("boom");
        let bomber = b.role("bomber", |_ctx, ()| -> Result<(), ScriptError> {
            panic!("deliberate test panic");
        });
        let victim = b.role("victim", |ctx, ()| ctx.recv_from(&RoleId::new("bomber")));
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let victim = victim.clone();
            let h = s.spawn(move || i1.enroll(&victim, ()));
            let err = inst.enroll(&bomber, ()).unwrap_err();
            assert_eq!(err, ScriptError::RolePanicked(RoleId::new("bomber")));
            let verr = h.join().unwrap().unwrap_err();
            assert_eq!(verr, ScriptError::PerformanceAborted);
        });
        // The instance recovers: the aborted performance still counts as
        // terminated, so the next can run.
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn instance_recovers_after_abort() {
        let mut b = Script::<u8>::builder("recover");
        let flaky = b.role("flaky", |_ctx, fail: bool| {
            if fail {
                panic!("first run fails");
            }
            Ok(11u8)
        });
        let script = b.build().unwrap();
        let inst = script.instance();
        let err = inst.enroll(&flaky, true).unwrap_err();
        assert_eq!(err, ScriptError::RolePanicked(RoleId::new("flaky")));
        assert_eq!(inst.enroll(&flaky, false).unwrap(), 11);
    }

    #[test]
    fn open_family_with_seal() {
        let mut b = Script::<u64>::builder("open_gather");
        let collector = b.role("collector", |ctx, expected: usize| {
            let mut sum = 0;
            let mut seen = 0;
            while seen < expected {
                let (_, v) = ctx.recv_any()?;
                sum += v;
                seen += 1;
            }
            Ok(sum)
        });
        let worker = b.open_family("worker", None, |ctx, v: u64| {
            ctx.send(&RoleId::new("collector"), v)?;
            Ok(())
        });
        b.initiation(Initiation::Immediate)
            .termination(Termination::Immediate);
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let collector = collector.clone();
            let h = s.spawn(move || i1.enroll(&collector, 3));
            let mut workers = Vec::new();
            for v in [10u64, 20, 30] {
                let inst = &inst;
                let worker = &worker;
                workers.push(s.spawn(move || inst.enroll_auto(worker, v)));
            }
            for w in workers {
                w.join().unwrap().unwrap();
            }
            assert_eq!(h.join().unwrap().unwrap(), 60);
            inst.seal_cast();
        });
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn open_family_auto_indices_are_distinct() {
        let seen = StdArc::new(AtomicUsize::new(0));
        let mut b = Script::<u8>::builder("indices");
        let seen2 = StdArc::clone(&seen);
        let member = b.open_family("member", Some(8), move |ctx, ()| {
            let idx = ctx.role().index().expect("family member has an index");
            seen2.fetch_or(1 << idx, Ordering::SeqCst);
            Ok(idx)
        });
        b.initiation(Initiation::Immediate)
            .termination(Termination::Immediate)
            .critical_set(CriticalSet::new().family_at_least("member", 3));
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let inst = &inst;
                    let member = &member;
                    s.spawn(move || inst.enroll_auto(member, ()))
                })
                .collect();
            let mut indices: Vec<usize> = handles
                .into_iter()
                .map(|h| h.join().unwrap().unwrap())
                .collect();
            indices.sort_unstable();
            assert_eq!(indices, vec![0, 1, 2]);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 0b111);
    }

    #[test]
    fn nested_enrollment_composes_scripts() {
        // Inner script: simple relay.
        let mut ib = Script::<u8>::builder("inner");
        let iping = ib.role("ping", |ctx, v: u8| ctx.send(&RoleId::new("pong"), v));
        let ipong = ib.role("pong", |ctx, ()| ctx.recv_from(&RoleId::new("ping")));
        let inner = ib.build().unwrap().instance();

        // Outer script: its role enrolls into the inner script.
        let mut ob = Script::<u8>::builder("outer");
        let inner2 = inner.clone();
        let iping2 = iping.clone();
        let outer_role = ob.role("driver", move |_ctx, v: u8| {
            inner2.enroll(&iping2, v)?;
            Ok(())
        });
        let outer = ob.build().unwrap().instance();

        std::thread::scope(|s| {
            let h = s.spawn(move || inner.enroll(&ipong, ()));
            outer.enroll(&outer_role, 42).unwrap();
            assert_eq!(h.join().unwrap().unwrap(), 42);
        });
    }

    #[test]
    fn close_rejects_pending_and_future() {
        let (script, sender, _rec) = star_script(2);
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let sender2 = sender.clone();
            let h = s.spawn(move || i1.enroll(&sender2, 1));
            std::thread::sleep(Duration::from_millis(20));
            inst.close();
            assert_eq!(h.join().unwrap().unwrap_err(), ScriptError::InstanceClosed);
        });
        assert_eq!(
            inst.enroll(&sender, 2).unwrap_err(),
            ScriptError::InstanceClosed
        );
    }

    #[test]
    fn out_of_range_member_rejected() {
        let (script, _sender, recipient) = star_script(2);
        let inst = script.instance();
        let err = inst.enroll_member(&recipient, 2, ()).unwrap_err();
        assert!(matches!(err, ScriptError::UnknownRole(_)));
    }

    #[test]
    fn enroll_auto_on_fixed_family_rejected() {
        let (script, _sender, recipient) = star_script(2);
        let inst = script.instance();
        let err = inst.enroll_auto(&recipient, ()).unwrap_err();
        assert!(matches!(err, ScriptError::UnknownRole(_)));
    }

    #[test]
    fn role_body_error_propagates_without_abort() {
        let mut b = Script::<u8>::builder("apperr");
        let failing = b.role("failing", |_ctx, ()| -> Result<(), ScriptError> {
            Err(ScriptError::app("business rule violated"))
        });
        let script = b.build().unwrap();
        let inst = script.instance();
        assert_eq!(
            inst.enroll(&failing, ()).unwrap_err(),
            ScriptError::App("business rule violated".into())
        );
        // Not an abort: the performance completed normally.
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn multiple_instances_are_independent() {
        let (script, sender, recipient) = star_script(1);
        let a = script.instance();
        let b_inst = script.instance();
        std::thread::scope(|s| {
            let a2 = a.clone();
            let b2 = b_inst.clone();
            let r1 = recipient.clone();
            let r2 = recipient.clone();
            let ha = s.spawn(move || a2.enroll_member(&r1, 0, ()));
            let hb = s.spawn(move || b2.enroll_member(&r2, 0, ()));
            a.enroll(&sender, 1).unwrap();
            b_inst.enroll(&sender, 2).unwrap();
            assert_eq!(ha.join().unwrap().unwrap(), 1);
            assert_eq!(hb.join().unwrap().unwrap(), 2);
        });
    }

    #[test]
    fn watchdog_aborts_deadlocked_performance() {
        let mut b = Script::<u8>::builder("deadlock");
        let left = b.role("left", |ctx, ()| {
            ctx.recv_from(&RoleId::new("right"))?;
            Ok(())
        });
        let right = b.role("right", |ctx, ()| {
            ctx.recv_from(&RoleId::new("left"))?;
            Ok(())
        });
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        inst.set_watchdog(Duration::from_millis(60));
        inst.enable_event_log(64);
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let left = left.clone();
            let h = s.spawn(move || i1.enroll(&left, ()));
            assert_eq!(inst.enroll(&right, ()).unwrap_err(), ScriptError::Stalled);
            assert_eq!(h.join().unwrap().unwrap_err(), ScriptError::Stalled);
        });
        let events = inst.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ScriptEvent::PerformanceStalled { .. })));
        // The stalled performance still terminated; the instance is free.
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn watchdog_spares_slow_but_live_performance() {
        let mut b = Script::<u8>::builder("slow");
        let ping = b.role("ping", |ctx, ()| {
            for _ in 0..3 {
                std::thread::sleep(Duration::from_millis(20));
                ctx.send(&RoleId::new("pong"), 1)?;
            }
            Ok(())
        });
        let pong = b.role("pong", |ctx, ()| {
            for _ in 0..3 {
                ctx.recv_from(&RoleId::new("ping"))?;
            }
            Ok(())
        });
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        // Adaptive windows instead of a hard-coded margin: the cold
        // performance is covered by the generous initial window, and
        // once samples arrive the window is derived from the observed
        // ~20 ms rendezvous latency — CI load stretches the samples and
        // the window together, so it cannot fake a stall.
        inst.set_watchdog_policy(WatchdogPolicy::adaptive());
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let ping = ping.clone();
            let h = s.spawn(move || i1.enroll(&ping, ()));
            inst.enroll(&pong, ()).unwrap();
            h.join().unwrap().unwrap();
        });
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn injected_drop_stalls_and_surfaces_fault_events() {
        let mut b = Script::<u8>::builder("lossy");
        // Request/reply: if the request is lost both sides block — the
        // requester awaiting the reply, the replier awaiting the request.
        let src = b.role("src", |ctx, ()| {
            ctx.send(&RoleId::new("dst"), 7)?;
            ctx.recv_from(&RoleId::new("dst"))?;
            Ok(())
        });
        let dst = b.role("dst", |ctx, ()| {
            let v = ctx.recv_from(&RoleId::new("src"))?;
            ctx.send(&RoleId::new("src"), v)?;
            Ok(())
        });
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        inst.set_chaos_seed(1);
        inst.set_fault_plan(FaultPlan::new(1).with_drop(1.0));
        inst.set_watchdog(Duration::from_millis(60));
        inst.enable_event_log(64);
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let src = src.clone();
            let h = s.spawn(move || i1.enroll(&src, ()));
            // The receiver starves on the dropped message until the
            // watchdog calls the performance stalled.
            assert_eq!(inst.enroll(&dst, ()).unwrap_err(), ScriptError::Stalled);
            // The sender may have finished cleanly (its send "succeeded")
            // or observed the stall, depending on timing.
            let _ = h.join().unwrap();
        });
        let events = inst.take_events();
        assert!(events.iter().any(
            |e| matches!(e, ScriptEvent::FaultInjected { fault, .. } if fault.contains("drop"))
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, ScriptEvent::PerformanceStalled { .. })));

        // Recovery: with the plan cleared, the same instance admits a
        // fresh cast and completes cleanly.
        inst.clear_fault_plan();
        inst.clear_watchdog();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let src = src.clone();
            let h = s.spawn(move || i1.enroll(&src, ()));
            inst.enroll(&dst, ()).unwrap();
            h.join().unwrap().unwrap();
        });
        assert_eq!(inst.completed_performances(), 2);
    }

    #[test]
    fn enroll_with_retry_recovers_from_timeout() {
        let mut b = Script::<u8>::builder("late_partner");
        let ping = b.role("ping", |ctx, ()| ctx.send(&RoleId::new("pong"), 1));
        let pong = b.role("pong", |ctx, ()| {
            ctx.recv_from(&RoleId::new("ping"))?;
            Ok(())
        });
        b.initiation(Initiation::Delayed)
            .termination(Termination::Delayed);
        let script = b.build().unwrap();
        let inst = script.instance();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let pong = pong.clone();
            let h = s.spawn(move || {
                // Arrive after the first attempt has already timed out. In
                // the rare case that pong is matched with a ping attempt in
                // the last instants before that attempt's deadline (ping's
                // send then times out and pong sees `RoleUnavailable`),
                // re-enroll so a later ping attempt can still succeed.
                std::thread::sleep(Duration::from_millis(80));
                let retryable = |e: &ScriptError| {
                    e.is_transient() || matches!(e, ScriptError::RoleUnavailable(_))
                };
                let policy = RetryPolicy::new(4)
                    .with_base(Duration::from_millis(1))
                    .with_cap(Duration::from_millis(5))
                    .with_seed(9);
                policy.run_if(retryable, |_| i1.enroll(&pong, ()))
            });
            let policy = RetryPolicy::new(8)
                .with_base(Duration::from_millis(5))
                .with_cap(Duration::from_millis(20))
                .with_seed(4);
            inst.enroll_with_retry(
                &ping,
                (),
                Enrollment::new().timeout(Duration::from_millis(40)),
                &policy,
            )
            .unwrap();
            h.join().unwrap().unwrap();
        });
        // Exactly one performance in the common case; a burned near-deadline
        // round before the successful one is also acceptable.
        assert!(inst.completed_performances() >= 1);
    }

    /// Satellite regression: ring-log overflow must be counted and
    /// surfaced, not silent.
    #[test]
    fn ring_overflow_is_counted_and_surfaced() {
        let (script, sender, recipient) = star_script(2);
        let inst = script.instance();
        // One broadcast emits far more than 4 events (2 queued, start,
        // 3 admissions, freeze, 3 finishes, completion, latency...).
        inst.enable_event_log(4);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..2 {
                let inst = &inst;
                let recipient = &recipient;
                handles.push(s.spawn(move || inst.enroll_member(recipient, i, ())));
            }
            inst.enroll(&sender, 1).unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        let dropped = inst.status().events_dropped;
        assert!(dropped > 0, "a 4-slot ring must overflow");
        let telemetry = inst.take_telemetry();
        assert_eq!(
            telemetry.first().map(|e| &e.payload),
            Some(&TelemetryPayload::Lost { count: dropped }),
            "the drain is prefixed with the loss marker"
        );
        assert_eq!(telemetry.len(), 5, "marker plus the 4 retained events");
        // The marker is accounting, not history: `take_events` keeps
        // returning only lifecycle events.
        assert!(inst.take_events().is_empty());
        // Lifetime counter survives the drain; re-enabling resets it.
        assert_eq!(inst.status().events_dropped, dropped);
        inst.enable_event_log(4);
        assert_eq!(inst.status().events_dropped, 0);
    }

    #[test]
    fn metrics_observer_aggregates_a_performance() {
        let (script, sender, recipient) = star_script(2);
        let inst = script.instance();
        let metrics = StdArc::new(MetricsObserver::new());
        inst.set_observer(StdArc::clone(&metrics) as StdArc<dyn Observer>);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..2 {
                let inst = &inst;
                let recipient = &recipient;
                handles.push(s.spawn(move || inst.enroll_member(recipient, i, ())));
            }
            inst.enroll(&sender, 5).unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.enrollments_queued, 3);
        assert_eq!(snap.performances_started, 1);
        assert_eq!(snap.performances_completed, 1);
        assert_eq!(snap.performances_aborted, 0);
        assert_eq!(snap.roles_admitted, 3);
        assert_eq!(snap.roles_finished, 3);
        assert!(
            snap.latency.count() >= 2,
            "both rendezvous sends must be sampled, got {}",
            snap.latency.count()
        );
        assert_eq!(snap.per_performance.len(), 1);
        let (_, perf) = &snap.per_performance[0];
        assert!(perf.completed && !perf.aborted && !perf.stalled);
        assert!(perf.latency.count() >= 2);
    }

    /// Ring log and user observer see the same stream when both are
    /// installed (the engine fans out through a `MultiObserver`).
    #[test]
    fn event_log_and_observer_compose() {
        let (script, sender, recipient) = star_script(1);
        let inst = script.instance();
        let mirror = StdArc::new(RingObserver::new(256));
        inst.enable_event_log(256);
        inst.set_observer(StdArc::clone(&mirror) as StdArc<dyn Observer>);
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let r = recipient.clone();
            let h = s.spawn(move || i1.enroll_member(&r, 0, ()));
            inst.enroll(&sender, 2).unwrap();
            h.join().unwrap().unwrap();
        });
        let built_in = inst.take_telemetry();
        assert!(!built_in.is_empty());
        assert_eq!(built_in, mirror.drain());
        // Per-performance sequence numbers are gapless from 0.
        let perf_seqs: Vec<u64> = built_in
            .iter()
            .filter(|e| e.performance.is_some())
            .map(|e| e.seq)
            .collect();
        assert_eq!(perf_seqs, (0..perf_seqs.len() as u64).collect::<Vec<_>>());
        let inst_seqs: Vec<u64> = built_in
            .iter()
            .filter(|e| e.performance.is_none())
            .map(|e| e.seq)
            .collect();
        assert_eq!(inst_seqs, (0..inst_seqs.len() as u64).collect::<Vec<_>>());
        // Clearing the user observer keeps the ring subscribed.
        inst.clear_observer();
        std::thread::scope(|s| {
            let i1 = inst.clone();
            let r = recipient.clone();
            let h = s.spawn(move || i1.enroll_member(&r, 0, ()));
            inst.enroll(&sender, 3).unwrap();
            h.join().unwrap().unwrap();
        });
        assert!(!inst.take_telemetry().is_empty());
        assert!(mirror.drain().is_empty());
    }

    #[test]
    fn ctx_reports_cast_and_process() {
        let mut b = Script::<u8>::builder("meta");
        let looker = b.role("looker", |ctx, ()| {
            assert_eq!(ctx.role(), &RoleId::new("looker"));
            assert_eq!(ctx.process().as_str(), "L");
            assert!(ctx.cast_frozen());
            let cast = ctx.cast();
            assert_eq!(cast.len(), 1);
            assert_eq!(
                ctx.process_of(&RoleId::new("looker")).unwrap().as_str(),
                "L"
            );
            assert_eq!(ctx.performance(), PerformanceId(0));
            Ok(())
        });
        let script = b.build().unwrap();
        let inst = script.instance();
        inst.enroll_with(&looker, (), Enrollment::as_process("L"))
            .unwrap();
    }
}
