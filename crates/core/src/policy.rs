//! Initiation, termination, critical-role-set, and watchdog policies.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::estimator::LatencyEstimator;
use crate::RoleId;

/// When a performance of a script begins (paper §II, *Script Initiation
/// and Termination*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Initiation {
    /// Processes must first enroll in all roles of some critical role set;
    /// only then does the performance (and every role body) begin. This
    /// enforces global synchronization across the whole cast.
    #[default]
    Delayed,
    /// The performance starts with the first enrollment; later processes
    /// join while it is in progress. A role blocks only when it attempts
    /// to communicate with an unfilled role.
    Immediate,
}

/// When enrolled processes are released from a performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Termination {
    /// All processes are freed together, once every role of the cast has
    /// finished.
    #[default]
    Delayed,
    /// Each process is freed as soon as its own role body returns.
    Immediate,
}

/// How the quiescence watchdog sizes a performance's window (see
/// [`Instance::set_watchdog_policy`](crate::Instance::set_watchdog_policy)).
///
/// Whichever policy is installed, the window the watchdog actually
/// arms — and, under [`WatchdogPolicy::Adaptive`], the observed p99 it
/// was derived from — is reported on the telemetry plane as
/// [`TelemetryPayload::WatchdogArmed`](crate::TelemetryPayload::WatchdogArmed)
/// whenever it first arms or moves by ≥ 1/8 of its previous value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WatchdogPolicy {
    /// A constant window for every performance — the pre-adaptive
    /// behavior. [`Instance::set_watchdog`](crate::Instance::set_watchdog)
    /// is a shim for this variant.
    Fixed(Duration),
    /// A window derived from each performance's *own* observed
    /// rendezvous latency: `max(min_window, multiplier × p-quantile)`,
    /// re-evaluated on every watchdog poll. In-process performances
    /// keep tight millisecond windows while socket-backed ones widen
    /// to RPC latency, with no per-transport tuning.
    Adaptive(AdaptiveWindow),
}

impl WatchdogPolicy {
    /// The adaptive policy with default parameters — the recommended
    /// starting point when an instance mixes transports.
    pub fn adaptive() -> Self {
        Self::Adaptive(AdaptiveWindow::default())
    }

    /// Panics on parameters that could never arm a sane window; called
    /// once when the policy is installed, so misconfiguration fails at
    /// `set_watchdog_policy` rather than silently in a monitor thread.
    pub(crate) fn validate(&self) {
        match self {
            Self::Fixed(window) => {
                assert!(*window > Duration::ZERO, "watchdog window must be positive");
            }
            Self::Adaptive(a) => {
                assert!(
                    a.min_window > Duration::ZERO,
                    "adaptive min_window must be positive"
                );
                assert!(
                    a.max_window >= a.min_window,
                    "adaptive max_window must be >= min_window"
                );
                assert!(
                    a.initial > Duration::ZERO,
                    "adaptive initial window must be positive"
                );
                assert!(
                    a.multiplier.is_finite() && a.multiplier >= 1.0,
                    "adaptive multiplier must be finite and >= 1"
                );
                assert!(
                    a.quantile > 0.0 && a.quantile <= 1.0,
                    "adaptive quantile must be in (0, 1]"
                );
                assert!(a.capacity > 0, "adaptive sample capacity must be positive");
                assert!(
                    (0.0..=1.0).contains(&a.smoothing),
                    "adaptive smoothing must be in [0, 1]"
                );
            }
        }
    }
}

/// Parameters of [`WatchdogPolicy::Adaptive`].
///
/// The armed window is `clamp(multiplier × quantile(observed),
/// min_window, max_window)`; until `warmup` samples have been recorded
/// the window never drops below `initial`, and an EWMA floor (weight
/// `smoothing` on the newest value) makes the window shrink gradually
/// after a slow→fast regime shift while still widening instantly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveWindow {
    /// Hard lower bound on the armed window.
    pub min_window: Duration,
    /// Hard upper bound on the armed window.
    pub max_window: Duration,
    /// Window used before any sample arrives, and the floor during
    /// warmup — generous enough to cover a cold transport's first
    /// rendezvous.
    pub initial: Duration,
    /// Safety factor `k` applied to the observed quantile. The default
    /// of 8 tolerates an 8× latency excursion beyond the p99 before
    /// calling a performance stalled.
    pub multiplier: f64,
    /// Which latency quantile to track (default 0.99).
    pub quantile: f64,
    /// Samples required before the `initial` floor is lifted.
    pub warmup: u64,
    /// Retained-sample window size of the per-shard estimator.
    pub capacity: usize,
    /// EWMA weight of the newest raw window in the decay floor
    /// (`1.0` disables smoothing entirely).
    pub smoothing: f64,
}

impl Default for AdaptiveWindow {
    fn default() -> Self {
        Self {
            min_window: Duration::from_millis(25),
            max_window: Duration::from_secs(30),
            initial: Duration::from_millis(500),
            multiplier: 8.0,
            quantile: 0.99,
            warmup: 8,
            capacity: 256,
            smoothing: 0.3,
        }
    }
}

impl AdaptiveWindow {
    /// Overrides the hard lower bound on the armed window.
    pub fn with_min_window(mut self, min_window: Duration) -> Self {
        self.min_window = min_window;
        self
    }

    /// Overrides the hard upper bound on the armed window.
    pub fn with_max_window(mut self, max_window: Duration) -> Self {
        self.max_window = max_window;
        self
    }

    /// Overrides the cold-start window.
    pub fn with_initial(mut self, initial: Duration) -> Self {
        self.initial = initial;
        self
    }

    /// Overrides the safety factor `k`.
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier;
        self
    }

    /// The raw (pre-smoothing) window for the estimator's current
    /// state, plus the observed quantile itself. Pure in the
    /// estimator's retained sample multiset and total count.
    pub fn window_for(&self, est: &LatencyEstimator) -> (Duration, Option<Duration>) {
        let observed = est.quantile(self.quantile);
        let mut window = match observed {
            // Cap the quantile before scaling so a pathological sample
            // cannot overflow `mul_f64`; the final clamp re-applies the
            // same ceiling anyway.
            Some(q) => q.min(self.max_window).mul_f64(self.multiplier),
            None => self.initial,
        };
        if est.count() < self.warmup {
            window = window.max(self.initial);
        }
        window = window.max(self.min_window).min(self.max_window);
        (window, observed)
    }
}

/// One alternative critical role set: a subset of roles whose enrollment
/// suffices for a performance (paper §II, *Critical Role Set*).
///
/// A critical set is built from entries naming singleton roles, specific
/// family members, whole families, or a minimum count of an (open) family.
///
/// # Example
///
/// ```
/// use script_core::CriticalSet;
///
/// // The lock-manager example: all managers plus the reader.
/// let cs = CriticalSet::new().family("manager").role("reader");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CriticalSet {
    pub(crate) entries: Vec<CriticalEntry>,
}

/// One entry of a [`CriticalSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalEntry {
    /// A singleton role, by name.
    Role(String),
    /// One specific member of a family.
    Member(String, usize),
    /// Every member of a (fixed-size) family.
    Family(String),
    /// At least `1`.. members of a family, counted at freeze time. Only
    /// meaningful with [`Initiation::Immediate`].
    FamilyAtLeast(String, usize),
}

impl CriticalSet {
    /// An empty critical set; add entries with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires the singleton role `name`.
    pub fn role(mut self, name: impl Into<String>) -> Self {
        self.entries.push(CriticalEntry::Role(name.into()));
        self
    }

    /// Requires member `index` of family `name`.
    pub fn member(mut self, name: impl Into<String>, index: usize) -> Self {
        self.entries.push(CriticalEntry::Member(name.into(), index));
        self
    }

    /// Requires every member of the fixed-size family `name`.
    pub fn family(mut self, name: impl Into<String>) -> Self {
        self.entries.push(CriticalEntry::Family(name.into()));
        self
    }

    /// Requires at least `count` enrolled members of family `name`.
    pub fn family_at_least(mut self, name: impl Into<String>, count: usize) -> Self {
        self.entries
            .push(CriticalEntry::FamilyAtLeast(name.into(), count));
        self
    }

    /// Returns `true` if the set has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expands the exact entries into concrete role ids, given the sizes
    /// of fixed families. `FamilyAtLeast` entries are returned separately.
    pub(crate) fn expand(
        &self,
        family_size: &dyn Fn(&str) -> Option<usize>,
    ) -> (BTreeSet<RoleId>, Vec<(String, usize)>) {
        let mut exact = BTreeSet::new();
        let mut at_least = Vec::new();
        for e in &self.entries {
            match e {
                CriticalEntry::Role(name) => {
                    exact.insert(RoleId::new(name.clone()));
                }
                CriticalEntry::Member(name, i) => {
                    exact.insert(RoleId::indexed(name.clone(), *i));
                }
                CriticalEntry::Family(name) => {
                    if let Some(n) = family_size(name) {
                        for i in 0..n {
                            exact.insert(RoleId::indexed(name.clone(), i));
                        }
                    }
                }
                CriticalEntry::FamilyAtLeast(name, k) => {
                    at_least.push((name.clone(), *k));
                }
            }
        }
        (exact, at_least)
    }
}

impl fmt::Display for CriticalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                CriticalEntry::Role(n) => write!(f, "{n}")?,
                CriticalEntry::Member(n, i) => write!(f, "{n}[{i}]")?,
                CriticalEntry::Family(n) => write!(f, "{n}[*]")?,
                CriticalEntry::FamilyAtLeast(n, k) => write!(f, "{n}[>={k}]")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_delayed() {
        assert_eq!(Initiation::default(), Initiation::Delayed);
        assert_eq!(Termination::default(), Termination::Delayed);
    }

    #[test]
    fn expand_mixed_entries() {
        let cs = CriticalSet::new()
            .role("sender")
            .member("aux", 7)
            .family("recipient")
            .family_at_least("worker", 2);
        let sizes = |name: &str| match name {
            "recipient" => Some(3),
            _ => None,
        };
        let (exact, at_least) = cs.expand(&sizes);
        assert!(exact.contains(&RoleId::new("sender")));
        assert!(exact.contains(&RoleId::indexed("aux", 7)));
        for i in 0..3 {
            assert!(exact.contains(&RoleId::indexed("recipient", i)));
        }
        assert_eq!(exact.len(), 5);
        assert_eq!(at_least, vec![("worker".to_string(), 2)]);
    }

    #[test]
    fn display_renders_entries() {
        let cs = CriticalSet::new()
            .role("r")
            .member("f", 1)
            .family("g")
            .family_at_least("h", 4);
        assert_eq!(cs.to_string(), "{r, f[1], g[*], h[>=4]}");
    }

    #[test]
    fn empty_set_detected() {
        assert!(CriticalSet::new().is_empty());
        assert!(!CriticalSet::new().role("x").is_empty());
    }

    #[test]
    fn adaptive_window_starts_at_initial() {
        let a = AdaptiveWindow::default();
        let est = LatencyEstimator::new(a.capacity);
        assert_eq!(a.window_for(&est), (a.initial, None));
    }

    #[test]
    fn adaptive_window_holds_initial_floor_through_warmup() {
        let a = AdaptiveWindow::default();
        let est = LatencyEstimator::new(a.capacity);
        let fast = Duration::from_micros(50);
        for _ in 0..a.warmup - 1 {
            est.record(fast);
        }
        let (w, p99) = a.window_for(&est);
        assert_eq!(w, a.initial);
        assert_eq!(p99, Some(fast));
        // One more sample completes warmup; the window drops to the
        // clamped multiple of the observation.
        est.record(fast);
        assert_eq!(a.window_for(&est), (a.min_window, Some(fast)));
    }

    #[test]
    fn adaptive_window_scales_with_observed_quantile() {
        let a = AdaptiveWindow::default();
        let est = LatencyEstimator::new(a.capacity);
        let slow = Duration::from_millis(40);
        for _ in 0..16 {
            est.record(slow);
        }
        let (w, p99) = a.window_for(&est);
        assert_eq!(p99, Some(slow));
        assert_eq!(w, slow.mul_f64(a.multiplier));
        assert!(w <= a.max_window);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn adaptive_validation_rejects_shrinking_multiplier() {
        WatchdogPolicy::Adaptive(AdaptiveWindow::default().with_multiplier(0.5)).validate();
    }
}
