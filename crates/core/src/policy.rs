//! Initiation, termination, and critical-role-set policies.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::RoleId;

/// When a performance of a script begins (paper §II, *Script Initiation
/// and Termination*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Initiation {
    /// Processes must first enroll in all roles of some critical role set;
    /// only then does the performance (and every role body) begin. This
    /// enforces global synchronization across the whole cast.
    #[default]
    Delayed,
    /// The performance starts with the first enrollment; later processes
    /// join while it is in progress. A role blocks only when it attempts
    /// to communicate with an unfilled role.
    Immediate,
}

/// When enrolled processes are released from a performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Termination {
    /// All processes are freed together, once every role of the cast has
    /// finished.
    #[default]
    Delayed,
    /// Each process is freed as soon as its own role body returns.
    Immediate,
}

/// One alternative critical role set: a subset of roles whose enrollment
/// suffices for a performance (paper §II, *Critical Role Set*).
///
/// A critical set is built from entries naming singleton roles, specific
/// family members, whole families, or a minimum count of an (open) family.
///
/// # Example
///
/// ```
/// use script_core::CriticalSet;
///
/// // The lock-manager example: all managers plus the reader.
/// let cs = CriticalSet::new().family("manager").role("reader");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CriticalSet {
    pub(crate) entries: Vec<CriticalEntry>,
}

/// One entry of a [`CriticalSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalEntry {
    /// A singleton role, by name.
    Role(String),
    /// One specific member of a family.
    Member(String, usize),
    /// Every member of a (fixed-size) family.
    Family(String),
    /// At least `1`.. members of a family, counted at freeze time. Only
    /// meaningful with [`Initiation::Immediate`].
    FamilyAtLeast(String, usize),
}

impl CriticalSet {
    /// An empty critical set; add entries with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires the singleton role `name`.
    pub fn role(mut self, name: impl Into<String>) -> Self {
        self.entries.push(CriticalEntry::Role(name.into()));
        self
    }

    /// Requires member `index` of family `name`.
    pub fn member(mut self, name: impl Into<String>, index: usize) -> Self {
        self.entries.push(CriticalEntry::Member(name.into(), index));
        self
    }

    /// Requires every member of the fixed-size family `name`.
    pub fn family(mut self, name: impl Into<String>) -> Self {
        self.entries.push(CriticalEntry::Family(name.into()));
        self
    }

    /// Requires at least `count` enrolled members of family `name`.
    pub fn family_at_least(mut self, name: impl Into<String>, count: usize) -> Self {
        self.entries
            .push(CriticalEntry::FamilyAtLeast(name.into(), count));
        self
    }

    /// Returns `true` if the set has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expands the exact entries into concrete role ids, given the sizes
    /// of fixed families. `FamilyAtLeast` entries are returned separately.
    pub(crate) fn expand(
        &self,
        family_size: &dyn Fn(&str) -> Option<usize>,
    ) -> (BTreeSet<RoleId>, Vec<(String, usize)>) {
        let mut exact = BTreeSet::new();
        let mut at_least = Vec::new();
        for e in &self.entries {
            match e {
                CriticalEntry::Role(name) => {
                    exact.insert(RoleId::new(name.clone()));
                }
                CriticalEntry::Member(name, i) => {
                    exact.insert(RoleId::indexed(name.clone(), *i));
                }
                CriticalEntry::Family(name) => {
                    if let Some(n) = family_size(name) {
                        for i in 0..n {
                            exact.insert(RoleId::indexed(name.clone(), i));
                        }
                    }
                }
                CriticalEntry::FamilyAtLeast(name, k) => {
                    at_least.push((name.clone(), *k));
                }
            }
        }
        (exact, at_least)
    }
}

impl fmt::Display for CriticalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                CriticalEntry::Role(n) => write!(f, "{n}")?,
                CriticalEntry::Member(n, i) => write!(f, "{n}[{i}]")?,
                CriticalEntry::Family(n) => write!(f, "{n}[*]")?,
                CriticalEntry::FamilyAtLeast(n, k) => write!(f, "{n}[>={k}]")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_delayed() {
        assert_eq!(Initiation::default(), Initiation::Delayed);
        assert_eq!(Termination::default(), Termination::Delayed);
    }

    #[test]
    fn expand_mixed_entries() {
        let cs = CriticalSet::new()
            .role("sender")
            .member("aux", 7)
            .family("recipient")
            .family_at_least("worker", 2);
        let sizes = |name: &str| match name {
            "recipient" => Some(3),
            _ => None,
        };
        let (exact, at_least) = cs.expand(&sizes);
        assert!(exact.contains(&RoleId::new("sender")));
        assert!(exact.contains(&RoleId::indexed("aux", 7)));
        for i in 0..3 {
            assert!(exact.contains(&RoleId::indexed("recipient", i)));
        }
        assert_eq!(exact.len(), 5);
        assert_eq!(at_least, vec![("worker".to_string(), 2)]);
    }

    #[test]
    fn display_renders_entries() {
        let cs = CriticalSet::new()
            .role("r")
            .member("f", 1)
            .family("g")
            .family_at_least("h", 4);
        assert_eq!(cs.to_string(), "{r, f[1], g[*], h[>=4]}");
    }

    #[test]
    fn empty_set_detected() {
        assert!(CriticalSet::new().is_empty());
        assert!(!CriticalSet::new().role("x").is_empty());
    }
}
