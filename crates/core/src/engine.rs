//! The performance engine: enrollment queues, cast assembly, freezing,
//! successive *and overlapping* activations, termination, and abort
//! containment.
//!
//! The engine is deliberately *passive* — a state machine advanced by the
//! enrolling threads themselves — in keeping with the paper's goal of
//! "not generating additional processes when executing a script". (The
//! CSP and Ada *translations* in their respective crates demonstrate the
//! paper's supervisor-process alternative.)
//!
//! # Sharding
//!
//! Hot state is split in two. A single *front end* (one mutex + the
//! engine condvar) owns only what enrollment matching needs: the pending
//! queue and the roster of live performances. Each matched performance
//! lives in its own [`PerfShard`] — cast, running/finished sets, network,
//! and a private condvar — so the roles of one performance finish and
//! signal on their own shard without touching the front-end lock or
//! waking threads of unrelated performances. Completion is the only
//! transition that crosses back: the thread that observes a shard ready
//! claims it (the `completing` flag), reacquires the front end, and
//! retires the shard there.
//!
//! Lock order: front end → shard state → telemetry sink (per-shard
//! sequence locks and observer internals are leaves); never two shards
//! at once.
//!
//! # Telemetry
//!
//! Every engine decision is published through one [`TelemetrySink`]:
//! an atomic `enabled` flag (loaded `Relaxed` on the hot path, exactly
//! like the chaos layer's `FaultPlan` short-circuit) guards a composed
//! [`Observer`] — the built-in ring log, a user subscriber, or a
//! [`MultiObserver`] fan-out over both. Per-performance events are
//! numbered under the owning shard's sequence lock, which is held
//! *across* delivery so each performance's stream reaches observers
//! gapless, strictly increasing, and in order.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use script_chan::{FaultPlan, Network, SessionEvent};

use crate::ctx::RoleCtx;
use crate::estimator::{LatencyEstimator, WindowFloor};
use crate::matcher::{admissible, match_performance, Candidate};
use crate::observer::{MultiObserver, Observer, RingObserver, TelemetryEvent, TelemetryPayload};
use crate::spec::{FamilySize, ScriptSpec};
use crate::{
    Enrollment, Initiation, Partners, PerformanceId, ProcessId, RoleId, ScriptError, ScriptEvent,
    Termination, WatchdogPolicy,
};

/// Latency samples retained per performance when the watchdog policy
/// does not specify a capacity of its own (i.e. [`WatchdogPolicy::Fixed`],
/// where the estimator only feeds stall-event diagnostics).
const DEFAULT_ESTIMATOR_CAPACITY: usize = 256;

/// How an enrollment names its role: a concrete id, or "next free member"
/// of an open family.
#[derive(Debug, Clone)]
pub(crate) enum RoleRef {
    Concrete(RoleId),
    /// Auto-indexed member of the named open family.
    NextOf(String),
}

enum Outcome<M> {
    Waiting,
    Admitted {
        shard: Arc<PerfShard<M>>,
        role: RoleId,
    },
    Rejected(ScriptError),
}

struct PendingSlot<M> {
    ticket: u64,
    role: RoleRef,
    process: ProcessId,
    partners: Partners,
    /// Enrollment deadline: an expired slot is never admitted (its owner
    /// is about to remove it and return `Timeout`), so near-deadline
    /// matches cannot strand the rest of a freshly cast performance.
    deadline: Option<Instant>,
    outcome: Outcome<M>,
}

impl<M> PendingSlot<M> {
    fn matchable(&self, now: Instant) -> bool {
        matches!(self.outcome, Outcome::Waiting) && self.deadline.is_none_or(|d| now < d)
    }
}

/// One live performance: its network plus everything its roles mutate
/// while running, behind a lock and condvar of its own so sibling
/// performances never contend.
pub(crate) struct PerfShard<M> {
    pub(crate) seq: u64,
    pub(crate) net: Network<RoleId, M>,
    /// Streaming rendezvous-latency estimator, fed by the network's
    /// latency observer; read by the watchdog to derive adaptive
    /// quiescence windows (and stall-event diagnostics).
    pub(crate) latency: Arc<LatencyEstimator>,
    /// Next telemetry sequence number for this performance. Held across
    /// observer delivery so the per-performance event stream is gapless
    /// and arrives in sequence order (see [`TelemetrySink`]).
    telemetry_seq: Mutex<u64>,
    /// Whether fault records stream onto the telemetry plane as they
    /// are injected (telemetry was enabled when the performance
    /// opened). When false, [`Engine::finalize_shard`] drains the
    /// network's fault log at completion instead, as before.
    live_faults: bool,
    state: Mutex<ShardState>,
    cond: Condvar,
}

struct ShardState {
    /// Admitted (role, process, recorded partner constraints).
    cast: Vec<(RoleId, ProcessId, Partners)>,
    running: HashSet<RoleId>,
    finished: HashSet<RoleId>,
    frozen: bool,
    aborted: bool,
    /// Aborted by the quiescence watchdog; participants see
    /// [`ScriptError::Stalled`] rather than the generic abort.
    stalled: bool,
    /// Fully terminated: phase-4 (delayed-termination) waiters release.
    done: bool,
    /// Completion claimed by exactly one thread, which drops the shard
    /// lock and reacquires front end → shard to retire it.
    completing: bool,
    next_open_index: HashMap<String, usize>,
}

impl ShardState {
    fn cast_has(&self, role: &RoleId) -> bool {
        self.cast.iter().any(|(r, _, _)| r == role)
    }

    fn family_count(&self, family: &str) -> usize {
        self.cast
            .iter()
            .filter(|(r, _, _)| r.in_family(family))
            .count()
    }

    /// Has this performance terminated (normally or by abort)?
    fn is_ready(&self) -> bool {
        let all_finished = self.cast.iter().all(|(r, _, _)| self.finished.contains(r));
        (self.frozen && !self.cast.is_empty() && all_finished)
            || (self.aborted && self.running.is_empty())
    }
}

impl<M> PerfShard<M> {
    /// The cast so far, as `(role, process)` pairs.
    pub(crate) fn cast_pairs(&self) -> Vec<(RoleId, ProcessId)> {
        self.state
            .lock()
            .cast
            .iter()
            .map(|(r, p, _)| (r.clone(), p.clone()))
            .collect()
    }

    pub(crate) fn frozen(&self) -> bool {
        self.state.lock().frozen
    }
}

/// Enrollment/matching front end: everything that is *not* owned by one
/// performance.
struct FrontEnd<M> {
    next_ticket: u64,
    next_seq: u64,
    /// The one unfrozen performance still accepting roles (immediate
    /// initiation). Detached as soon as its cast freezes, so the next
    /// enrollment gathers into a fresh, overlapping performance.
    gathering: Option<Arc<PerfShard<M>>>,
    /// Every performance started and not yet completed, oldest first.
    live: Vec<Arc<PerfShard<M>>>,
    pending: Vec<PendingSlot<M>>,
    closed: bool,
    /// Quiescence policy: performances making no communication progress
    /// for the (fixed or adaptively derived) window are aborted by a
    /// monitor thread.
    watchdog: Option<WatchdogPolicy>,
    /// Root seed for per-performance network RNGs (fault determinism).
    chaos_seed: Option<u64>,
    /// Fault plan attached (reseeded per performance) to every new
    /// performance's network.
    fault_plan: Option<FaultPlan>,
    /// Custom network constructor for future performances (distribution
    /// seam); `None` builds the default in-process network.
    net_factory: Option<Arc<NetworkFactory<M>>>,
    /// Placement hint forwarded verbatim to the network factory (e.g.
    /// the role-family key a federated control plane shards on);
    /// `None` lets the factory place freely.
    placement_hint: Option<String>,
    /// Message labeler attached to every future performance's
    /// rendezvous observer; `None` leaves rendezvous events unlabeled.
    labeler: Option<script_chan::LabelFn<M>>,
}

/// What a [`NetworkFactory`] is told about the performance whose network
/// it is about to build.
#[derive(Debug, Clone)]
pub struct PerformanceNet {
    /// The performance the network will carry.
    pub performance: PerformanceId,
    /// Whether the script declares an open role family (the network
    /// must accept peers beyond the declared cast).
    pub open: bool,
    /// The per-performance chaos seed, if the instance has one. The
    /// engine reseeds the returned network with it either way; it is
    /// provided so factories building *remote* transports can forward
    /// it to the process that owns the rendezvous state.
    pub seed: Option<u64>,
    /// The instance's placement hint ([`crate::Instance::set_placement_hint`]),
    /// passed through verbatim. Factories building federated transports
    /// use it as the role-family key the control plane shards on —
    /// performances sharing a hint land on the same matcher shard;
    /// in-process factories are free to ignore it.
    pub placement: Option<String>,
}

/// Builds the network for each new performance — the seam through which
/// a performance is placed on a non-default transport (e.g. a socket
/// transport from `script-net`, making the performance span OS
/// processes). The factory is called once per performance, before any
/// role is admitted.
pub type NetworkFactory<M> = dyn Fn(&PerformanceNet) -> Network<RoleId, M> + Send + Sync;

/// Default message labeler: no label. A named `fn` (not a closure) so
/// it coerces to [`script_chan::LabelFn`].
fn unlabeled<M>(_: &M) -> Option<String> {
    None
}

/// SplitMix64 finalizer: derives per-performance seeds from a root seed
/// so distinct performances draw independent, reproducible schedules.
fn mix_seed(root: u64, seq: u64) -> u64 {
    let mut z = root
        .wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Subscriber composition: the built-in ring, the user observer, and
/// the currently active combination of the two.
struct SinkState {
    /// The ring behind `enable_event_log`/`take_events`.
    ring: Option<Arc<RingObserver>>,
    /// The user-installed subscriber ([`Engine::set_observer`]).
    user: Option<Arc<dyn Observer>>,
    /// Pre-composed delivery target: the ring, the user observer, or a
    /// [`MultiObserver`] over both. Re-derived on every change so the
    /// emit path does one clone, not a case analysis.
    current: Option<Arc<dyn Observer>>,
}

/// The engine half of the observability plane (see
/// [`crate::observer`]): one composed subscriber behind an atomic
/// short-circuit, plus the instance-scoped sequence counter.
struct TelemetrySink {
    /// Whether any observer is installed. Stored `SeqCst` on change,
    /// loaded `Relaxed` on the emit path — the same short-circuit
    /// pattern the chaos layer uses for zero-probability fault plans,
    /// keeping disabled-telemetry cost to one atomic load.
    enabled: AtomicBool,
    state: Mutex<SinkState>,
    /// Sequence counter for instance-scoped events (no performance).
    instance_seq: Mutex<u64>,
}

impl TelemetrySink {
    fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            state: Mutex::new(SinkState {
                ring: None,
                user: None,
                current: None,
            }),
            instance_seq: Mutex::new(0),
        }
    }

    /// Re-derives `current` from `ring` and `user`, then publishes the
    /// short-circuit flag.
    fn recompose(&self, st: &mut SinkState) {
        st.current = match (&st.ring, &st.user) {
            (Some(ring), Some(user)) => {
                let ring = Arc::clone(ring) as Arc<dyn Observer>;
                Some(Arc::new(MultiObserver::with(vec![ring, Arc::clone(user)]))
                    as Arc<dyn Observer>)
            }
            (Some(ring), None) => Some(Arc::clone(ring) as Arc<dyn Observer>),
            (None, Some(user)) => Some(Arc::clone(user)),
            (None, None) => None,
        };
        self.enabled.store(st.current.is_some(), Ordering::SeqCst);
    }
}

pub(crate) struct Engine<M> {
    pub(crate) spec: Arc<ScriptSpec<M>>,
    front: Mutex<FrontEnd<M>>,
    /// Wakes enrollment waiters only; per-performance signalling happens
    /// on each shard's own condvar.
    cond: Condvar,
    /// The observability plane's engine end. Its locks are leaves (after
    /// the front end and any shard state) so both can emit.
    telemetry: TelemetrySink,
    /// Timestamp origin for [`TelemetryEvent::timestamp`].
    epoch: Instant,
    /// Count of fully terminated performances.
    completed: AtomicU64,
    /// Self-reference for watchdog threads (they must not keep the
    /// engine alive).
    weak: Weak<Engine<M>>,
}

impl<M: Send + Clone + 'static> Engine<M> {
    pub(crate) fn new(spec: Arc<ScriptSpec<M>>) -> Arc<Self> {
        Arc::new_cyclic(|weak| Self {
            spec,
            front: Mutex::new(FrontEnd::<M> {
                next_ticket: 0,
                next_seq: 0,
                gathering: None,
                live: Vec::new(),
                pending: Vec::new(),
                closed: false,
                watchdog: None,
                chaos_seed: None,
                fault_plan: None,
                net_factory: None,
                placement_hint: None,
                labeler: None,
            }),
            cond: Condvar::new(),
            telemetry: TelemetrySink::new(),
            epoch: Instant::now(),
            completed: AtomicU64::new(0),
            weak: weak.clone(),
        })
    }

    /// Whether any telemetry observer is installed (one relaxed atomic
    /// load — the whole cost of the plane while disabled).
    pub(crate) fn telemetry_on(&self) -> bool {
        self.telemetry.enabled.load(Ordering::Relaxed)
    }

    /// Numbers `payload` under `seq_lock` and delivers it to the
    /// composed observer. The sequence lock is held across delivery so
    /// events of one scope reach observers gapless and in order.
    fn deliver(
        &self,
        performance: Option<PerformanceId>,
        seq_lock: &Mutex<u64>,
        payload: TelemetryPayload,
    ) {
        if !self.telemetry_on() {
            return;
        }
        let Some(observer) = self.telemetry.state.lock().current.clone() else {
            return;
        };
        let mut seq = seq_lock.lock();
        let event = TelemetryEvent {
            seq: *seq,
            performance,
            timestamp: self.epoch.elapsed(),
            payload,
        };
        *seq += 1;
        observer.on_event(event);
    }

    /// Emits an instance-scoped event (no owning performance).
    fn emit_instance(&self, payload: TelemetryPayload) {
        self.deliver(None, &self.telemetry.instance_seq, payload);
    }

    /// Emits an event attributed to `shard`'s performance.
    fn emit_shard(&self, shard: &PerfShard<M>, payload: TelemetryPayload) {
        self.deliver(
            Some(PerformanceId(shard.seq)),
            &shard.telemetry_seq,
            payload,
        );
    }

    /// [`Engine::emit_shard`] for plain lifecycle events.
    fn emit_script(&self, shard: &PerfShard<M>, event: ScriptEvent) {
        self.emit_shard(shard, TelemetryPayload::Script(event));
    }

    /// Arms (or re-arms) the quiescence watchdog for future
    /// performances: a performance whose network makes no progress for
    /// the policy's window is aborted with [`ScriptError::Stalled`].
    pub(crate) fn set_watchdog_policy(&self, policy: WatchdogPolicy) {
        policy.validate();
        self.front.lock().watchdog = Some(policy);
    }

    /// Disarms the watchdog for future performances.
    pub(crate) fn clear_watchdog(&self) {
        self.front.lock().watchdog = None;
    }

    /// Seeds the per-performance network RNGs (selection shuffling)
    /// deterministically. Affects future performances.
    pub(crate) fn set_chaos_seed(&self, seed: u64) {
        self.front.lock().chaos_seed = Some(seed);
    }

    /// Attaches `plan` (reseeded per performance from its own seed) to
    /// every future performance's network.
    pub(crate) fn set_fault_plan(&self, plan: FaultPlan) {
        self.front.lock().fault_plan = Some(plan);
    }

    /// Stops injecting faults into future performances.
    pub(crate) fn clear_fault_plan(&self) {
        self.front.lock().fault_plan = None;
    }

    pub(crate) fn set_message_labeler(&self, label_of: script_chan::LabelFn<M>) {
        self.front.lock().labeler = Some(label_of);
    }

    /// Routes every future performance's network through `factory`.
    pub(crate) fn set_network_factory(&self, factory: Arc<NetworkFactory<M>>) {
        self.front.lock().net_factory = Some(factory);
    }

    /// Future performances build the default in-process network again.
    pub(crate) fn clear_network_factory(&self) {
        self.front.lock().net_factory = None;
    }

    /// Attaches a placement hint to every future performance's
    /// [`PerformanceNet`].
    pub(crate) fn set_placement_hint(&self, hint: String) {
        self.front.lock().placement_hint = Some(hint);
    }

    /// Future performances carry no placement hint.
    pub(crate) fn clear_placement_hint(&self) {
        self.front.lock().placement_hint = None;
    }

    /// Number of performances that have fully terminated.
    pub(crate) fn completed_performances(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Enables (or resizes, which clears) the bounded event log: a
    /// fresh [`RingObserver`] on the telemetry plane. Resizing resets
    /// the drop counters along with the buffer.
    pub(crate) fn enable_event_log(&self, capacity: usize) {
        let mut st = self.telemetry.state.lock();
        st.ring = Some(Arc::new(RingObserver::new(capacity)));
        self.telemetry.recompose(&mut st);
    }

    /// Drains the ring log and returns its lifecycle events
    /// ([`ScriptEvent`]), preserving the pre-plane API. Latency
    /// samples, watchdog arms, and loss markers are dropped here; use
    /// [`Engine::take_telemetry`] for the full stream.
    pub(crate) fn take_events(&self) -> Vec<ScriptEvent> {
        self.take_telemetry()
            .into_iter()
            .filter_map(|e| match e.payload {
                TelemetryPayload::Script(ev) => Some(ev),
                _ => None,
            })
            .collect()
    }

    /// Drains the ring log and returns the full telemetry stream,
    /// including a [`TelemetryPayload::Lost`] marker if the ring
    /// overflowed since the last drain.
    pub(crate) fn take_telemetry(&self) -> Vec<TelemetryEvent> {
        let ring = self.telemetry.state.lock().ring.clone();
        match ring {
            Some(ring) => ring.drain(),
            None => Vec::new(),
        }
    }

    /// Installs (replacing any previous) the user telemetry observer.
    pub(crate) fn set_observer(&self, observer: Arc<dyn Observer>) {
        let mut st = self.telemetry.state.lock();
        st.user = Some(observer);
        self.telemetry.recompose(&mut st);
    }

    /// Removes the user telemetry observer (the ring log, if enabled,
    /// keeps receiving events).
    pub(crate) fn clear_observer(&self) {
        let mut st = self.telemetry.state.lock();
        st.user = None;
        self.telemetry.recompose(&mut st);
    }

    /// Lifetime count of events the ring log dropped to overflow.
    fn events_dropped(&self) -> u64 {
        self.telemetry
            .state
            .lock()
            .ring
            .as_ref()
            .map_or(0, |ring| ring.dropped())
    }

    /// A diagnostic snapshot of the instance.
    pub(crate) fn status(&self) -> crate::InstanceStatus {
        let fe = self.front.lock();
        let performances: Vec<crate::PerformanceStatus> = fe
            .live
            .iter()
            .map(|shard| {
                let ss = shard.state.lock();
                crate::PerformanceStatus {
                    id: PerformanceId(shard.seq),
                    cast: ss
                        .cast
                        .iter()
                        .map(|(r, p, _)| (r.clone(), p.clone()))
                        .collect(),
                    frozen: ss.frozen,
                    running: ss.running.len(),
                    finished: ss.finished.len(),
                    aborted: ss.aborted,
                }
            })
            .collect();
        crate::InstanceStatus {
            completed_performances: self.completed.load(Ordering::SeqCst),
            pending_enrollments: fe
                .pending
                .iter()
                .filter(|s| matches!(s.outcome, Outcome::Waiting))
                .count(),
            current: performances.first().cloned(),
            performances,
            events_dropped: self.events_dropped(),
        }
    }

    /// Number of enrollments queued but not yet admitted.
    pub(crate) fn pending_enrollments(&self) -> usize {
        self.front
            .lock()
            .pending
            .iter()
            .filter(|s| matches!(s.outcome, Outcome::Waiting))
            .count()
    }

    /// Closes the instance: pending and future enrollments fail with
    /// [`ScriptError::InstanceClosed`]; live performances are aborted.
    pub(crate) fn close(&self) {
        let mut fe = self.front.lock();
        fe.closed = true;
        self.emit_instance(TelemetryPayload::Script(ScriptEvent::InstanceClosed));
        for slot in &mut fe.pending {
            if matches!(slot.outcome, Outcome::Waiting) {
                slot.outcome = Outcome::Rejected(ScriptError::InstanceClosed);
            }
        }
        for shard in fe.live.clone() {
            let mut ss = shard.state.lock();
            if ss.done {
                continue;
            }
            if !ss.aborted {
                ss.aborted = true;
                shard.net.abort();
                self.emit_script(
                    &shard,
                    ScriptEvent::PerformanceAborted {
                        performance: PerformanceId(shard.seq),
                    },
                );
            }
            let finalize = ss.is_ready() && !ss.completing;
            if finalize {
                ss.completing = true;
            }
            drop(ss);
            if finalize {
                self.finalize_shard(&mut fe, &shard);
            } else {
                shard.cond.notify_all();
            }
        }
        drop(fe);
        self.cond.notify_all();
    }

    /// Manually freezes the gathering performance's cast (open-ended
    /// scripts). No-op if no performance is gathering.
    pub(crate) fn seal_cast(&self) {
        let mut fe = self.front.lock();
        let Some(shard) = fe.gathering.clone() else {
            return;
        };
        self.seal_shard_inner(&mut fe, &shard);
        self.try_advance(&mut fe);
        drop(fe);
        self.cond.notify_all();
    }

    /// Freezes one specific performance's cast (used by
    /// [`RoleCtx::seal_cast`], which knows which performance it is in).
    pub(crate) fn seal_shard(&self, shard: &Arc<PerfShard<M>>) {
        let mut fe = self.front.lock();
        self.seal_shard_inner(&mut fe, shard);
        self.try_advance(&mut fe);
        drop(fe);
        self.cond.notify_all();
    }

    fn seal_shard_inner(&self, fe: &mut FrontEnd<M>, shard: &Arc<PerfShard<M>>) {
        let mut ss = shard.state.lock();
        if ss.frozen || ss.done {
            return;
        }
        Self::freeze(&self.spec, &shard.net, &mut ss);
        self.emit_script(
            shard,
            ScriptEvent::CastFrozen {
                performance: PerformanceId(shard.seq),
            },
        );
        if let Some(g) = fe.gathering.as_ref() {
            if Arc::ptr_eq(g, shard) {
                fe.gathering = None;
            }
        }
        let finalize = ss.is_ready() && !ss.completing;
        if finalize {
            ss.completing = true;
        }
        drop(ss);
        if finalize {
            self.finalize_shard(fe, shard);
        } else {
            shard.cond.notify_all();
        }
    }

    /// The full enrollment path: queue, get admitted, run the role body
    /// on this thread, finish, and (for delayed termination) wait for the
    /// whole cast.
    pub(crate) fn enroll_erased(
        self: &Arc<Self>,
        role: RoleRef,
        params: Box<dyn Any + Send>,
        options: Enrollment,
    ) -> Result<Box<dyn Any + Send>, ScriptError> {
        let deadline = options.deadline.map(|d| d.resolve());
        let process = options.process.unwrap_or_else(ProcessId::anonymous);
        self.validate_role_ref(&role)?;

        // Phase 1: queue and wait for admission (the only phase that
        // touches the front-end lock and condvar).
        let ticket;
        {
            let mut fe = self.front.lock();
            if fe.closed {
                return Err(ScriptError::InstanceClosed);
            }
            ticket = fe.next_ticket;
            fe.next_ticket += 1;
            self.emit_instance(TelemetryPayload::Script(ScriptEvent::EnrollmentQueued {
                role: match &role {
                    RoleRef::Concrete(id) => id.clone(),
                    RoleRef::NextOf(family) => RoleId::new(family.clone()),
                },
                process: process.clone(),
            }));
            fe.pending.push(PendingSlot {
                ticket,
                role,
                process: process.clone(),
                partners: options.partners,
                deadline,
                outcome: Outcome::Waiting,
            });
            self.try_advance(&mut fe);
            if options.non_blocking {
                let idx = fe
                    .pending
                    .iter()
                    .position(|s| s.ticket == ticket)
                    .expect("just pushed");
                if matches!(fe.pending[idx].outcome, Outcome::Waiting) {
                    fe.pending.remove(idx);
                    return Err(ScriptError::WouldBlock);
                }
            }
            drop(fe);
            self.cond.notify_all();
        }
        let (shard, role_id) = {
            let mut fe = self.front.lock();
            loop {
                let idx = fe
                    .pending
                    .iter()
                    .position(|s| s.ticket == ticket)
                    .expect("pending slot present until resolved");
                match &fe.pending[idx].outcome {
                    Outcome::Admitted { shard, role } => {
                        let shard = Arc::clone(shard);
                        let role = role.clone();
                        fe.pending.remove(idx);
                        break (shard, role);
                    }
                    Outcome::Rejected(e) => {
                        let e = e.clone();
                        fe.pending.remove(idx);
                        return Err(e);
                    }
                    Outcome::Waiting => {
                        let timed_out = match deadline {
                            Some(d) => self.cond.wait_until(&mut fe, d).timed_out(),
                            None => {
                                self.cond.wait(&mut fe);
                                false
                            }
                        };
                        if timed_out {
                            // Re-find the slot: sibling removals during
                            // the wait may have shifted its position.
                            let idx = fe
                                .pending
                                .iter()
                                .position(|s| s.ticket == ticket)
                                .expect("pending slot present until resolved");
                            if matches!(fe.pending[idx].outcome, Outcome::Waiting) {
                                fe.pending.remove(idx);
                                self.try_advance(&mut fe);
                                drop(fe);
                                self.cond.notify_all();
                                return Err(ScriptError::Timeout);
                            }
                        }
                    }
                }
            }
        };
        let seq = shard.seq;

        // Phase 2: run the role body on this thread (the role is a
        // logical continuation of the enrolling process).
        let def = self
            .spec
            .role_def(role_id.name())
            .expect("admitted role exists in spec");
        let body = Arc::clone(&def.body);
        let port = shard
            .net
            .port(role_id.clone())
            .expect("cast role is declared in the performance network");
        let mut ctx = RoleCtx::new(
            Arc::clone(self),
            Arc::clone(&shard),
            port,
            role_id.clone(),
            PerformanceId(seq),
            process,
            deadline,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx, params)));
        drop(ctx);

        // Phase 3: finish the role on the shard alone; only the thread
        // that completes the performance crosses back to the front end.
        let panicked = outcome.is_err();
        let finalize = {
            let mut ss = shard.state.lock();
            ss.running.remove(&role_id);
            ss.finished.insert(role_id.clone());
            shard.net.finish(role_id.clone());
            if panicked && !ss.aborted {
                ss.aborted = true;
                shard.net.abort();
            }
            self.emit_script(
                &shard,
                ScriptEvent::RoleFinished {
                    performance: PerformanceId(seq),
                    role: role_id.clone(),
                },
            );
            if panicked {
                self.emit_script(
                    &shard,
                    ScriptEvent::PerformanceAborted {
                        performance: PerformanceId(seq),
                    },
                );
            }
            let f = ss.is_ready() && !ss.completing;
            if f {
                ss.completing = true;
            }
            f
        };
        if finalize {
            let mut fe = self.front.lock();
            self.finalize_shard(&mut fe, &shard);
            self.try_advance(&mut fe);
            drop(fe);
            self.cond.notify_all();
        } else {
            shard.cond.notify_all();
        }

        if panicked {
            return Err(ScriptError::RolePanicked(role_id));
        }

        // Phase 4: delayed termination barrier, on the shard's own
        // condvar — unrelated performances are never woken.
        if self.spec.termination == Termination::Delayed {
            let mut ss = shard.state.lock();
            while !ss.done {
                let timed_out = match deadline {
                    Some(d) => shard.cond.wait_until(&mut ss, d).timed_out(),
                    None => {
                        shard.cond.wait(&mut ss);
                        false
                    }
                };
                if timed_out && !ss.done {
                    return Err(ScriptError::Timeout);
                }
            }
            if ss.aborted {
                return Err(if ss.stalled {
                    ScriptError::Stalled
                } else {
                    ScriptError::PerformanceAborted
                });
            }
        }
        let stalled = shard.state.lock().stalled;

        match outcome.expect("panic case returned above") {
            // A role unblocked by a watchdog abort sees the generic
            // abort from the channel layer; name the real cause.
            Err(ScriptError::PerformanceAborted) if stalled => Err(ScriptError::Stalled),
            other => other,
        }
    }

    fn validate_role_ref(&self, role: &RoleRef) -> Result<(), ScriptError> {
        match role {
            RoleRef::Concrete(id) => self.spec.validate_role_id(id),
            RoleRef::NextOf(family) => match self.spec.role_def(family).map(|d| d.family) {
                Some(Some(FamilySize::Open { .. })) => Ok(()),
                _ => Err(ScriptError::UnknownRole(RoleId::new(family.clone()))),
            },
        }
    }

    /// Retires a completed shard. The caller has claimed completion (set
    /// `completing` under the shard lock, then released it) and holds the
    /// front-end lock.
    fn finalize_shard(&self, fe: &mut FrontEnd<M>, shard: &Arc<PerfShard<M>>) {
        let aborted = {
            let mut ss = shard.state.lock();
            debug_assert!(ss.completing && !ss.done);
            ss.done = true;
            ss.aborted
        };
        // Surface every fault the chaos layer injected, in schedule
        // order, before the completion event — unless telemetry was
        // live when the performance opened, in which case each record
        // already streamed out at injection time.
        if !shard.live_faults {
            for record in shard.net.take_fault_log() {
                self.emit_script(
                    shard,
                    ScriptEvent::FaultInjected {
                        performance: PerformanceId(shard.seq),
                        fault: record.to_string(),
                    },
                );
            }
        }
        self.emit_script(
            shard,
            ScriptEvent::PerformanceCompleted {
                performance: PerformanceId(shard.seq),
                aborted,
            },
        );
        fe.live.retain(|s| !Arc::ptr_eq(s, shard));
        if let Some(g) = fe.gathering.as_ref() {
            if Arc::ptr_eq(g, shard) {
                fe.gathering = None;
            }
        }
        self.completed.fetch_add(1, Ordering::SeqCst);
        shard.cond.notify_all();
    }

    /// Advances the front end: starts performances and admits pending
    /// enrollments. Must be called with the front-end lock held whenever
    /// the pending set changes or a gathering slot frees up.
    fn try_advance(&self, fe: &mut FrontEnd<M>) {
        if fe.closed {
            return;
        }
        match self.spec.initiation {
            Initiation::Delayed => {
                // Overlapping activations: keep opening performances
                // while the pending set can cover a critical role set.
                while self.start_delayed(fe) {}
            }
            Initiation::Immediate => loop {
                if fe.gathering.is_none() {
                    if !fe
                        .pending
                        .iter()
                        .any(|s| matches!(s.outcome, Outcome::Waiting))
                    {
                        return;
                    }
                    self.open_performance(fe, Vec::new());
                }
                let shard = Arc::clone(fe.gathering.as_ref().expect("just ensured"));
                let seq = shard.seq;
                let mut ss = shard.state.lock();
                let newly_admitted =
                    Self::admit_pending(&self.spec, &shard, &mut ss, &mut fe.pending);
                let froze = if Self::covers_critical(&self.spec, &ss) {
                    Self::freeze(&self.spec, &shard.net, &mut ss);
                    true
                } else {
                    false
                };
                for (role, process) in newly_admitted {
                    self.emit_script(
                        &shard,
                        ScriptEvent::RoleAdmitted {
                            performance: PerformanceId(seq),
                            role,
                            process,
                        },
                    );
                }
                if !froze {
                    return;
                }
                self.emit_script(
                    &shard,
                    ScriptEvent::CastFrozen {
                        performance: PerformanceId(seq),
                    },
                );
                // Detach: the frozen performance runs on its shard while
                // the next enrollment gathers into a fresh one (overlap).
                fe.gathering = None;
                let finalize = ss.is_ready() && !ss.completing;
                if finalize {
                    ss.completing = true;
                }
                drop(ss);
                if finalize {
                    self.finalize_shard(fe, &shard);
                }
            },
        }
    }

    /// Tries to start a delayed-initiation performance from the pending
    /// set. Returns `true` if one was started.
    fn start_delayed(&self, fe: &mut FrontEnd<M>) -> bool {
        let now = Instant::now();
        let waiting: Vec<&PendingSlot<M>> =
            fe.pending.iter().filter(|s| s.matchable(now)).collect();
        let candidates: Vec<Candidate<'_>> = waiting
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.role {
                RoleRef::Concrete(id) => Some(Candidate {
                    idx: i,
                    role: id,
                    process: &s.process,
                    partners: &s.partners,
                }),
                // Open families cannot occur with delayed initiation.
                RoleRef::NextOf(_) => None,
            })
            .collect();
        let critical: Vec<_> = self
            .spec
            .expanded_critical()
            .into_iter()
            .map(|(exact, _)| exact)
            .collect();
        let Some(assignment) = match_performance(&candidates, &critical) else {
            return false;
        };
        let admitted: Vec<(u64, RoleId)> = assignment
            .into_iter()
            .map(|(role, cand_idx)| (waiting[candidates[cand_idx].idx].ticket, role))
            .collect();
        self.open_performance(fe, admitted);
        true
    }

    /// Creates the next performance and admits the given
    /// `(ticket, role)` pairs into it. Delayed performances (non-empty
    /// admission list) are frozen at creation and run detached; an empty
    /// admission list makes the new shard the gathering one.
    fn open_performance(&self, fe: &mut FrontEnd<M>, admitted: Vec<(u64, RoleId)>) {
        let seq = fe.next_seq;
        fe.next_seq += 1;
        let seed = fe.chaos_seed.map(|root| mix_seed(root, seq));
        let open = self.spec.has_open_family();
        let net: Network<RoleId, M> = match &fe.net_factory {
            Some(factory) => {
                let net = factory(&PerformanceNet {
                    performance: PerformanceId(seq),
                    open,
                    seed,
                    placement: fe.placement_hint.clone(),
                });
                // Reseed so factory-built networks draw the same
                // per-performance schedule as default ones.
                if let Some(s) = seed {
                    net.reseed(s);
                }
                net
            }
            None => match (open, seed) {
                (true, Some(s)) => Network::new_open_seeded(s),
                (true, None) => Network::new_open(),
                (false, Some(s)) => Network::with_seed(s),
                (false, None) => Network::new(),
            },
        };
        if let Some(plan) = &fe.fault_plan {
            net.set_fault_plan(plan.reseeded(mix_seed(plan.seed(), seq)));
        }
        for role in self.spec.fixed_role_ids() {
            net.declare(role);
        }
        // Per-performance latency estimator: sized by the adaptive
        // policy when one is armed, and attached whenever *any* policy
        // is (so Fixed-policy stall events still carry an observed p99).
        let estimator_capacity = match &fe.watchdog {
            Some(WatchdogPolicy::Adaptive(adaptive)) => adaptive.capacity,
            _ => DEFAULT_ESTIMATOR_CAPACITY,
        };
        let telemetry_live = self.telemetry_on();
        let shard = Arc::new(PerfShard {
            seq,
            net,
            latency: Arc::new(LatencyEstimator::new(estimator_capacity)),
            telemetry_seq: Mutex::new(0),
            live_faults: telemetry_live,
            state: Mutex::new(ShardState {
                cast: Vec::new(),
                running: HashSet::new(),
                finished: HashSet::new(),
                frozen: false,
                aborted: false,
                stalled: false,
                done: false,
                completing: false,
                next_open_index: HashMap::new(),
            }),
            cond: Condvar::new(),
        });
        // Transport observers carry weak references both ways (the
        // network outlives neither the engine nor the shard it serves,
        // and strong captures would cycle through `shard.net`).
        if fe.watchdog.is_some() || telemetry_live {
            let est = Arc::clone(&shard.latency);
            let weak_engine = self.weak.clone();
            let weak_shard = Arc::downgrade(&shard);
            shard.net.set_latency_observer(move |sample| {
                est.record(sample.elapsed);
                if let (Some(engine), Some(shard)) = (weak_engine.upgrade(), weak_shard.upgrade()) {
                    if engine.telemetry_on() {
                        engine.emit_shard(&shard, TelemetryPayload::Latency(*sample));
                    }
                }
            });
        }
        if telemetry_live {
            let weak_engine = self.weak.clone();
            let weak_shard = Arc::downgrade(&shard);
            shard.net.set_fault_observer(move |record| {
                if let (Some(engine), Some(shard)) = (weak_engine.upgrade(), weak_shard.upgrade()) {
                    engine.emit_script(
                        &shard,
                        ScriptEvent::FaultInjected {
                            performance: PerformanceId(shard.seq),
                            fault: record.to_string(),
                        },
                    );
                }
            });
            // Every completed rendezvous surfaces as a ScriptEvent on
            // the same per-performance sequence — the communication
            // trace a conformance monitor checks. The transport emits
            // under the receiving endpoint's lock, so observation
            // order here cannot invert against pickup order.
            let weak_engine = self.weak.clone();
            let weak_shard = Arc::downgrade(&shard);
            shard.net.set_rendezvous_observer(
                move |rec| {
                    if let (Some(engine), Some(shard)) =
                        (weak_engine.upgrade(), weak_shard.upgrade())
                    {
                        engine.emit_script(
                            &shard,
                            ScriptEvent::Rendezvous {
                                performance: PerformanceId(shard.seq),
                                from: rec.from.clone(),
                                to: rec.to.clone(),
                                label: rec.label.clone(),
                                seq: rec.seq,
                            },
                        );
                    }
                },
                fe.labeler.unwrap_or(unlabeled::<M>),
            );
            // Session lifecycle (connection-oriented transports only:
            // the in-process transport never emits these) surfaces on
            // the same plane, attributed to this performance.
            let weak_engine = self.weak.clone();
            let weak_shard = Arc::downgrade(&shard);
            shard.net.set_session_observer(move |event| {
                if let (Some(engine), Some(shard)) = (weak_engine.upgrade(), weak_shard.upgrade()) {
                    let payload = match event {
                        SessionEvent::PeerDisconnected(peer) => {
                            TelemetryPayload::PeerDisconnected { peer: peer.clone() }
                        }
                        SessionEvent::PeerResumed(peer) => {
                            TelemetryPayload::PeerResumed { peer: peer.clone() }
                        }
                        SessionEvent::LeaseExpired(peer) => {
                            TelemetryPayload::LeaseExpired { peer: peer.clone() }
                        }
                    };
                    engine.emit_shard(&shard, payload);
                }
            });
        }
        self.emit_script(
            &shard,
            ScriptEvent::PerformanceStarted {
                performance: PerformanceId(seq),
            },
        );
        let delayed = !admitted.is_empty();
        {
            let mut ss = shard.state.lock();
            for (ticket, role) in admitted {
                let slot = fe
                    .pending
                    .iter_mut()
                    .find(|s| s.ticket == ticket)
                    .expect("admitted ticket pending");
                shard.net.activate(role.clone());
                ss.cast
                    .push((role.clone(), slot.process.clone(), slot.partners.clone()));
                ss.running.insert(role.clone());
                let process = slot.process.clone();
                slot.outcome = Outcome::Admitted {
                    shard: Arc::clone(&shard),
                    role: role.clone(),
                };
                self.emit_script(
                    &shard,
                    ScriptEvent::RoleAdmitted {
                        performance: PerformanceId(seq),
                        role,
                        process,
                    },
                );
            }
            if delayed {
                Self::freeze(&self.spec, &shard.net, &mut ss);
                self.emit_script(
                    &shard,
                    ScriptEvent::CastFrozen {
                        performance: PerformanceId(seq),
                    },
                );
            }
        }
        if let Some(policy) = fe.watchdog.clone() {
            self.spawn_watchdog(Arc::clone(&shard), policy);
        }
        fe.live.push(Arc::clone(&shard));
        if !delayed {
            fe.gathering = Some(shard);
        }
    }

    /// Spawns the quiescence monitor for one performance.
    ///
    /// The engine itself stays passive (role bodies run on enrolling
    /// threads); the watchdog is the one deliberate exception — an
    /// observer that cannot run on any participant thread, since every
    /// participant may be the one that is stuck. It holds the shard and
    /// only a weak engine reference, and exits as soon as the
    /// performance terminates or aborts.
    fn spawn_watchdog(&self, shard: Arc<PerfShard<M>>, policy: WatchdogPolicy) {
        let weak = self.weak.clone();
        std::thread::spawn(move || {
            let mut last_activity = shard.net.activity();
            let mut last_progress = Instant::now();
            // EWMA floor under adaptive policies: widens instantly with a
            // slow regime, shrinks only geometrically afterwards, so a
            // slow→fast transition cannot snap the window shut on a
            // rendezvous armed under the old regime.
            let mut floor = WindowFloor::default();
            // Last window announced on the telemetry plane; re-announced
            // only on a ≥ 1/8 relative move so adaptive policies do not
            // flood the plane on every poll.
            let mut announced: Option<Duration> = None;
            loop {
                // Re-derive the deadline every iteration: the estimator
                // gains samples while the performance runs, so adaptive
                // windows track the observed rendezvous-latency quantile.
                let (window, observed_p99) = match &policy {
                    WatchdogPolicy::Fixed(w) => (*w, shard.latency.quantile(0.99)),
                    WatchdogPolicy::Adaptive(adaptive) => {
                        let (raw, p99) = adaptive.window_for(&shard.latency);
                        let smoothed = floor
                            .apply(raw, adaptive.smoothing)
                            .min(adaptive.max_window);
                        (smoothed, p99)
                    }
                };
                if let Some(engine) = weak.upgrade() {
                    if engine.telemetry_on() {
                        let moved = announced.is_none_or(|prev| window.abs_diff(prev) * 8 >= prev);
                        if moved {
                            announced = Some(window);
                            engine.emit_shard(
                                &shard,
                                TelemetryPayload::WatchdogArmed {
                                    window,
                                    observed_p99,
                                },
                            );
                        }
                    }
                }
                let poll = (window / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
                std::thread::sleep(poll);
                let Some(engine) = weak.upgrade() else { return };
                {
                    let ss = shard.state.lock();
                    if ss.done || ss.aborted {
                        return;
                    }
                }
                let now_activity = shard.net.activity();
                if now_activity != last_activity {
                    last_activity = now_activity;
                    last_progress = Instant::now();
                    continue;
                }
                if last_progress.elapsed() < window {
                    continue;
                }
                // Quiescent past the deadline: declare a stall and abort.
                // Front end first (lock order), then the shard.
                let mut fe = engine.front.lock();
                let mut ss = shard.state.lock();
                if ss.done || ss.aborted {
                    return;
                }
                ss.aborted = true;
                ss.stalled = true;
                shard.net.abort();
                engine.emit_script(
                    &shard,
                    ScriptEvent::PerformanceStalled {
                        performance: PerformanceId(shard.seq),
                        observed_p99,
                        window,
                    },
                );
                engine.emit_script(
                    &shard,
                    ScriptEvent::PerformanceAborted {
                        performance: PerformanceId(shard.seq),
                    },
                );
                let finalize = ss.is_ready() && !ss.completing;
                if finalize {
                    ss.completing = true;
                }
                drop(ss);
                if finalize {
                    engine.finalize_shard(&mut fe, &shard);
                    engine.try_advance(&mut fe);
                }
                drop(fe);
                shard.cond.notify_all();
                engine.cond.notify_all();
                return;
            }
        });
    }

    /// Admits every currently-admissible pending enrollment, in ticket
    /// order, repeating until a fixed point (an admission may enable
    /// another). Returns the admitted `(role, process)` pairs.
    fn admit_pending(
        spec: &ScriptSpec<M>,
        shard: &Arc<PerfShard<M>>,
        ss: &mut ShardState,
        pending: &mut [PendingSlot<M>],
    ) -> Vec<(RoleId, ProcessId)> {
        let mut admitted = Vec::new();
        let now = Instant::now();
        let mut progress = true;
        while progress {
            progress = false;
            for slot in pending.iter_mut() {
                if !slot.matchable(now) {
                    continue;
                }
                let role = match &slot.role {
                    RoleRef::Concrete(id) => {
                        if ss.cast_has(id) {
                            continue;
                        }
                        if let Some(Some(FamilySize::Open { max: Some(m) })) =
                            spec.role_def(id.name()).map(|d| d.family)
                        {
                            if ss.family_count(id.name()) >= m {
                                continue;
                            }
                        }
                        id.clone()
                    }
                    RoleRef::NextOf(family) => {
                        let max = match spec.role_def(family).map(|d| d.family) {
                            Some(Some(FamilySize::Open { max })) => max,
                            _ => continue,
                        };
                        if let Some(m) = max {
                            if ss.family_count(family) >= m {
                                continue;
                            }
                        }
                        let next = ss.next_open_index.entry(family.clone()).or_insert(0);
                        // Skip indices explicitly taken.
                        let mut i = *next;
                        while ss.cast_has(&RoleId::indexed(family.clone(), i)) {
                            i += 1;
                        }
                        RoleId::indexed(family.clone(), i)
                    }
                };
                let cand = Candidate {
                    idx: 0,
                    role: &role,
                    process: &slot.process,
                    partners: &slot.partners,
                };
                if admissible(&cand, &ss.cast) {
                    if let RoleRef::NextOf(family) = &slot.role {
                        ss.next_open_index
                            .insert(family.clone(), role.index().expect("indexed") + 1);
                    }
                    shard.net.activate(role.clone());
                    ss.cast
                        .push((role.clone(), slot.process.clone(), slot.partners.clone()));
                    ss.running.insert(role.clone());
                    admitted.push((role.clone(), slot.process.clone()));
                    slot.outcome = Outcome::Admitted {
                        shard: Arc::clone(shard),
                        role,
                    };
                    progress = true;
                }
            }
        }
        admitted
    }

    /// Does the cast cover any critical role set?
    fn covers_critical(spec: &ScriptSpec<M>, ss: &ShardState) -> bool {
        let expanded = spec.expanded_critical();
        if expanded.is_empty() {
            // Open-ended script without critical sets: only manual seal.
            return false;
        }
        expanded.iter().any(|(exact, at_least)| {
            exact.iter().all(|r| ss.cast_has(r))
                && at_least
                    .iter()
                    .all(|(family, k)| ss.family_count(family) >= *k)
        })
    }

    /// Freezes the cast: unfilled roles become permanently terminated.
    fn freeze(spec: &ScriptSpec<M>, net: &Network<RoleId, M>, ss: &mut ShardState) {
        ss.frozen = true;
        for role in spec.fixed_role_ids() {
            if !ss.cast_has(&role) {
                net.finish(role);
            }
        }
        // Bars implicitly-declared (open family) stragglers.
        net.seal();
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fe = self.front.lock();
        f.debug_struct("Engine")
            .field("script", &self.spec.name)
            .field("pending", &fe.pending.len())
            .field("live", &fe.live.len())
            .field("completed", &self.completed.load(Ordering::SeqCst))
            .field("closed", &fe.closed)
            .finish()
    }
}
