//! The performance engine: enrollment queues, cast assembly, freezing,
//! successive activations, termination, and abort containment.
//!
//! The engine is deliberately *passive* — a mutex-protected state machine
//! advanced by the enrolling threads themselves — in keeping with the
//! paper's goal of "not generating additional processes when executing a
//! script". (The CSP and Ada *translations* in their respective crates
//! demonstrate the paper's supervisor-process alternative.)

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use script_chan::{FaultPlan, Network};

use crate::ctx::RoleCtx;
use crate::matcher::{admissible, match_performance, Candidate};
use crate::spec::{FamilySize, ScriptSpec};
use crate::{
    Enrollment, Initiation, Partners, PerformanceId, ProcessId, RoleId, ScriptError, ScriptEvent,
    Termination,
};

/// How an enrollment names its role: a concrete id, or "next free member"
/// of an open family.
#[derive(Debug, Clone)]
pub(crate) enum RoleRef {
    Concrete(RoleId),
    /// Auto-indexed member of the named open family.
    NextOf(String),
}

#[derive(Debug)]
enum Outcome {
    Waiting,
    Admitted { seq: u64, role: RoleId },
    Rejected(ScriptError),
}

#[derive(Debug)]
struct PendingSlot {
    ticket: u64,
    role: RoleRef,
    process: ProcessId,
    partners: Partners,
    outcome: Outcome,
}

struct Perf<M> {
    seq: u64,
    net: Network<RoleId, M>,
    /// Admitted (role, process, recorded partner constraints).
    cast: Vec<(RoleId, ProcessId, Partners)>,
    running: HashSet<RoleId>,
    finished: HashSet<RoleId>,
    frozen: bool,
    aborted: bool,
    next_open_index: HashMap<String, usize>,
}

impl<M> Perf<M> {
    fn cast_has(&self, role: &RoleId) -> bool {
        self.cast.iter().any(|(r, _, _)| r == role)
    }

    fn family_count(&self, family: &str) -> usize {
        self.cast
            .iter()
            .filter(|(r, _, _)| r.in_family(family))
            .count()
    }
}

struct EngineState<M> {
    next_ticket: u64,
    next_seq: u64,
    current: Option<Perf<M>>,
    pending: Vec<PendingSlot>,
    /// Number of fully completed performances; performance `s` has
    /// terminated iff `s < completed`.
    completed: u64,
    aborted_seqs: HashSet<u64>,
    /// Subset of `aborted_seqs` killed by the watchdog rather than by a
    /// panic or close; their participants see [`ScriptError::Stalled`].
    stalled_seqs: HashSet<u64>,
    closed: bool,
    /// Bounded event log, enabled on demand.
    events: Option<EventBuf>,
    /// Quiescence window: performances making no communication progress
    /// for this long are aborted by a monitor thread.
    watchdog: Option<Duration>,
    /// Root seed for per-performance network RNGs (fault determinism).
    chaos_seed: Option<u64>,
    /// Fault plan attached (reseeded per performance) to every new
    /// performance's network.
    fault_plan: Option<FaultPlan>,
}

/// SplitMix64 finalizer: derives per-performance seeds from a root seed
/// so distinct performances draw independent, reproducible schedules.
fn mix_seed(root: u64, seq: u64) -> u64 {
    let mut z = root
        .wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct EventBuf {
    buf: VecDeque<ScriptEvent>,
    capacity: usize,
}

impl<M> EngineState<M> {
    fn emit(&mut self, event: ScriptEvent) {
        if let Some(log) = self.events.as_mut() {
            if log.buf.len() == log.capacity {
                log.buf.pop_front();
            }
            log.buf.push_back(event);
        }
    }
}

pub(crate) struct Engine<M> {
    pub(crate) spec: Arc<ScriptSpec<M>>,
    state: Mutex<EngineState<M>>,
    cond: Condvar,
    /// Self-reference for watchdog threads (they must not keep the
    /// engine alive).
    weak: Weak<Engine<M>>,
}

impl<M: Send + Clone + 'static> Engine<M> {
    pub(crate) fn new(spec: Arc<ScriptSpec<M>>) -> Arc<Self> {
        Arc::new_cyclic(|weak| Self {
            spec,
            state: Mutex::new(EngineState::<M> {
                next_ticket: 0,
                next_seq: 0,
                current: None,
                pending: Vec::new(),
                completed: 0,
                aborted_seqs: HashSet::new(),
                stalled_seqs: HashSet::new(),
                closed: false,
                events: None,
                watchdog: None,
                chaos_seed: None,
                fault_plan: None,
            }),
            cond: Condvar::new(),
            weak: weak.clone(),
        })
    }

    /// Arms (or re-arms) the quiescence watchdog for future
    /// performances: a performance whose network makes no progress for
    /// `window` is aborted with [`ScriptError::Stalled`].
    pub(crate) fn set_watchdog(&self, window: Duration) {
        assert!(window > Duration::ZERO, "watchdog window must be positive");
        self.state.lock().watchdog = Some(window);
    }

    /// Disarms the watchdog for future performances.
    pub(crate) fn clear_watchdog(&self) {
        self.state.lock().watchdog = None;
    }

    /// Seeds the per-performance network RNGs (selection shuffling)
    /// deterministically. Affects future performances.
    pub(crate) fn set_chaos_seed(&self, seed: u64) {
        self.state.lock().chaos_seed = Some(seed);
    }

    /// Attaches `plan` (reseeded per performance from its own seed) to
    /// every future performance's network.
    pub(crate) fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().fault_plan = Some(plan);
    }

    /// Stops injecting faults into future performances.
    pub(crate) fn clear_fault_plan(&self) {
        self.state.lock().fault_plan = None;
    }

    /// Number of performances that have fully terminated.
    pub(crate) fn completed_performances(&self) -> u64 {
        self.state.lock().completed
    }

    /// Enables (or resizes) the bounded event log.
    pub(crate) fn enable_event_log(&self, capacity: usize) {
        let mut st = self.state.lock();
        st.events = Some(EventBuf {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
        });
    }

    /// Drains and returns the logged events.
    pub(crate) fn take_events(&self) -> Vec<ScriptEvent> {
        let mut st = self.state.lock();
        match st.events.as_mut() {
            Some(log) => log.buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// A diagnostic snapshot of the instance.
    pub(crate) fn status(&self) -> crate::InstanceStatus {
        let st = self.state.lock();
        crate::InstanceStatus {
            completed_performances: st.completed,
            pending_enrollments: st
                .pending
                .iter()
                .filter(|s| matches!(s.outcome, Outcome::Waiting))
                .count(),
            current: st.current.as_ref().map(|p| crate::PerformanceStatus {
                id: PerformanceId(p.seq),
                cast: p
                    .cast
                    .iter()
                    .map(|(r, pr, _)| (r.clone(), pr.clone()))
                    .collect(),
                frozen: p.frozen,
                running: p.running.len(),
                finished: p.finished.len(),
                aborted: p.aborted,
            }),
        }
    }

    /// Number of enrollments queued but not yet admitted.
    pub(crate) fn pending_enrollments(&self) -> usize {
        self.state
            .lock()
            .pending
            .iter()
            .filter(|s| matches!(s.outcome, Outcome::Waiting))
            .count()
    }

    /// Closes the instance: pending and future enrollments fail with
    /// [`ScriptError::InstanceClosed`]; a current performance is aborted.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.emit(ScriptEvent::InstanceClosed);
        for slot in &mut st.pending {
            if matches!(slot.outcome, Outcome::Waiting) {
                slot.outcome = Outcome::Rejected(ScriptError::InstanceClosed);
            }
        }
        let mut aborted_seq = None;
        if let Some(perf) = st.current.as_mut() {
            perf.aborted = true;
            perf.net.abort();
            aborted_seq = Some(perf.seq);
        }
        if let Some(seq) = aborted_seq {
            st.emit(ScriptEvent::PerformanceAborted {
                performance: PerformanceId(seq),
            });
        }
        self.check_completion(&mut st);
        drop(st);
        self.cond.notify_all();
    }

    /// Manually freezes the current performance's cast (open-ended
    /// scripts). No-op if there is no current performance or it is
    /// already frozen.
    pub(crate) fn seal_cast(&self) {
        let mut st = self.state.lock();
        let mut frozen_seq = None;
        if let Some(perf) = st.current.as_mut() {
            if !perf.frozen {
                Self::freeze(&self.spec, perf);
                frozen_seq = Some(perf.seq);
            }
        }
        if let Some(seq) = frozen_seq {
            st.emit(ScriptEvent::CastFrozen {
                performance: PerformanceId(seq),
            });
            self.try_advance(&mut st);
        }
        drop(st);
        self.cond.notify_all();
    }

    /// The cast of the performance `seq`, if it is the current one.
    pub(crate) fn cast_of(&self, seq: u64) -> Vec<(RoleId, ProcessId)> {
        let st = self.state.lock();
        match &st.current {
            Some(p) if p.seq == seq => p
                .cast
                .iter()
                .map(|(r, pr, _)| (r.clone(), pr.clone()))
                .collect(),
            _ => Vec::new(),
        }
    }

    pub(crate) fn is_frozen(&self, seq: u64) -> bool {
        let st = self.state.lock();
        match &st.current {
            Some(p) if p.seq == seq => p.frozen,
            // A performance that is no longer current was frozen by
            // construction when it completed.
            _ => true,
        }
    }

    /// The full enrollment path: queue, get admitted, run the role body
    /// on this thread, finish, and (for delayed termination) wait for the
    /// whole cast.
    pub(crate) fn enroll_erased(
        self: &Arc<Self>,
        role: RoleRef,
        params: Box<dyn Any + Send>,
        options: Enrollment,
    ) -> Result<Box<dyn Any + Send>, ScriptError> {
        let deadline = options.deadline;
        let process = options.process.unwrap_or_else(ProcessId::anonymous);
        self.validate_role_ref(&role)?;

        // Phase 1: queue and wait for admission.
        let ticket;
        {
            let mut st = self.state.lock();
            if st.closed {
                return Err(ScriptError::InstanceClosed);
            }
            ticket = st.next_ticket;
            st.next_ticket += 1;
            st.emit(ScriptEvent::EnrollmentQueued {
                role: match &role {
                    RoleRef::Concrete(id) => id.clone(),
                    RoleRef::NextOf(family) => RoleId::new(family.clone()),
                },
                process: process.clone(),
            });
            st.pending.push(PendingSlot {
                ticket,
                role,
                process: process.clone(),
                partners: options.partners,
                outcome: Outcome::Waiting,
            });
            self.try_advance(&mut st);
            if options.non_blocking {
                let idx = st
                    .pending
                    .iter()
                    .position(|s| s.ticket == ticket)
                    .expect("just pushed");
                if matches!(st.pending[idx].outcome, Outcome::Waiting) {
                    st.pending.remove(idx);
                    return Err(ScriptError::WouldBlock);
                }
            }
            drop(st);
            self.cond.notify_all();
        }
        let (seq, role_id, net) = {
            let mut st = self.state.lock();
            loop {
                let idx = st
                    .pending
                    .iter()
                    .position(|s| s.ticket == ticket)
                    .expect("pending slot present until resolved");
                match &st.pending[idx].outcome {
                    Outcome::Admitted { seq, role } => {
                        let seq = *seq;
                        let role = role.clone();
                        st.pending.remove(idx);
                        let net = st
                            .current
                            .as_ref()
                            .expect("admitted into the current performance")
                            .net
                            .clone();
                        break (seq, role, net);
                    }
                    Outcome::Rejected(e) => {
                        let e = e.clone();
                        st.pending.remove(idx);
                        return Err(e);
                    }
                    Outcome::Waiting => {
                        let timed_out = match deadline {
                            Some(d) => self.cond.wait_until(&mut st, d).timed_out(),
                            None => {
                                self.cond.wait(&mut st);
                                false
                            }
                        };
                        if timed_out && matches!(st.pending[idx].outcome, Outcome::Waiting) {
                            st.pending.remove(idx);
                            self.try_advance(&mut st);
                            drop(st);
                            self.cond.notify_all();
                            return Err(ScriptError::Timeout);
                        }
                    }
                }
            }
        };

        // Phase 2: run the role body on this thread (the role is a
        // logical continuation of the enrolling process).
        let def = self
            .spec
            .role_def(role_id.name())
            .expect("admitted role exists in spec");
        let body = Arc::clone(&def.body);
        let port = net
            .port(role_id.clone())
            .expect("cast role is declared in the performance network");
        let mut ctx = RoleCtx::new(
            Arc::clone(self),
            port,
            role_id.clone(),
            PerformanceId(seq),
            process,
            deadline,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx, params)));
        drop(ctx);

        // Phase 3: finish the role, maybe complete the performance.
        let mut st = self.state.lock();
        let panicked = outcome.is_err();
        {
            let perf = st
                .current
                .as_mut()
                .expect("performance outlives its running roles");
            debug_assert_eq!(perf.seq, seq);
            perf.running.remove(&role_id);
            perf.finished.insert(role_id.clone());
            perf.net.finish(role_id.clone());
            if panicked {
                perf.aborted = true;
                perf.net.abort();
            }
        }
        st.emit(ScriptEvent::RoleFinished {
            performance: PerformanceId(seq),
            role: role_id.clone(),
        });
        if panicked {
            st.emit(ScriptEvent::PerformanceAborted {
                performance: PerformanceId(seq),
            });
        }
        self.try_advance(&mut st);
        self.cond.notify_all();

        if panicked {
            return Err(ScriptError::RolePanicked(role_id));
        }

        // Phase 4: delayed termination barrier.
        if self.spec.termination == Termination::Delayed {
            loop {
                if st.completed > seq {
                    break;
                }
                let timed_out = match deadline {
                    Some(d) => self.cond.wait_until(&mut st, d).timed_out(),
                    None => {
                        self.cond.wait(&mut st);
                        false
                    }
                };
                if timed_out && st.completed <= seq {
                    return Err(ScriptError::Timeout);
                }
            }
            if st.aborted_seqs.contains(&seq) {
                return Err(if st.stalled_seqs.contains(&seq) {
                    ScriptError::Stalled
                } else {
                    ScriptError::PerformanceAborted
                });
            }
        }
        let stalled = st.stalled_seqs.contains(&seq);
        drop(st);

        match outcome.expect("panic case returned above") {
            // A role unblocked by a watchdog abort sees the generic
            // abort from the channel layer; name the real cause.
            Err(ScriptError::PerformanceAborted) if stalled => Err(ScriptError::Stalled),
            other => other,
        }
    }

    fn validate_role_ref(&self, role: &RoleRef) -> Result<(), ScriptError> {
        match role {
            RoleRef::Concrete(id) => self.spec.validate_role_id(id),
            RoleRef::NextOf(family) => match self.spec.role_def(family).map(|d| d.family) {
                Some(Some(FamilySize::Open { .. })) => Ok(()),
                _ => Err(ScriptError::UnknownRole(RoleId::new(family.clone()))),
            },
        }
    }

    /// Advances the state machine: starts performances and admits pending
    /// enrollments. Must be called with the state lock held whenever the
    /// pending set or the current performance changes.
    fn try_advance(&self, st: &mut EngineState<M>) {
        if st.closed {
            return;
        }
        loop {
            if st.current.is_none() {
                match self.spec.initiation {
                    Initiation::Delayed => {
                        if !self.start_delayed(st) {
                            return;
                        }
                    }
                    Initiation::Immediate => {
                        if !st
                            .pending
                            .iter()
                            .any(|s| matches!(s.outcome, Outcome::Waiting))
                        {
                            return;
                        }
                        self.open_performance(st, Vec::new());
                    }
                }
            }
            let mut newly_admitted = Vec::new();
            let mut froze = false;
            let seq;
            {
                let perf = st.current.as_mut().expect("just ensured");
                seq = perf.seq;
                if self.spec.initiation == Initiation::Immediate && !perf.frozen {
                    newly_admitted = Self::admit_pending(&self.spec, perf, &mut st.pending);
                    if Self::covers_critical(&self.spec, perf) {
                        Self::freeze(&self.spec, perf);
                        froze = true;
                    }
                }
            }
            for (role, process) in newly_admitted {
                st.emit(ScriptEvent::RoleAdmitted {
                    performance: PerformanceId(seq),
                    role,
                    process,
                });
            }
            if froze {
                st.emit(ScriptEvent::CastFrozen {
                    performance: PerformanceId(seq),
                });
            }
            // Freezing may complete an already-finished cast, which in
            // turn may start the next performance; loop once more if so.
            if !self.check_completion(st) {
                return;
            }
        }
    }

    /// Tries to start a delayed-initiation performance from the pending
    /// set. Returns `true` if one was started.
    fn start_delayed(&self, st: &mut EngineState<M>) -> bool {
        let waiting: Vec<&PendingSlot> = st
            .pending
            .iter()
            .filter(|s| matches!(s.outcome, Outcome::Waiting))
            .collect();
        let candidates: Vec<Candidate<'_>> = waiting
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.role {
                RoleRef::Concrete(id) => Some(Candidate {
                    idx: i,
                    role: id,
                    process: &s.process,
                    partners: &s.partners,
                }),
                // Open families cannot occur with delayed initiation.
                RoleRef::NextOf(_) => None,
            })
            .collect();
        let critical: Vec<_> = self
            .spec
            .expanded_critical()
            .into_iter()
            .map(|(exact, _)| exact)
            .collect();
        let Some(assignment) = match_performance(&candidates, &critical) else {
            return false;
        };
        let admitted: Vec<(u64, RoleId)> = assignment
            .into_iter()
            .map(|(role, cand_idx)| (waiting[candidates[cand_idx].idx].ticket, role))
            .collect();
        self.open_performance(st, admitted);
        true
    }

    /// Creates the next performance and admits the given
    /// `(ticket, role)` pairs into it. Delayed performances (non-empty
    /// admission list) are frozen at creation.
    fn open_performance(&self, st: &mut EngineState<M>, admitted: Vec<(u64, RoleId)>) {
        let seq = st.next_seq;
        st.next_seq += 1;
        let net: Network<RoleId, M> = match (self.spec.has_open_family(), st.chaos_seed) {
            (true, Some(root)) => Network::new_open_seeded(mix_seed(root, seq)),
            (true, None) => Network::new_open(),
            (false, Some(root)) => Network::with_seed(mix_seed(root, seq)),
            (false, None) => Network::new(),
        };
        if let Some(plan) = &st.fault_plan {
            net.set_fault_plan(plan.reseeded(mix_seed(plan.seed(), seq)));
        }
        for role in self.spec.fixed_role_ids() {
            net.declare(role);
        }
        if let Some(window) = st.watchdog {
            self.spawn_watchdog(seq, net.clone(), window);
        }
        let mut perf = Perf {
            seq,
            net,
            cast: Vec::new(),
            running: HashSet::new(),
            finished: HashSet::new(),
            frozen: false,
            aborted: false,
            next_open_index: HashMap::new(),
        };
        st.emit(ScriptEvent::PerformanceStarted {
            performance: PerformanceId(seq),
        });
        let delayed = !admitted.is_empty();
        for (ticket, role) in admitted {
            let slot = st
                .pending
                .iter_mut()
                .find(|s| s.ticket == ticket)
                .expect("admitted ticket pending");
            perf.net.activate(role.clone());
            perf.cast
                .push((role.clone(), slot.process.clone(), slot.partners.clone()));
            perf.running.insert(role.clone());
            let process = slot.process.clone();
            slot.outcome = Outcome::Admitted {
                seq,
                role: role.clone(),
            };
            st.emit(ScriptEvent::RoleAdmitted {
                performance: PerformanceId(seq),
                role,
                process,
            });
        }
        if delayed {
            Self::freeze(&self.spec, &mut perf);
            st.emit(ScriptEvent::CastFrozen {
                performance: PerformanceId(seq),
            });
        }
        st.current = Some(perf);
    }

    /// Spawns the quiescence monitor for performance `seq`.
    ///
    /// The engine itself stays passive (role bodies run on enrolling
    /// threads); the watchdog is the one deliberate exception — an
    /// observer that cannot run on any participant thread, since every
    /// participant may be the one that is stuck. It holds only a weak
    /// engine reference and exits as soon as `seq` is no longer the
    /// current performance.
    fn spawn_watchdog(&self, seq: u64, net: Network<RoleId, M>, window: Duration) {
        let weak = self.weak.clone();
        let poll = (window / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
        std::thread::spawn(move || {
            let mut last_activity = net.activity();
            let mut last_progress = Instant::now();
            loop {
                std::thread::sleep(poll);
                let Some(engine) = weak.upgrade() else { return };
                let mut st = engine.state.lock();
                match &st.current {
                    Some(p) if p.seq == seq && !p.aborted => {}
                    _ => return,
                }
                let now_activity = net.activity();
                if now_activity != last_activity {
                    last_activity = now_activity;
                    last_progress = Instant::now();
                    continue;
                }
                if last_progress.elapsed() < window {
                    continue;
                }
                // Quiescent past the deadline: declare a stall and abort.
                let perf = st.current.as_mut().expect("matched above");
                perf.aborted = true;
                perf.net.abort();
                st.aborted_seqs.insert(seq);
                st.stalled_seqs.insert(seq);
                st.emit(ScriptEvent::PerformanceStalled {
                    performance: PerformanceId(seq),
                });
                st.emit(ScriptEvent::PerformanceAborted {
                    performance: PerformanceId(seq),
                });
                engine.try_advance(&mut st);
                drop(st);
                engine.cond.notify_all();
                return;
            }
        });
    }

    /// Admits every currently-admissible pending enrollment, in ticket
    /// order, repeating until a fixed point (an admission may enable
    /// another). Returns the admitted `(role, process)` pairs.
    fn admit_pending(
        spec: &ScriptSpec<M>,
        perf: &mut Perf<M>,
        pending: &mut [PendingSlot],
    ) -> Vec<(RoleId, ProcessId)> {
        let mut admitted = Vec::new();
        let mut progress = true;
        while progress {
            progress = false;
            for slot in pending.iter_mut() {
                if !matches!(slot.outcome, Outcome::Waiting) {
                    continue;
                }
                let role = match &slot.role {
                    RoleRef::Concrete(id) => {
                        if perf.cast_has(id) {
                            continue;
                        }
                        if let Some(Some(FamilySize::Open { max: Some(m) })) =
                            spec.role_def(id.name()).map(|d| d.family)
                        {
                            if perf.family_count(id.name()) >= m {
                                continue;
                            }
                        }
                        id.clone()
                    }
                    RoleRef::NextOf(family) => {
                        let max = match spec.role_def(family).map(|d| d.family) {
                            Some(Some(FamilySize::Open { max })) => max,
                            _ => continue,
                        };
                        if let Some(m) = max {
                            if perf.family_count(family) >= m {
                                continue;
                            }
                        }
                        let next = perf.next_open_index.entry(family.clone()).or_insert(0);
                        // Skip indices explicitly taken.
                        let mut i = *next;
                        while perf.cast_has(&RoleId::indexed(family.clone(), i)) {
                            i += 1;
                        }
                        RoleId::indexed(family.clone(), i)
                    }
                };
                let cand = Candidate {
                    idx: 0,
                    role: &role,
                    process: &slot.process,
                    partners: &slot.partners,
                };
                if admissible(&cand, &perf.cast) {
                    if let RoleRef::NextOf(family) = &slot.role {
                        perf.next_open_index
                            .insert(family.clone(), role.index().expect("indexed") + 1);
                    }
                    perf.net.activate(role.clone());
                    perf.cast
                        .push((role.clone(), slot.process.clone(), slot.partners.clone()));
                    perf.running.insert(role.clone());
                    admitted.push((role.clone(), slot.process.clone()));
                    slot.outcome = Outcome::Admitted {
                        seq: perf.seq,
                        role,
                    };
                    progress = true;
                }
            }
        }
        admitted
    }

    /// Does the cast cover any critical role set?
    fn covers_critical(spec: &ScriptSpec<M>, perf: &Perf<M>) -> bool {
        let expanded = spec.expanded_critical();
        if expanded.is_empty() {
            // Open-ended script without critical sets: only manual seal.
            return false;
        }
        expanded.iter().any(|(exact, at_least)| {
            exact.iter().all(|r| perf.cast_has(r))
                && at_least
                    .iter()
                    .all(|(family, k)| perf.family_count(family) >= *k)
        })
    }

    /// Freezes the cast: unfilled roles become permanently terminated.
    fn freeze(spec: &ScriptSpec<M>, perf: &mut Perf<M>) {
        perf.frozen = true;
        for role in spec.fixed_role_ids() {
            if !perf.cast_has(&role) {
                perf.net.finish(role);
            }
        }
        // Bars implicitly-declared (open family) stragglers.
        perf.net.seal();
    }

    /// Completes the current performance if it is done; returns `true`
    /// if it completed (the caller should re-run `try_advance`).
    fn check_completion(&self, st: &mut EngineState<M>) -> bool {
        let done = match &st.current {
            Some(p) => {
                let all_finished = p.cast.iter().all(|(r, _, _)| p.finished.contains(r));
                (p.frozen && !p.cast.is_empty() && all_finished)
                    || (p.aborted && p.running.is_empty())
            }
            None => false,
        };
        if done {
            let perf = st.current.take().expect("checked");
            if perf.aborted {
                st.aborted_seqs.insert(perf.seq);
            }
            // Surface every fault the chaos layer injected, in schedule
            // order, before the completion event.
            for record in perf.net.take_fault_log() {
                st.emit(ScriptEvent::FaultInjected {
                    performance: PerformanceId(perf.seq),
                    fault: record.to_string(),
                });
            }
            st.completed = perf.seq + 1;
            st.emit(ScriptEvent::PerformanceCompleted {
                performance: PerformanceId(perf.seq),
                aborted: perf.aborted,
            });
            true
        } else {
            false
        }
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Engine")
            .field("script", &self.spec.name)
            .field("pending", &st.pending.len())
            .field("completed", &st.completed)
            .field("closed", &st.closed)
            .finish()
    }
}
