//! Streaming rendezvous-latency estimation for adaptive watchdog
//! windows.
//!
//! Each performance shard owns a [`LatencyEstimator`]; the engine feeds
//! it the wall-clock latency of every *successful* rendezvous operation
//! observed on the performance's network (sends, selections, non-empty
//! polls). The watchdog reads a high quantile back out and arms its
//! next quiescence deadline at `max(min_window, k × p99)` — see
//! [`AdaptiveWindow`](crate::AdaptiveWindow).
//!
//! The estimator is an exact quantile over a bounded ring of the most
//! recent samples rather than a P²-style running approximation. The
//! window is small (a few hundred samples) so sorting a copy on each
//! watchdog poll is cheap, and — unlike P², whose cell positions depend
//! on arrival order — the estimate is a pure function of the retained
//! sample multiset. That purity is what makes the estimator testable by
//! property: identical samples in any order yield the same window, and
//! eviction provably forgets old regimes once the ring turns over.

use std::time::Duration;

use parking_lot::Mutex;

/// A lock-cheap bounded-window latency estimator.
///
/// `record` is an O(1) ring overwrite under a private mutex; `quantile`
/// copies and sorts the occupied slots (bounded by the capacity chosen
/// at construction). Old samples are evicted strictly in arrival order,
/// so after `capacity` recordings from a new latency regime nothing of
/// the previous regime remains.
#[derive(Debug)]
pub struct LatencyEstimator {
    state: Mutex<EstState>,
}

#[derive(Debug)]
struct EstState {
    /// Retained samples in nanoseconds; slots `..filled` are occupied.
    ring: Box<[u64]>,
    /// Write cursor: the slot the next sample overwrites.
    next: usize,
    /// Occupied slots, saturating at the ring's length.
    filled: usize,
    /// Samples ever recorded (not capped by the window).
    total: u64,
}

impl LatencyEstimator {
    /// A fresh estimator retaining the `capacity` most recent samples
    /// (at least one).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            state: Mutex::new(EstState {
                ring: vec![0u64; cap].into_boxed_slice(),
                next: 0,
                filled: 0,
                total: 0,
            }),
        }
    }

    /// Records one completed-rendezvous latency, evicting the oldest
    /// retained sample once the window is full.
    pub fn record(&self, sample: Duration) {
        let ns = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        let mut st = self.state.lock();
        let cap = st.ring.len();
        let slot = st.next;
        st.ring[slot] = ns;
        st.next = (slot + 1) % cap;
        st.filled = (st.filled + 1).min(cap);
        st.total += 1;
    }

    /// Samples ever recorded, including ones the window has evicted.
    pub fn count(&self) -> u64 {
        self.state.lock().total
    }

    /// Samples currently retained in the window.
    pub fn len(&self) -> usize {
        self.state.lock().filled
    }

    /// True until the first sample is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exact `q`-quantile (nearest rank, `q` clamped to `[0, 1]`)
    /// of the retained window, or `None` before any sample arrives.
    ///
    /// By construction the estimate is one of the retained samples, so
    /// it never leaves their min/max range, and the rank index is
    /// non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let mut window = {
            let st = self.state.lock();
            if st.filled == 0 {
                return None;
            }
            st.ring[..st.filled].to_vec()
        };
        window.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((window.len() - 1) as f64 * q).ceil() as usize;
        Some(Duration::from_nanos(window[idx]))
    }
}

/// Temporal smoothing for successive adaptive window choices: an EWMA
/// floor under the raw `k × p99` window.
///
/// The armed window is `max(raw, ewma)`, so it widens *immediately*
/// when rendezvous slow down (the raw term jumps) but shrinks only
/// geometrically after a slow→fast regime shift — a burst of fast
/// samples cannot collapse the window underneath an operation that
/// started under the old, slower regime.
#[derive(Debug, Default)]
pub struct WindowFloor {
    ewma_ns: f64,
}

impl WindowFloor {
    /// Folds the next raw window into the floor (EWMA weight `alpha`
    /// on the new value) and returns the window to arm.
    pub fn apply(&mut self, raw: Duration, alpha: f64) -> Duration {
        let raw_ns = raw.as_secs_f64() * 1e9;
        self.ewma_ns = if self.ewma_ns == 0.0 {
            raw_ns
        } else {
            alpha * raw_ns + (1.0 - alpha) * self.ewma_ns
        };
        if self.ewma_ns > raw_ns {
            Duration::from_secs_f64(self.ewma_ns / 1e9)
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_has_no_quantile() {
        let est = LatencyEstimator::new(8);
        assert!(est.is_empty());
        assert_eq!(est.quantile(0.99), None);
    }

    #[test]
    fn quantile_extremes_are_min_and_max() {
        let est = LatencyEstimator::new(16);
        for ns in [30u64, 10, 20] {
            est.record(Duration::from_nanos(ns));
        }
        assert_eq!(est.quantile(0.0), Some(Duration::from_nanos(10)));
        assert_eq!(est.quantile(1.0), Some(Duration::from_nanos(30)));
        assert_eq!(est.len(), 3);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let est = LatencyEstimator::new(0);
        est.record(Duration::from_nanos(5));
        est.record(Duration::from_nanos(9));
        // Only the latest sample survives in a one-slot window.
        assert_eq!(est.quantile(0.0), Some(Duration::from_nanos(9)));
        assert_eq!(est.quantile(1.0), Some(Duration::from_nanos(9)));
    }

    #[test]
    fn ring_evicts_oldest_samples_first() {
        let est = LatencyEstimator::new(4);
        for ns in 1..=6u64 {
            est.record(Duration::from_micros(ns));
        }
        // Samples 1 and 2 µs fell off; 3..=6 remain.
        assert_eq!(est.quantile(0.0), Some(Duration::from_micros(3)));
        assert_eq!(est.quantile(1.0), Some(Duration::from_micros(6)));
        assert_eq!(est.len(), 4);
        assert_eq!(est.count(), 6);
    }

    #[test]
    fn floor_rises_instantly_and_decays_gradually() {
        let mut floor = WindowFloor::default();
        let slow = Duration::from_millis(400);
        let fast = Duration::from_millis(25);
        assert_eq!(floor.apply(slow, 0.3), slow);
        // The first fast raw window is not armed verbatim: the floor
        // from the slow regime still dominates...
        let first = floor.apply(fast, 0.3);
        assert!(first > fast && first < slow);
        // ...but repeated fast windows converge down to it.
        let mut last = first;
        for _ in 0..64 {
            last = floor.apply(fast, 0.3);
        }
        assert_eq!(last, fast);
    }
}
