//! The paper's Figure 12 mailbox monitor, in two packaging variants.

use std::fmt;
use std::time::Duration;

use crate::Monitor;

/// A one-slot mailbox: `put` waits until empty, `get` waits until full.
///
/// This is the `mailbox : MONITOR` of Figure 12 in the paper. Each mailbox
/// is its own monitor, so distinct mailboxes admit concurrent access (the
/// "multiple monitor scheme" the paper's script solution follows).
///
/// # Example
///
/// ```
/// use script_monitor::Mailbox;
/// use std::sync::Arc;
///
/// let mbox = Arc::new(Mailbox::new());
/// let producer = {
///     let mbox = Arc::clone(&mbox);
///     std::thread::spawn(move || mbox.put("hello"))
/// };
/// assert_eq!(mbox.get(), "hello");
/// producer.join().unwrap();
/// ```
pub struct Mailbox<T> {
    slot: Monitor<Option<T>>,
}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self {
            slot: Monitor::new(None),
        }
    }

    /// Deposits `item`, waiting until the mailbox is empty.
    pub fn put(&self, item: T) {
        self.slot
            .wait_until(|s| s.is_none(), move |s| *s = Some(item));
    }

    /// Removes the item, waiting until the mailbox is full.
    pub fn get(&self) -> T {
        self.slot.wait_until(
            |s| s.is_some(),
            |s| s.take().expect("predicate guaranteed Some"),
        )
    }

    /// Attempts [`Mailbox::put`], giving up after `timeout`.
    ///
    /// Returns the item back on timeout so the caller keeps ownership.
    pub fn put_timeout(&self, item: T, timeout: Duration) -> Result<(), T> {
        let mut item = Some(item);
        let deposited = self.slot.wait_until_timeout(
            |s| s.is_none(),
            timeout,
            |s| *s = Some(item.take().expect("consumed once")),
        );
        match deposited {
            Some(()) => Ok(()),
            None => Err(item.take().expect("still owned on timeout")),
        }
    }

    /// Attempts [`Mailbox::get`], giving up after `timeout`.
    pub fn get_timeout(&self, timeout: Duration) -> Option<T> {
        self.slot.wait_until_timeout(
            |s| s.is_some(),
            timeout,
            |s| s.take().expect("predicate guaranteed Some"),
        )
    }

    /// Returns `true` if the mailbox currently holds an item.
    pub fn is_full(&self) -> bool {
        self.slot.peek(|s| s.is_some())
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mailbox")
            .field("full", &self.is_full())
            .finish()
    }
}

/// Many one-slot mailboxes housed in a *single* monitor.
///
/// This is the packaging the paper rejects: "all access to any mailbox is
/// serialized". It is provided so that the serialization penalty can be
/// measured against [`PerMailbox`] (experiment E8 / Figure 12 discussion).
pub struct SharedMailboxes<T> {
    slots: Monitor<Vec<Option<T>>>,
}

impl<T> SharedMailboxes<T> {
    /// Creates `n` empty mailboxes inside one monitor.
    pub fn new(n: usize) -> Self {
        Self {
            slots: Monitor::new((0..n).map(|_| None).collect()),
        }
    }

    /// Number of mailboxes.
    pub fn len(&self) -> usize {
        self.slots.peek(|v| v.len())
    }

    /// Returns `true` if there are no mailboxes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits into mailbox `i`, waiting until that slot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn put(&self, i: usize, item: T) {
        self.slots
            .wait_until(|v| v[i].is_none(), move |v| v[i] = Some(item));
    }

    /// Removes from mailbox `i`, waiting until that slot is full.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> T {
        self.slots.wait_until(
            |v| v[i].is_some(),
            |v| v[i].take().expect("predicate guaranteed Some"),
        )
    }
}

impl<T> fmt::Debug for SharedMailboxes<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedMailboxes")
            .field("len", &self.len())
            .finish()
    }
}

/// Many one-slot mailboxes, one monitor each — the paper's preferred layout.
///
/// Functionally identical to [`SharedMailboxes`] but distinct mailboxes can
/// be accessed concurrently.
pub struct PerMailbox<T> {
    boxes: Vec<Mailbox<T>>,
}

impl<T> PerMailbox<T> {
    /// Creates `n` empty mailboxes, each its own monitor.
    pub fn new(n: usize) -> Self {
        Self {
            boxes: (0..n).map(|_| Mailbox::new()).collect(),
        }
    }

    /// Number of mailboxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Returns `true` if there are no mailboxes at all.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Deposits into mailbox `i`, waiting until that slot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn put(&self, i: usize, item: T) {
        self.boxes[i].put(item);
    }

    /// Removes from mailbox `i`, waiting until that slot is full.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> T {
        self.boxes[i].get()
    }

    /// Borrows mailbox `i` directly.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn mailbox(&self, i: usize) -> &Mailbox<T> {
        &self.boxes[i]
    }
}

impl<T> fmt::Debug for PerMailbox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerMailbox")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_then_get() {
        let m = Mailbox::new();
        m.put(9);
        assert!(m.is_full());
        assert_eq!(m.get(), 9);
        assert!(!m.is_full());
    }

    #[test]
    fn get_blocks_until_put() {
        let m = Arc::new(Mailbox::new());
        let getter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.get())
        };
        std::thread::sleep(Duration::from_millis(10));
        m.put(3);
        assert_eq!(getter.join().unwrap(), 3);
    }

    #[test]
    fn put_blocks_until_empty() {
        let m = Arc::new(Mailbox::new());
        m.put(1);
        let putter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.put(2))
        };
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(m.get(), 1);
        putter.join().unwrap();
        assert_eq!(m.get(), 2);
    }

    #[test]
    fn put_timeout_returns_item_when_full() {
        let m = Mailbox::new();
        m.put("a");
        let back = m.put_timeout("b", Duration::from_millis(10));
        assert_eq!(back, Err("b"));
        assert_eq!(m.get(), "a");
    }

    #[test]
    fn get_timeout_on_empty_is_none() {
        let m: Mailbox<u8> = Mailbox::new();
        assert_eq!(m.get_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn shared_mailboxes_independent_slots() {
        let s = SharedMailboxes::new(3);
        s.put(0, 'a');
        s.put(2, 'c');
        assert_eq!(s.get(2), 'c');
        assert_eq!(s.get(0), 'a');
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn per_mailbox_roundtrip() {
        let p = PerMailbox::new(2);
        p.put(1, 10);
        assert_eq!(p.get(1), 10);
        assert!(!p.mailbox(0).is_full());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn shared_and_per_agree_on_sequencing() {
        // Same producer/consumer schedule through both layouts.
        let shared = Arc::new(SharedMailboxes::new(4));
        let per = Arc::new(PerMailbox::new(4));
        let mut handles = Vec::new();
        for i in 0..4 {
            let shared = Arc::clone(&shared);
            let per = Arc::clone(&per);
            handles.push(std::thread::spawn(move || {
                shared.put(i, i as u64);
                per.put(i, i as u64);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(shared.get(i), i as u64);
            assert_eq!(per.get(i), i as u64);
        }
    }
}
