//! Scripts over monitors: the paper's third host substrate, §IV.
//!
//! "A monitor-based supervisor would most easily implement immediate
//! initiation and termination. No translation rules are given, as they
//! would be similar to those for Ada and CSP." This module supplies the
//! rules the paper leaves implicit: a per-script [`MonitorSupervisor`]
//! monitor holds the `ready`/`done` arrays; enrollment claims a ready
//! role (waiting out the previous performance — successive activations),
//! runs the role body on the enrolling thread, and marks it done; the
//! last role to finish resets the arrays for the next performance. A
//! single `ready`/`done` array pair can hold only one performance, so
//! this substrate serializes performances by construction; overlapping
//! activations are a capability of the native sharded engine only.
//!
//! Inter-role data movement uses the monitor toolbox ([`Mailbox`],
//! [`crate::BoundedBuffer`]); [`mailbox_broadcast`] is Figure 12 end to
//! end on this substrate.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::{Monitor, PerMailbox};

#[derive(Debug)]
struct SupState {
    /// role → free to claim in the current performance.
    ready: HashMap<String, bool>,
    /// role → finished in the current performance.
    done: HashMap<String, bool>,
    performance: u64,
    completed: u64,
}

impl SupState {
    fn all_done(&self) -> bool {
        self.done.values().all(|d| *d)
    }
}

/// A monitor-based script supervisor: immediate initiation, immediate
/// termination, successive activations.
///
/// # Example
///
/// ```
/// use script_monitor::MonitorSupervisor;
/// use std::sync::Arc;
///
/// let sup = Arc::new(MonitorSupervisor::new(["ping", "pong"]));
/// let s2 = Arc::clone(&sup);
/// let t = std::thread::spawn(move || s2.enroll("pong", |_perf| 2));
/// let a = sup.enroll("ping", |_perf| 1);
/// assert_eq!(a + t.join().unwrap(), 3);
/// ```
pub struct MonitorSupervisor {
    state: Monitor<SupState>,
    roles: Vec<String>,
}

impl fmt::Debug for MonitorSupervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorSupervisor")
            .field("roles", &self.roles)
            .finish()
    }
}

impl MonitorSupervisor {
    /// Creates a supervisor for the given roles.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicate role list.
    pub fn new<I, S>(roles: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let roles: Vec<String> = roles.into_iter().map(Into::into).collect();
        assert!(!roles.is_empty(), "a script needs at least one role");
        let mut ready = HashMap::new();
        let mut done = HashMap::new();
        for r in &roles {
            assert!(
                ready.insert(r.clone(), true).is_none(),
                "duplicate role {r}"
            );
            done.insert(r.clone(), false);
        }
        Self {
            state: Monitor::new(SupState {
                ready,
                done,
                performance: 0,
                completed: 0,
            }),
            roles,
        }
    }

    /// The declared roles.
    pub fn roles(&self) -> &[String] {
        &self.roles
    }

    /// Performances fully completed so far.
    pub fn completed_performances(&self) -> u64 {
        self.state.peek(|s| s.completed)
    }

    /// Enrolls in `role`: waits until the role is free (the previous
    /// performance's occupant has finished *and* that performance has
    /// been fully wound down if this role already ran in it), runs
    /// `body` with the performance number, marks the role done, and —
    /// immediate termination — returns at once. The last role to finish
    /// resets the arrays, admitting the next performance.
    ///
    /// # Panics
    ///
    /// Panics if `role` was not declared.
    pub fn enroll<R>(&self, role: &str, body: impl FnOnce(u64) -> R) -> R {
        assert!(
            self.roles.iter().any(|r| r == role),
            "role {role} not declared"
        );
        let perf = self.state.wait_until(
            |s| s.ready[role],
            |s| {
                s.ready.insert(role.to_string(), false);
                s.performance
            },
        );
        let out = body(perf);
        self.state.with(|s| {
            s.done.insert(role.to_string(), true);
            if s.all_done() {
                for v in s.ready.values_mut() {
                    *v = true;
                }
                for v in s.done.values_mut() {
                    *v = false;
                }
                s.performance += 1;
                s.completed += 1;
            }
        });
        out
    }

    /// [`MonitorSupervisor::enroll`] with a deadline on the wait-to-claim
    /// phase; returns `None` on timeout.
    pub fn enroll_timeout<R>(
        &self,
        role: &str,
        timeout: Duration,
        body: impl FnOnce(u64) -> R,
    ) -> Option<R> {
        assert!(
            self.roles.iter().any(|r| r == role),
            "role {role} not declared"
        );
        let perf = self.state.wait_until_timeout(
            |s| s.ready[role],
            timeout,
            |s| {
                s.ready.insert(role.to_string(), false);
                s.performance
            },
        )?;
        let out = body(perf);
        self.state.with(|s| {
            s.done.insert(role.to_string(), true);
            if s.all_done() {
                for v in s.ready.values_mut() {
                    *v = true;
                }
                for v in s.done.values_mut() {
                    *v = false;
                }
                s.performance += 1;
                s.completed += 1;
            }
        });
        Some(out)
    }
}

/// Figure 12 end to end: the mailbox broadcast script on the monitor
/// substrate. Runs `n` recipients and one sender (on the calling
/// thread's scope), each enrolled through a [`MonitorSupervisor`];
/// returns the received values.
pub fn mailbox_broadcast<M: Send + Clone + 'static>(n: usize, value: M) -> Vec<M> {
    let mut roles = vec!["sender".to_string()];
    roles.extend((0..n).map(|i| format!("recipient[{i}]")));
    let sup = Arc::new(MonitorSupervisor::new(roles));
    let boxes = Arc::new(PerMailbox::<M>::new(n));
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..n {
            let sup = Arc::clone(&sup);
            let boxes = Arc::clone(&boxes);
            handles.push(
                s.spawn(move || sup.enroll(&format!("recipient[{i}]"), |_perf| boxes.get(i))),
            );
        }
        let sv = value.clone();
        sup.enroll("sender", move |_perf| {
            for i in 0..n {
                boxes.put(i, sv.clone());
            }
        });
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_roles_one_performance() {
        let sup = Arc::new(MonitorSupervisor::new(["a", "b"]));
        let s2 = Arc::clone(&sup);
        let t = std::thread::spawn(move || s2.enroll("b", |perf| perf));
        let pa = sup.enroll("a", |perf| perf);
        let pb = t.join().unwrap();
        assert_eq!(pa, 0);
        assert_eq!(pb, 0);
        assert_eq!(sup.completed_performances(), 1);
    }

    #[test]
    fn successive_activations_hold() {
        let sup = Arc::new(MonitorSupervisor::new(["solo"]));
        for expected in 0..5 {
            let perf = sup.enroll("solo", |p| p);
            assert_eq!(perf, expected);
        }
        assert_eq!(sup.completed_performances(), 5);
    }

    #[test]
    fn occupied_role_waits_for_full_performance() {
        // Two processes race for one of two roles; the second claimant
        // of "fast" must observe performance 1, and only after "slow"
        // finished performance 0.
        let sup = Arc::new(MonitorSupervisor::new(["fast", "slow"]));
        std::thread::scope(|s| {
            let s1 = Arc::clone(&sup);
            let first = s.spawn(move || s1.enroll("fast", |p| p));
            assert_eq!(first.join().unwrap(), 0);
            // Re-claim "fast": performance 0 is not complete ("slow"
            // still unfinished), so this must time out.
            assert_eq!(
                sup.enroll_timeout("fast", Duration::from_millis(50), |p| p),
                None
            );
            let s2 = Arc::clone(&sup);
            let slow = s.spawn(move || s2.enroll("slow", |p| p));
            assert_eq!(slow.join().unwrap(), 0);
            // Now performance 1 admits a fresh "fast".
            assert_eq!(sup.enroll("fast", |p| p), 1);
        });
    }

    #[test]
    fn figure_12_broadcast_delivers() {
        let got = mailbox_broadcast(5, 42u64);
        assert_eq!(got, vec![42; 5]);
    }

    #[test]
    fn figure_12_broadcast_strings() {
        let got = mailbox_broadcast(3, "x".to_string());
        assert_eq!(got, vec!["x".to_string(); 3]);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn unknown_role_panics() {
        let sup = MonitorSupervisor::new(["a"]);
        sup.enroll("ghost", |_| ());
    }

    #[test]
    #[should_panic(expected = "duplicate role")]
    fn duplicate_roles_rejected() {
        let _ = MonitorSupervisor::new(["a", "a"]);
    }

    #[test]
    fn many_performances_many_threads() {
        let sup = Arc::new(MonitorSupervisor::new(["p", "q"]));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let sup_p = Arc::clone(&sup);
                s.spawn(move || {
                    for _ in 0..10 {
                        sup_p.enroll("p", |p| p);
                    }
                });
                let sup_q = Arc::clone(&sup);
                s.spawn(move || {
                    for _ in 0..10 {
                        sup_q.enroll("q", |p| p);
                    }
                });
            }
        });
        assert_eq!(sup.completed_performances(), 20);
    }
}
