//! Hoare-style monitors with automatic condition signalling.
//!
//! This crate is the shared-memory host substrate from Section IV of
//! *Script: A Communication Abstraction Mechanism* (Francez & Hailpern,
//! PODC 1983). The paper's monitor-based script examples rely on a
//! `WAIT UNTIL <predicate>` operation inside a monitor; [`Monitor`]
//! provides exactly that on top of a mutex and a condition variable with
//! *automatic signalling*: every exit from the monitor re-evaluates the
//! predicates of all waiters.
//!
//! The crate also provides the two data abstractions the paper builds from
//! monitors:
//!
//! * [`Mailbox`] — the one-slot full/empty buffer of Figure 12,
//! * [`BoundedBuffer`] — an n-slot FIFO used for buffering regimes,
//! * [`SharedMailboxes`] — a *single* monitor housing many mailboxes,
//!   exhibiting the serialization the paper warns about, in contrast to a
//!   monitor-per-mailbox layout ([`PerMailbox`]),
//! * [`MonitorSupervisor`] — the paper's monitor-based script supervisor
//!   (§IV): immediate initiation/termination with successive
//!   activations, plus [`mailbox_broadcast`], Figure 12 end to end.
//!
//! # Example
//!
//! ```
//! use script_monitor::Monitor;
//!
//! let m = Monitor::new(0_u32);
//! m.with(|n| *n += 1);
//! let doubled = m.wait_until(|n| *n > 0, |n| *n * 2);
//! assert_eq!(doubled, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bounded;
mod mailbox;
mod monitor;
mod supervisor;

pub use bounded::BoundedBuffer;
pub use mailbox::{Mailbox, PerMailbox, SharedMailboxes};
pub use monitor::Monitor;
pub use supervisor::{mailbox_broadcast, MonitorSupervisor};
