//! The core monitor primitive.

use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A monitor guarding a piece of state with automatic condition signalling.
///
/// A monitor combines mutual exclusion with condition synchronization: a
/// thread *enters* the monitor ([`Monitor::with`]) to operate on the state,
/// or *waits* inside it until a predicate over the state holds
/// ([`Monitor::wait_until`]).
///
/// Signalling is automatic (sometimes called an *automatic signal* or
/// *implicit signal* monitor): whenever a thread leaves the monitor after a
/// mutating entry, all waiters are woken and re-evaluate their predicates.
/// This matches the `WAIT UNTIL` construct used by the paper's Figure 12
/// mailbox monitor and trades a little wake-up traffic for freedom from
/// missed-signal bugs.
///
/// # Example
///
/// ```
/// use script_monitor::Monitor;
/// use std::sync::Arc;
///
/// let account = Arc::new(Monitor::new(0_i64));
/// let depositor = {
///     let account = Arc::clone(&account);
///     std::thread::spawn(move || account.with(|balance| *balance += 100))
/// };
/// // Wait until the deposit lands, then withdraw.
/// account.wait_until(|b| *b >= 100, |b| *b -= 100);
/// depositor.join().unwrap();
/// assert_eq!(account.with(|b| *b), 0);
/// ```
pub struct Monitor<T> {
    state: Mutex<T>,
    cond: Condvar,
}

impl<T> Monitor<T> {
    /// Creates a monitor guarding `init`.
    pub fn new(init: T) -> Self {
        Self {
            state: Mutex::new(init),
            cond: Condvar::new(),
        }
    }

    /// Enters the monitor and runs `f` on the state.
    ///
    /// All waiters are woken on exit so that they can re-evaluate their
    /// predicates (automatic signalling).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.state.lock();
        let out = f(&mut guard);
        drop(guard);
        self.cond.notify_all();
        out
    }

    /// Enters the monitor read-only, without signalling waiters.
    ///
    /// Use this for pure inspection; it avoids spurious wake-ups.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.state.lock();
        f(&guard)
    }

    /// Blocks until `pred` holds, then runs `f` on the state.
    ///
    /// The predicate is evaluated under the monitor lock; the wait is free
    /// of lost-wakeup races. On exit all waiters are woken, since `f` may
    /// have established some other waiter's condition.
    pub fn wait_until<R>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let mut guard = self.state.lock();
        while !pred(&guard) {
            self.cond.wait(&mut guard);
        }
        let out = f(&mut guard);
        drop(guard);
        self.cond.notify_all();
        out
    }

    /// Like [`Monitor::wait_until`], but gives up after `timeout`.
    ///
    /// Returns `None` if the predicate did not hold within the timeout; the
    /// state is left untouched in that case.
    pub fn wait_until_timeout<R>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        timeout: Duration,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.state.lock();
        while !pred(&guard) {
            if self.cond.wait_until(&mut guard, deadline).timed_out() && !pred(&guard) {
                return None;
            }
        }
        let out = f(&mut guard);
        drop(guard);
        self.cond.notify_all();
        Some(out)
    }

    /// Consumes the monitor, returning the inner state.
    pub fn into_inner(self) -> T {
        self.state.into_inner()
    }
}

impl<T: Default> Default for Monitor<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Monitor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state.try_lock() {
            Some(guard) => f.debug_struct("Monitor").field("state", &*guard).finish(),
            None => f
                .debug_struct("Monitor")
                .field("state", &"<locked>")
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn with_runs_and_returns() {
        let m = Monitor::new(41);
        assert_eq!(
            m.with(|n| {
                *n += 1;
                *n
            }),
            42
        );
    }

    #[test]
    fn peek_does_not_mutate() {
        let m = Monitor::new(vec![1, 2, 3]);
        let len = m.peek(|v| v.len());
        assert_eq!(len, 3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_until_immediately_satisfied() {
        let m = Monitor::new(5);
        let out = m.wait_until(|n| *n == 5, |n| *n * 10);
        assert_eq!(out, 50);
    }

    #[test]
    fn wait_until_blocks_until_condition() {
        let m = Arc::new(Monitor::new(0));
        let waiter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.wait_until(|n| *n == 3, |n| *n))
        };
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(5));
            m.with(|n| *n += 1);
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn wait_until_timeout_expires() {
        let m = Monitor::new(0);
        let out = m.wait_until_timeout(|n| *n == 1, Duration::from_millis(20), |n| *n);
        assert_eq!(out, None);
    }

    #[test]
    fn wait_until_timeout_succeeds() {
        let m = Arc::new(Monitor::new(0));
        let setter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                m.with(|n| *n = 7);
            })
        };
        let out = m.wait_until_timeout(|n| *n == 7, Duration::from_secs(5), |n| *n);
        setter.join().unwrap();
        assert_eq!(out, Some(7));
    }

    #[test]
    fn many_waiters_all_wake() {
        let m = Arc::new(Monitor::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.wait_until(|b| *b, |_| ()))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        m.with(|b| *b = true);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn default_constructs_default_state() {
        let m: Monitor<u8> = Monitor::default();
        assert_eq!(m.peek(|n| *n), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Monitor::new(1);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn chained_conditions_propagate() {
        // A -> B -> C: each waiter establishes the next condition on exit.
        let m = Arc::new(Monitor::new(0));
        let mut handles = Vec::new();
        for stage in 1..=3 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                m.wait_until(|n| *n == stage, |n| *n += 1)
            }));
        }
        std::thread::sleep(Duration::from_millis(5));
        m.with(|n| *n = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.peek(|n| *n), 4);
    }
}
