//! A bounded FIFO buffer monitor, the classic "buffering regime".

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use crate::Monitor;

/// A bounded FIFO buffer protected by a single monitor.
///
/// The paper motivates scripts with "various buffering regimes" as
/// frequently used communication patterns; the bounded buffer is the
/// canonical one. `push` waits while the buffer is full, `pop` waits while
/// it is empty.
///
/// # Example
///
/// ```
/// use script_monitor::BoundedBuffer;
///
/// let buf = BoundedBuffer::new(2);
/// buf.push(1);
/// buf.push(2);
/// assert_eq!(buf.pop(), 1);
/// assert_eq!(buf.pop(), 2);
/// ```
pub struct BoundedBuffer<T> {
    inner: Monitor<VecDeque<T>>,
    capacity: usize,
}

impl<T> BoundedBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity rendezvous is provided
    /// by the `script-chan` crate instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded buffer capacity must be positive");
        Self {
            inner: Monitor::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The maximum number of items the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.inner.peek(|q| q.len())
    }

    /// Returns `true` if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `item`, waiting while the buffer is full.
    pub fn push(&self, item: T) {
        let cap = self.capacity;
        self.inner
            .wait_until(|q| q.len() < cap, move |q| q.push_back(item));
    }

    /// Removes the oldest item, waiting while the buffer is empty.
    pub fn pop(&self) -> T {
        self.inner.wait_until(
            |q| !q.is_empty(),
            |q| q.pop_front().expect("predicate guaranteed non-empty"),
        )
    }

    /// Like [`BoundedBuffer::push`] but gives up after `timeout`,
    /// returning the item on failure.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), T> {
        let cap = self.capacity;
        let mut item = Some(item);
        let pushed = self.inner.wait_until_timeout(
            |q| q.len() < cap,
            timeout,
            |q| q.push_back(item.take().expect("consumed once")),
        );
        match pushed {
            Some(()) => Ok(()),
            None => Err(item.take().expect("still owned on timeout")),
        }
    }

    /// Like [`BoundedBuffer::pop`] but gives up after `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        self.inner.wait_until_timeout(
            |q| !q.is_empty(),
            timeout,
            |q| q.pop_front().expect("predicate guaranteed non-empty"),
        )
    }
}

impl<T> fmt::Debug for BoundedBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedBuffer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedBuffer::<u8>::new(0);
    }

    #[test]
    fn fifo_order_preserved() {
        let buf = BoundedBuffer::new(8);
        for i in 0..8 {
            buf.push(i);
        }
        for i in 0..8 {
            assert_eq!(buf.pop(), i);
        }
    }

    #[test]
    fn push_blocks_when_full() {
        let buf = Arc::new(BoundedBuffer::new(1));
        buf.push(1);
        let pusher = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || buf.push(2))
        };
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(buf.pop(), 1);
        pusher.join().unwrap();
        assert_eq!(buf.pop(), 2);
    }

    #[test]
    fn timeouts_report_failure() {
        let buf = BoundedBuffer::new(1);
        buf.push('x');
        assert_eq!(buf.push_timeout('y', Duration::from_millis(5)), Err('y'));
        assert_eq!(buf.pop(), 'x');
        assert_eq!(buf.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn producer_consumer_stress() {
        const N: u64 = 2_000;
        let buf = Arc::new(BoundedBuffer::new(4));
        let producer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..N {
                    buf.push(i);
                }
            })
        };
        let mut sum = 0;
        for _ in 0..N {
            sum += buf.pop();
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_reported() {
        let buf: BoundedBuffer<()> = BoundedBuffer::new(3);
        assert_eq!(buf.capacity(), 3);
        assert_eq!(buf.len(), 0);
    }
}
