//! A bounded-buffer relay script — one of the paper's "various buffering
//! regimes".
//!
//! Three roles: a producer streams items, a buffering role holds at most
//! `capacity` of them, and a consumer drains them in order. The buffer
//! role's body is a classic CSP-style guarded loop mixing an input
//! guard, an *output* guard, and a termination watch.

use std::collections::VecDeque;

use script_core::{
    Event, Guard, Initiation, Instance, RoleHandle, RoleId, Script, ScriptError, Termination,
};

/// A packaged bounded-buffer relay.
#[derive(Debug)]
pub struct BufferedRelay<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The producer: its data parameter is the items to stream.
    pub producer: RoleHandle<M, Vec<M>, ()>,
    /// The buffering role: returns how many items it relayed.
    pub keeper: RoleHandle<M, (), usize>,
    /// The consumer: parameter is how many items to take; returns them.
    pub consumer: RoleHandle<M, usize, Vec<M>>,
    capacity: usize,
}

impl<M> BufferedRelay<M> {
    /// The buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

fn producer_id() -> RoleId {
    RoleId::new("producer")
}
fn keeper_id() -> RoleId {
    RoleId::new("keeper")
}
fn consumer_id() -> RoleId {
    RoleId::new("consumer")
}

/// Builds a bounded-buffer relay with the given capacity.
///
/// # Panics
///
/// Panics if `capacity` is zero (use direct rendezvous instead).
pub fn buffered_relay<M: Send + Clone + 'static>(capacity: usize) -> BufferedRelay<M> {
    assert!(capacity > 0, "capacity must be positive");
    let mut b = Script::<M>::builder("buffered_relay");
    let producer = b.role("producer", |ctx, items: Vec<M>| {
        for item in items {
            ctx.send(&keeper_id(), item)?;
        }
        Ok(())
    });
    let keeper = b.role("keeper", move |ctx, ()| {
        let mut held: VecDeque<M> = VecDeque::with_capacity(capacity);
        let mut relayed = 0;
        loop {
            let producer_done = ctx.terminated(&producer_id());
            let consumer_done = ctx.terminated(&consumer_id());
            if held.is_empty() && producer_done {
                return Ok(relayed);
            }
            if consumer_done && !held.is_empty() {
                // Consumer left items behind; drop them and report.
                return Ok(relayed);
            }
            let front = held.front().cloned();
            let event = ctx.select(vec![
                Guard::recv_from(producer_id()).when(held.len() < capacity && !producer_done),
                match front {
                    Some(item) => Guard::send(consumer_id(), item).when(!consumer_done),
                    None => Guard::recv_any().when(false),
                },
                Guard::watch(producer_id()).when(!producer_done),
                Guard::watch(consumer_id()).when(!consumer_done),
            ])?;
            match event {
                Event::Received { msg, .. } => held.push_back(msg),
                Event::Sent { .. } => {
                    held.pop_front();
                    relayed += 1;
                }
                Event::Terminated { .. } => {}
            }
        }
    });
    let consumer = b.role("consumer", |ctx, count: usize| {
        let mut taken = Vec::with_capacity(count);
        for _ in 0..count {
            taken.push(ctx.recv_from(&keeper_id())?);
        }
        Ok(taken)
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    BufferedRelay {
        script: b.build().expect("buffered relay spec is valid"),
        producer,
        keeper,
        consumer,
        capacity,
    }
}

/// Streams `items` through the relay; returns what the consumer took.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(
    relay: &BufferedRelay<M>,
    items: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    let instance = relay.script.instance();
    run_on(&instance, relay, items)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    relay: &BufferedRelay<M>,
    items: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    let count = items.len();
    std::thread::scope(|s| {
        let p = {
            let producer = &relay.producer;
            s.spawn(move || instance.enroll(producer, items))
        };
        let k = {
            let keeper = &relay.keeper;
            s.spawn(move || instance.enroll(keeper, ()))
        };
        let taken = instance.enroll(&relay.consumer, count);
        p.join().expect("producer thread does not panic")?;
        k.join().expect("keeper thread does not panic")?;
        taken
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = buffered_relay::<u8>(0);
    }

    #[test]
    fn relays_in_order() {
        let relay = buffered_relay::<u64>(3);
        let items: Vec<u64> = (0..20).collect();
        let got = run(&relay, items.clone()).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn capacity_one_still_fifo() {
        let relay = buffered_relay::<u64>(1);
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(run(&relay, items.clone()).unwrap(), items);
    }

    #[test]
    fn empty_stream() {
        let relay = buffered_relay::<u64>(2);
        assert_eq!(run(&relay, vec![]).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn large_capacity_decouples() {
        let relay = buffered_relay::<u64>(64);
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(run(&relay, items.clone()).unwrap(), items);
    }

    #[test]
    fn reusable_across_performances() {
        let relay = buffered_relay::<u64>(2);
        let inst = relay.script.instance();
        for round in 0..3u64 {
            let items = vec![round, round + 1, round + 2];
            assert_eq!(run_on(&inst, &relay, items.clone()).unwrap(), items);
        }
        assert_eq!(inst.completed_performances(), 3);
    }
}
