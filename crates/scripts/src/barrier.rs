//! A barrier script: global synchronization of `n` parties.
//!
//! Delayed initiation plus delayed termination makes the script body
//! trivial — the enrollment machinery *is* the barrier. This is the
//! purest demonstration of the paper's observation that delayed
//! initiation "enforces global synchronization between large groups of
//! processes (as a possible extension to CSP's synchronized
//! communication between two processes)".

use script_core::{FamilyHandle, Initiation, Instance, Script, ScriptError, Termination};

/// A packaged barrier script.
#[derive(Debug)]
pub struct Barrier {
    /// The underlying script.
    pub script: Script<()>,
    /// The party family; enrolling blocks until all `n` parties arrive.
    pub party: FamilyHandle<(), (), ()>,
    n: usize,
}

impl Barrier {
    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.n
    }
}

/// Builds an `n`-party barrier.
pub fn barrier(n: usize) -> Barrier {
    let mut b = Script::<()>::builder("barrier");
    let party = b.family("party", n, |_ctx, ()| Ok(()));
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Barrier {
        script: b.build().expect("barrier spec is valid"),
        party,
        n,
    }
}

/// Blocks until all `n` parties of `instance` have enrolled as
/// `party[index]`.
///
/// # Errors
///
/// Any [`ScriptError`] from enrollment (timeout, abort, close).
pub fn wait(instance: &Instance<()>, barrier: &Barrier, index: usize) -> Result<(), ScriptError> {
    instance.enroll_member(&barrier.party, index, ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn all_parties_released_together() {
        const N: usize = 6;
        let b = barrier(N);
        let inst = b.script.instance();
        let before = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for i in 0..N {
                let inst = inst.clone();
                let b = &b;
                let before = Arc::clone(&before);
                s.spawn(move || {
                    before.fetch_add(1, Ordering::SeqCst);
                    wait(&inst, b, i).unwrap();
                    // At release, every party must have arrived.
                    assert_eq!(before.load(Ordering::SeqCst), N);
                });
            }
        });
    }

    #[test]
    fn missing_party_blocks() {
        let b = barrier(2);
        let inst = b.script.instance();
        let err = inst
            .enroll_member_with(
                &b.party,
                0,
                (),
                script_core::Enrollment::new().timeout(Duration::from_millis(50)),
            )
            .unwrap_err();
        assert_eq!(err, ScriptError::Timeout);
    }

    #[test]
    fn barrier_is_reusable() {
        const N: usize = 3;
        let b = barrier(N);
        let inst = b.script.instance();
        std::thread::scope(|s| {
            for i in 0..N {
                let inst = inst.clone();
                let b = &b;
                s.spawn(move || {
                    for _ in 0..4 {
                        wait(&inst, b, i).unwrap();
                    }
                });
            }
        });
        assert_eq!(inst.completed_performances(), 4);
    }
}
