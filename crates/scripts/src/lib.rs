//! A library of reusable scripts built on `script-core`.
//!
//! The paper motivates scripts with "frequently used patterns, for
//! example various buffering regimes" and develops broadcast and a
//! replicated lock manager as running examples. This crate packages
//! those patterns — and the other classics — as ready-made scripts:
//!
//! * [`broadcast`] — the paper's §II/§III strategies: synchronized star
//!   (Figure 3, ordered or nondeterministic), pipeline (Figure 4),
//!   spanning-tree wave, and the monitor-mailbox variant (Figure 12);
//! * [`barrier`] — global synchronization as a script;
//! * [`gather`] / [`scatter`] — many-to-one and one-to-many data motion;
//! * [`reduce`] — tree reduction with a combining operator;
//! * [`ring`] — token circulation;
//! * [`buffer`] — a bounded-buffer relay (a "buffering regime") with the
//!   buffering role written as CSP-style guarded selection;
//! * [`commit`] — two-phase commit, a multi-party synchronization
//!   pattern hidden entirely inside a script;
//! * [`allgather`] — ring all-gather (everyone ends with everyone's
//!   contribution);
//! * [`election`] — Chang–Roberts leader election on a ring;
//! * [`philosophers`] — dining philosophers, forks as serving roles;
//! * [`gossip`] — epidemic rumor-mongering over a seeded partial peer
//!   view, as an open-ended role family with continuous enrollment and
//!   departure (`r.terminated`).
//!
//! # Example
//!
//! ```
//! use script_lib::broadcast;
//!
//! let b = broadcast::star::<u64>(4, broadcast::Order::Sequential);
//! let received = broadcast::run(&b, 42).unwrap();
//! assert_eq!(received, vec![42; 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod allgather;
pub mod barrier;
pub mod broadcast;
pub mod buffer;
pub mod commit;
pub mod election;
pub mod gather;
pub mod gossip;
pub mod philosophers;
pub mod reduce;
pub mod ring;
pub mod scatter;
