//! A gather script: many workers deliver one value each to a collector.
//!
//! Two flavors: a fixed-size worker family, and an open-ended family
//! (paper §V) where the number of contributors is decided per
//! performance.

use script_core::{
    FamilyHandle, Initiation, Instance, RoleHandle, RoleId, Script, ScriptError, Termination,
};

/// A packaged gather script with a fixed worker family.
#[derive(Debug)]
pub struct Gather<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The collector role; its result is every worker's contribution in
    /// worker-index order.
    pub collector: RoleHandle<M, (), Vec<M>>,
    /// The worker family; the data parameter is the contribution.
    pub worker: FamilyHandle<M, M, ()>,
    n: usize,
}

impl<M> Gather<M> {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.n
    }
}

fn collector_id() -> RoleId {
    RoleId::new("collector")
}

/// Builds a gather over `n` workers. Contributions are returned in
/// worker order regardless of arrival order.
pub fn gather<M: Send + Clone + 'static>(n: usize) -> Gather<M> {
    let mut b = Script::<M>::builder("gather");
    let collector = b.role("collector", move |ctx, ()| {
        let mut slots: Vec<Option<M>> = vec![None; n];
        for _ in 0..n {
            let (from, value) = ctx.recv_any()?;
            let idx = from.index().expect("workers are indexed");
            slots[idx] = Some(value);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every worker contributed"))
            .collect())
    });
    let worker = b.family("worker", n, |ctx, value: M| {
        ctx.send(&collector_id(), value)?;
        Ok(())
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Gather {
        script: b.build().expect("gather spec is valid"),
        collector,
        worker,
        n,
    }
}

/// A packaged open-ended gather: the collector takes contributions until
/// every enrolled worker has reported and the cast has been sealed.
#[derive(Debug)]
pub struct OpenGather<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The collector: parameter is the number of contributions to await.
    pub collector: RoleHandle<M, usize, Vec<M>>,
    /// The open worker family.
    pub worker: FamilyHandle<M, M, ()>,
}

/// Builds an open-ended gather (immediate initiation; seal the cast or
/// rely on the collector's expected count).
pub fn open_gather<M: Send + Clone + 'static>(max: Option<usize>) -> OpenGather<M> {
    let mut b = Script::<M>::builder("open_gather");
    let collector = b.role("collector", |ctx, expected: usize| {
        let mut values = Vec::with_capacity(expected);
        while values.len() < expected {
            let (_, value) = ctx.recv_any()?;
            values.push(value);
        }
        Ok(values)
    });
    let worker = b.open_family("worker", max, |ctx, value: M| {
        ctx.send(&collector_id(), value)?;
        Ok(())
    });
    b.initiation(Initiation::Immediate)
        .termination(Termination::Immediate);
    OpenGather {
        script: b.build().expect("open gather spec is valid"),
        collector,
        worker,
    }
}

/// Runs one fixed-gather performance with the given contributions.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(
    g: &Gather<M>,
    values: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    assert_eq!(values.len(), g.n, "one contribution per worker");
    let instance = g.script.instance();
    run_on(&instance, g, values)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    g: &Gather<M>,
    values: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    std::thread::scope(|s| {
        let workers: Vec<_> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                let worker = &g.worker;
                s.spawn(move || instance.enroll_member(worker, i, v))
            })
            .collect();
        let out = instance.enroll(&g.collector, ());
        for w in workers {
            w.join().expect("worker threads do not panic")?;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_worker_order() {
        let g = gather::<u64>(4);
        let got = run(&g, vec![40, 10, 30, 20]).unwrap();
        assert_eq!(got, vec![40, 10, 30, 20]);
    }

    #[test]
    fn single_worker() {
        let g = gather::<String>(1);
        let got = run(&g, vec!["only".into()]).unwrap();
        assert_eq!(got, vec!["only".to_string()]);
    }

    #[test]
    fn open_gather_takes_any_count() {
        let og = open_gather::<u64>(None);
        let inst = og.script.instance();
        std::thread::scope(|s| {
            let c = {
                let inst = inst.clone();
                let collector = og.collector.clone();
                s.spawn(move || inst.enroll(&collector, 5))
            };
            for v in 0..5u64 {
                let inst = &inst;
                let worker = &og.worker;
                s.spawn(move || inst.enroll_auto(worker, v));
            }
            let mut got = c.join().unwrap().unwrap();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
        inst.seal_cast();
    }

    #[test]
    fn gather_reusable_across_performances() {
        let g = gather::<u64>(2);
        let inst = g.script.instance();
        for round in 0..3 {
            let got = run_on(&inst, &g, vec![round, round + 1]).unwrap();
            assert_eq!(got, vec![round, round + 1]);
        }
        assert_eq!(inst.completed_performances(), 3);
    }
}
