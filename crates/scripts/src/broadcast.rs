//! Broadcast scripts: the paper's running example, in every strategy it
//! discusses.
//!
//! "The body of the script could hide the various broadcast strategies:
//! a star-like pattern in which the transmitter communicates directly
//! with each recipient, either in some pre-specified order, or
//! non-deterministically; a spanning tree, generating a wave of
//! transmissions; others." (§II)

use std::sync::Arc;

use script_core::{
    Event, FamilyHandle, Guard, Initiation, Instance, RetryPolicy, RoleHandle, RoleId, Script,
    ScriptError, Termination,
};
use script_monitor::PerMailbox;

/// The order in which a star transmitter serves its recipients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// `recipient[0], recipient[1], …` — the paper's Figure 3.
    Sequential,
    /// Whichever recipient is ready, chosen fairly — the paper's
    /// "non-deterministically" option and its Figure 6 CSP rendering
    /// with output guards.
    NonDeterministic,
}

/// A packaged broadcast script: the script plus its typed role handles.
#[derive(Debug)]
pub struct Broadcast<M> {
    /// The underlying script (one sender, `n` recipients).
    pub script: Script<M>,
    /// The sender role: data parameter is the value to broadcast.
    pub sender: RoleHandle<M, M, ()>,
    /// The recipient family: result parameter is the received value.
    pub recipient: FamilyHandle<M, (), M>,
    n: usize,
}

impl<M> Broadcast<M> {
    /// Number of recipients.
    pub fn fan_out(&self) -> usize {
        self.n
    }
}

fn sender_id() -> RoleId {
    RoleId::new("sender")
}

/// The synchronized star broadcast of Figure 3: delayed initiation and
/// termination, transmitter sends directly to every recipient.
///
/// Because initiation is delayed, "the sender is never blocked while
/// waiting for a recipient": the whole cast is present before the first
/// send.
pub fn star<M: Send + Clone + 'static>(n: usize, order: Order) -> Broadcast<M> {
    let mut b = Script::<M>::builder("star_broadcast");
    let sender = match order {
        Order::Sequential => b.role("sender", move |ctx, data: M| {
            for i in 0..n {
                ctx.send(&RoleId::indexed("recipient", i), data.clone())?;
            }
            Ok(())
        }),
        Order::NonDeterministic => b.role("sender", move |ctx, data: M| {
            let mut sent = vec![false; n];
            while sent.iter().any(|s| !s) {
                let guards: Vec<Guard<M>> = sent
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !**s)
                    .map(|(k, _)| Guard::send(RoleId::indexed("recipient", k), data.clone()))
                    .collect();
                match ctx.select(guards)? {
                    Event::Sent { to, .. } => {
                        sent[to.index().expect("recipient is indexed")] = true;
                    }
                    _ => unreachable!("only send guards offered"),
                }
            }
            Ok(())
        }),
    };
    let recipient = b.family("recipient", n, |ctx, ()| ctx.recv_from(&sender_id()));
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Broadcast {
        script: b.build().expect("star broadcast spec is valid"),
        sender,
        recipient,
        n,
    }
}

/// The pipeline broadcast of Figure 4: immediate initiation and
/// termination; each recipient passes the value to its successor and
/// leaves. Processes "spend much less time in the script" than in the
/// synchronized star, at the cost of possibly blocking mid-chain when a
/// successor has not yet enrolled.
pub fn pipeline<M: Send + Clone + 'static>(n: usize) -> Broadcast<M> {
    let mut b = Script::<M>::builder("pipeline_broadcast");
    let sender = b.role("sender", |ctx, data: M| {
        ctx.send(&RoleId::indexed("recipient", 0), data)?;
        Ok(())
    });
    let recipient = b.family("recipient", n, move |ctx, ()| {
        let me = ctx.role().index().expect("recipient is indexed");
        let value = if me == 0 {
            ctx.recv_from(&sender_id())?
        } else {
            ctx.recv_from(&RoleId::indexed("recipient", me - 1))?
        };
        if me + 1 < n {
            ctx.send(&RoleId::indexed("recipient", me + 1), value.clone())?;
        }
        Ok(value)
    });
    b.initiation(Initiation::Immediate)
        .termination(Termination::Immediate);
    Broadcast {
        script: b.build().expect("pipeline broadcast spec is valid"),
        sender,
        recipient,
        n,
    }
}

/// A binary spanning-tree broadcast: the sender feeds the root; each
/// recipient forwards to its (up to two) children, "generating a wave of
/// transmissions". Latency grows with the tree depth, O(log n), instead
/// of the star's O(n) sequential sends.
pub fn tree<M: Send + Clone + 'static>(n: usize) -> Broadcast<M> {
    let mut b = Script::<M>::builder("tree_broadcast");
    let sender = b.role("sender", |ctx, data: M| {
        ctx.send(&RoleId::indexed("recipient", 0), data)?;
        Ok(())
    });
    let recipient = b.family("recipient", n, move |ctx, ()| {
        let me = ctx.role().index().expect("recipient is indexed");
        let value = if me == 0 {
            ctx.recv_from(&sender_id())?
        } else {
            ctx.recv_from(&RoleId::indexed("recipient", (me - 1) / 2))?
        };
        for child in [2 * me + 1, 2 * me + 2] {
            if child < n {
                ctx.send(&RoleId::indexed("recipient", child), value.clone())?;
            }
        }
        Ok(value)
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Broadcast {
        script: b.build().expect("tree broadcast spec is valid"),
        sender,
        recipient,
        n,
    }
}

/// The mailbox broadcast of Figure 12: one monitor per recipient mailbox
/// packaged inside the script ("the script providing the top-level
/// packaging"). The critical role set includes everyone, which —
/// exactly as the paper notes — "prevents the sender from waiting on a
/// full mailbox".
pub fn mailbox<M: Send + Clone + 'static>(n: usize) -> Broadcast<M> {
    let boxes: Arc<PerMailbox<M>> = Arc::new(PerMailbox::new(n));
    let mut b = Script::<M>::builder("mailbox_broadcast");
    let tx_boxes = Arc::clone(&boxes);
    let sender = b.role("sender", move |_ctx, data: M| {
        for r in 0..n {
            tx_boxes.put(r, data.clone());
        }
        Ok(())
    });
    let recipient = b.family("recipient", n, move |ctx, ()| {
        let me = ctx.role().index().expect("recipient is indexed");
        Ok(boxes.get(me))
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Broadcast {
        script: b.build().expect("mailbox broadcast spec is valid"),
        sender,
        recipient,
        n,
    }
}

/// Runs one performance of any [`Broadcast`] script on scoped threads:
/// enrolls the sender with `value` and one recipient per family member,
/// returning the values received (indexed by recipient).
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(b: &Broadcast<M>, value: M) -> Result<Vec<M>, ScriptError> {
    let instance = b.script.instance();
    run_on(&instance, b, value)
}

/// Like [`run`], but reuses an existing instance. Calls may be made
/// back to back (successive performances) or concurrently from several
/// threads — each concurrent call runs as an overlapping performance on
/// its own engine shard. Concurrent callers should note that role
/// assignment across simultaneous casts is first-come-first-served:
/// with distinct payloads, which sender a given recipient thread pairs
/// with is not specified.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    b: &Broadcast<M>,
    value: M,
) -> Result<Vec<M>, ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..b.n)
            .map(|i| {
                let recipient = &b.recipient;
                s.spawn(move || instance.enroll_member(recipient, i, ()))
            })
            .collect();
        let send_result = instance.enroll(&b.sender, value);
        let mut received = Vec::with_capacity(b.n);
        for h in handles {
            received.push(h.join().expect("recipient threads do not panic")?);
        }
        send_result?;
        Ok(received)
    })
}

/// Like [`run_on`], but retries the whole performance under `policy`
/// when it fails transiently (timeout, abort, or stall — e.g. under an
/// injected fault plan with a watchdog armed). Each attempt is a fresh
/// performance of the same instance.
///
/// Because this runner enrolls the *entire* cast on every attempt, a
/// [`ScriptError::RoleUnavailable`] — e.g. a recipient left waiting
/// after a dropped message let the sender finish — is also retryable
/// here, unlike in single-enrollment retries where the missing role may
/// never be filled.
///
/// # Errors
///
/// The last retryable error once attempts are exhausted, or the first
/// permanent error.
pub fn run_with_retry<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    b: &Broadcast<M>,
    value: M,
    policy: &RetryPolicy,
) -> Result<Vec<M>, ScriptError> {
    policy.run_if(
        |e: &ScriptError| e.is_transient() || matches!(e, ScriptError::RoleUnavailable(_)),
        |_attempt| run_on(instance, b, value.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(b: &Broadcast<u64>) {
        let got = run(b, 7).unwrap();
        assert_eq!(got, vec![7; b.fan_out()]);
    }

    #[test]
    fn star_sequential_delivers() {
        check(&star(5, Order::Sequential));
    }

    #[test]
    fn star_nondeterministic_delivers() {
        check(&star(5, Order::NonDeterministic));
    }

    #[test]
    fn pipeline_delivers() {
        check(&pipeline(5));
    }

    #[test]
    fn tree_delivers() {
        check(&tree(5));
    }

    #[test]
    fn mailbox_delivers() {
        check(&mailbox(5));
    }

    #[test]
    fn tree_handles_all_shapes() {
        for n in [1, 2, 3, 4, 7, 8, 15, 16, 31] {
            let b = tree(n);
            let got = run(&b, 1u64).unwrap();
            assert_eq!(got, vec![1; n], "n = {n}");
        }
    }

    #[test]
    fn strategies_agree_across_fanouts() {
        for n in [1, 2, 6, 9] {
            for b in [
                star::<u64>(n, Order::Sequential),
                star::<u64>(n, Order::NonDeterministic),
                pipeline::<u64>(n),
                tree::<u64>(n),
                mailbox::<u64>(n),
            ] {
                let got = run(&b, 99).unwrap();
                assert_eq!(got, vec![99; n]);
            }
        }
    }

    #[test]
    fn successive_broadcasts_on_one_instance() {
        let b = star::<u64>(3, Order::Sequential);
        let inst = b.script.instance();
        for v in 0..5 {
            let got = run_on(&inst, &b, v).unwrap();
            assert_eq!(got, vec![v; 3]);
        }
        assert_eq!(inst.completed_performances(), 5);
    }

    #[test]
    fn overlapping_broadcasts_on_one_instance() {
        let b = star::<u64>(3, Order::Sequential);
        let inst = b.script.instance();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| run_on(&inst, &b, 7))).collect();
            for h in handles {
                assert_eq!(h.join().unwrap().unwrap(), vec![7; 3]);
            }
        });
        assert_eq!(inst.completed_performances(), 4);
    }
}
