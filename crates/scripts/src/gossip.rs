//! Epidemic (rumor-mongering) broadcast over a partial random peer
//! view, as an *open-ended role family* script.
//!
//! The fixed-cast strategies in [`broadcast`](crate::broadcast) assume
//! the whole cast is known up front. This module covers the opposite
//! regime — the paper's §V "open-ended role families" — where members
//! enroll while dissemination is already under way and leave the moment
//! their part is done (immediate initiation *and* termination), and
//! partners that departed are detected with the paper's `r.terminated`
//! device (watch guards) instead of a global barrier.
//!
//! Each member pushes the rumor to a small **partial view** of the
//! membership instead of to everyone. Views come from [`PeerView`], a
//! deterministic sampler: a pure function of `(seed, round, member,
//! membership)`, so a performance replays bit-for-bit under a fixed
//! seed — the same property the chaos layer's fault decisions have.
//! Every view contains the member's *ring successor* (the next live
//! index, cyclically), which keeps the union of one round's views
//! connected; the remaining slots are a seeded shuffle of the other
//! members. Connectivity plus synchronous rendezvous gives the
//! dissemination guarantee the churn harness asserts: every live member
//! receives the rumor exactly once, no matter in which order members
//! enroll and depart.

use std::collections::BTreeSet;

use script_core::{
    CriticalSet, Event, FamilyHandle, Guard, Initiation, Instance, PerformanceId, RetryPolicy,
    RoleHandle, RoleId, Script, ScriptError, Termination,
};

/// One step of the SplitMix64 sequence: the same generator the engine
/// uses to derive per-performance chaos seeds, so view schedules share
/// the replay properties of fault schedules.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream key for one `(seed, round, member)` triple.
fn stream_key(seed: u64, round: u64, me: u64) -> u64 {
    let mut s = seed;
    let a = splitmix(&mut s).wrapping_add(round);
    let mut s = a;
    splitmix(&mut s).wrapping_add(me)
}

/// The sentinel "member" index the seeder samples with (it is not a
/// family member, so no real index may collide with it).
const SEEDER_KEY: u64 = u64::MAX;

/// A deterministic partial-view sampler for epidemic dissemination.
///
/// [`PeerView::view`] is a pure function of `(seed, round, member,
/// membership)`: the same inputs always yield the identical view, with
/// no self-loops, no duplicates, and at most `fanout` targets. The
/// first target is always the member's ring successor in the (sorted,
/// deduplicated) membership, which makes the union of all members'
/// views in a round a connected graph over the membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerView {
    seed: u64,
    fanout: usize,
}

impl PeerView {
    /// Creates a sampler. `fanout` is the maximum targets per view and
    /// must be at least 1 (the ring edge).
    pub fn new(seed: u64, fanout: usize) -> Self {
        assert!(fanout >= 1, "epidemic fanout must be at least 1");
        Self { seed, fanout }
    }

    /// The sampler's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The maximum number of targets per view.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Sorted, deduplicated membership without `me`.
    fn others(me: Option<usize>, members: &[usize]) -> Vec<usize> {
        let set: BTreeSet<usize> = members.iter().copied().collect();
        set.into_iter().filter(|&x| Some(x) != me).collect()
    }

    /// Takes up to `k` targets from `pool` in seeded-shuffle order
    /// (partial Fisher–Yates on the stream keyed by `key`).
    fn draw(key: u64, mut pool: Vec<usize>, k: usize) -> Vec<usize> {
        let mut state = key;
        let take = k.min(pool.len());
        for i in 0..take {
            let j = i + (splitmix(&mut state) as usize) % (pool.len() - i);
            pool.swap(i, j);
        }
        pool.truncate(take);
        pool
    }

    /// The partial view of `me` for `round` over `members`: up to
    /// [`fanout`](Self::fanout) distinct targets, never `me` itself,
    /// always including `me`'s ring successor (the next larger member
    /// index, wrapping around). Pure in all arguments.
    pub fn view(&self, round: u64, me: usize, members: &[usize]) -> Vec<usize> {
        let others = Self::others(Some(me), members);
        let Some(&successor) = others.iter().find(|&&x| x > me).or_else(|| others.first()) else {
            return Vec::new();
        };
        let pool: Vec<usize> = others.into_iter().filter(|&x| x != successor).collect();
        let key = stream_key(self.seed, round, me as u64);
        let mut view = vec![successor];
        view.extend(Self::draw(key, pool, self.fanout - 1));
        view
    }

    /// The seeder's initial targets for `round`: up to
    /// [`fanout`](Self::fanout) members, seeded-shuffle order. The
    /// seeder is outside the ring, so no successor is forced.
    pub fn seed_targets(&self, round: u64, members: &[usize]) -> Vec<usize> {
        let pool = Self::others(None, members);
        let key = stream_key(self.seed, round, SEEDER_KEY);
        Self::draw(key, pool, self.fanout)
    }

    /// Pure simulation of one performance's dissemination over the
    /// `round`-keyed views: the number of synchronous push rounds until
    /// every member holds the rumor (the seeder's initial push counts
    /// as round 1). This is the "rounds-to-full-dissemination" metric
    /// benchmarked in EXPERIMENTS.md E21; it involves no engine, so it
    /// doubles as an oracle for the sampler's connectivity guarantee.
    pub fn dissemination_rounds(&self, round: u64, members: &[usize]) -> u64 {
        let all: BTreeSet<usize> = members.iter().copied().collect();
        if all.is_empty() {
            return 0;
        }
        let mut infected: BTreeSet<usize> = self.seed_targets(round, members).into_iter().collect();
        let mut rounds = 1;
        while infected.len() < all.len() {
            let frontier: Vec<usize> = infected
                .iter()
                .flat_map(|&i| self.view(round, i, members))
                .filter(|t| !infected.contains(t))
                .collect();
            assert!(
                !frontier.is_empty(),
                "ring edges keep the view graph connected; dissemination cannot wedge"
            );
            infected.extend(frontier);
            rounds += 1;
        }
        rounds
    }
}

/// One member's receipt from a gossip performance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// The performance the member served in.
    pub performance: PerformanceId,
    /// The member index the engine assigned at admission.
    pub member: usize,
    /// The rumor, exactly once.
    pub rumor: M,
}

/// A packaged epidemic broadcast script: the script plus typed handles.
#[derive(Debug)]
pub struct Gossip<M> {
    /// The underlying script (one seeder, an open member family).
    pub script: Script<M>,
    /// The seeder role: data parameter is the rumor to spread.
    pub seeder: RoleHandle<M, M, ()>,
    /// The open member family; each member returns its [`Delivery`].
    pub member: FamilyHandle<M, (), Delivery<M>>,
    n: usize,
    view: PeerView,
}

impl<M> Gossip<M> {
    /// Full membership per performance.
    pub fn fan_out(&self) -> usize {
        self.n
    }

    /// The deterministic view sampler the roles use.
    pub fn view(&self) -> PeerView {
        self.view
    }
}

fn member_id(i: usize) -> RoleId {
    RoleId::indexed("member", i)
}

/// Pushes `rumor` to every target in `pending`, treating departed
/// targets as satisfied (`r.terminated` via watch guards). When
/// `absorb` is true a recv-any guard stays open so crossing pushes
/// rendezvous as redundant deliveries instead of deadlocking.
fn push_all<M: Send + Clone + 'static>(
    ctx: &mut script_core::RoleCtx<M>,
    rumor: &M,
    mut pending: Vec<usize>,
    absorb: bool,
) -> Result<(), ScriptError> {
    while !pending.is_empty() {
        let mut guards: Vec<Guard<M>> = Vec::with_capacity(2 * pending.len() + 1);
        for &t in &pending {
            guards.push(Guard::send(member_id(t), rumor.clone()));
            guards.push(Guard::watch(member_id(t)));
        }
        if absorb {
            guards.push(Guard::recv_any());
        }
        match ctx.select(guards)? {
            Event::Sent { to, .. } => {
                let i = to.index().expect("targets are member indices");
                pending.retain(|&t| t != i);
            }
            Event::Terminated { role, .. } => {
                // The paper's r.terminated: the target departed (it
                // already holds the rumor) or was frozen out of the
                // cast; either way it is no longer owed a push.
                let i = role.index().expect("targets are member indices");
                pending.retain(|&t| t != i);
            }
            Event::Received { .. } => {
                // A redundant copy from a concurrent pusher; epidemic
                // protocols absorb duplicates by design.
            }
        }
    }
    Ok(())
}

/// Builds an epidemic broadcast for `n` members with the given fanout
/// and view seed.
///
/// The member family is *open-ended* (`max = n`) with immediate
/// initiation: members enroll with [`Instance::enroll_auto`] while the
/// performance is already running, and the cast freezes — via the
/// critical set `seeder + at least n members` — only once the house is
/// full. Termination is immediate, so each member departs as soon as
/// its own pushes are delivered, while the rest of the cast is still
/// disseminating; later pushes to it observe `r.terminated` and move
/// on.
pub fn gossip<M: Send + Clone + 'static>(n: usize, fanout: usize, seed: u64) -> Gossip<M> {
    let view = PeerView::new(seed, fanout);
    let mut b = Script::<M>::builder("epidemic_gossip");
    let seeder = b.role("seeder", move |ctx, rumor: M| {
        let members: Vec<usize> = (0..n).collect();
        let pending = view.seed_targets(ctx.performance().0, &members);
        push_all(ctx, &rumor, pending, false)
    });
    let member = b.open_family("member", Some(n), move |ctx, ()| {
        let me = ctx.role().index().expect("open-family member is indexed");
        let members: Vec<usize> = (0..n).collect();
        // Rumor first: from the seeder or any forwarding peer.
        let (_, rumor) = ctx.recv_any()?;
        let pending = view.view(ctx.performance().0, me, &members);
        push_all(ctx, &rumor, pending, true)?;
        Ok(Delivery {
            performance: ctx.performance(),
            member: me,
            rumor,
        })
    });
    b.initiation(Initiation::Immediate)
        .termination(Termination::Immediate)
        .critical_set(
            CriticalSet::new()
                .role("seeder")
                .family_at_least("member", n),
        );
    Gossip {
        script: b.build().expect("gossip spec is valid"),
        seeder,
        member,
        n,
        view,
    }
}

/// Runs one performance on a fresh instance: enrolls `n` members and
/// the seeder, returning the rumors received, indexed by member.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(g: &Gossip<M>, rumor: M) -> Result<Vec<M>, ScriptError> {
    let instance = g.script.instance();
    run_on(&instance, g, rumor)
}

/// Like [`run`], but reuses an existing instance; back-to-back calls
/// are successive performances.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    g: &Gossip<M>,
    rumor: M,
) -> Result<Vec<M>, ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..g.n)
            .map(|_| {
                let member = &g.member;
                s.spawn(move || instance.enroll_auto(member, ()))
            })
            .collect();
        let seed_result = instance.enroll(&g.seeder, rumor);
        let mut deliveries = Vec::with_capacity(g.n);
        for h in handles {
            deliveries.push(h.join().expect("member threads do not panic")?);
        }
        seed_result?;
        deliveries.sort_by_key(|d| d.member);
        Ok(deliveries.into_iter().map(|d| d.rumor).collect())
    })
}

/// Like [`run_on`], but retries the whole performance under `policy`
/// on transient failures (and on [`ScriptError::RoleUnavailable`],
/// which a chaos-crashed member surfaces to its partners).
///
/// # Errors
///
/// The last retryable error once attempts are exhausted, or the first
/// permanent error.
pub fn run_with_retry<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    g: &Gossip<M>,
    rumor: M,
    policy: &RetryPolicy,
) -> Result<Vec<M>, ScriptError> {
    policy.run_if(
        |e: &ScriptError| e.is_transient() || matches!(e, ScriptError::RoleUnavailable(_)),
        |_attempt| run_on(instance, g, rumor.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_to_every_member() {
        for n in [1, 2, 5, 8, 16] {
            let g = gossip::<u64>(n, 3, 0xFEED);
            let got = run(&g, 41).unwrap();
            assert_eq!(got, vec![41; n], "n = {n}");
        }
    }

    #[test]
    fn fanout_one_is_a_pure_ring() {
        let g = gossip::<u64>(6, 1, 9);
        assert_eq!(run(&g, 7).unwrap(), vec![7; 6]);
    }

    #[test]
    fn successive_performances_on_one_instance() {
        let g = gossip::<u64>(4, 2, 3);
        let inst = g.script.instance();
        for v in 0..5 {
            assert_eq!(run_on(&inst, &g, v).unwrap(), vec![v; 4]);
        }
        assert_eq!(inst.completed_performances(), 5);
    }

    #[test]
    fn views_are_pure_functions_of_inputs() {
        let pv = PeerView::new(12345, 3);
        let members: Vec<usize> = (0..16).collect();
        for round in 0..4 {
            for me in 0..16 {
                assert_eq!(
                    pv.view(round, me, &members),
                    pv.view(round, me, &members),
                    "view(round={round}, me={me}) must be deterministic"
                );
            }
        }
        assert_eq!(pv.seed_targets(0, &members), pv.seed_targets(0, &members));
    }

    #[test]
    fn view_contains_ring_successor() {
        let pv = PeerView::new(7, 2);
        let members: Vec<usize> = (0..8).collect();
        for me in 0..8 {
            let v = pv.view(0, me, &members);
            assert!(v.contains(&((me + 1) % 8)), "me={me} view={v:?}");
        }
    }

    #[test]
    fn dissemination_rounds_reach_everyone() {
        let members: Vec<usize> = (0..64).collect();
        for seed in [1u64, 2, 3] {
            let pv = PeerView::new(seed, 3);
            let r = pv.dissemination_rounds(0, &members);
            assert!((1..=64).contains(&r), "seed {seed}: {r} rounds");
        }
    }

    #[test]
    fn trivial_views() {
        let pv = PeerView::new(1, 4);
        assert!(pv.view(0, 0, &[0]).is_empty());
        assert!(pv.view(0, 3, &[3]).is_empty());
        assert_eq!(pv.dissemination_rounds(0, &[]), 0);
        assert_eq!(pv.seed_targets(0, &[5]), vec![5]);
    }
}
