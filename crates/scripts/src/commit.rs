//! A two-phase commit script: the kind of "larger scale synchronization
//! (involving more than just a pair of processes)" the paper says a
//! communication abstraction should hide.
//!
//! One coordinator, `n` participants. Phase 1: the coordinator solicits
//! votes; phase 2: it broadcasts the decision (commit iff every vote was
//! yes). The entire protocol — message order, vote collection, decision
//! distribution — is hidden inside the script; enrollers just supply a
//! vote and receive the decision.

use script_core::{
    FamilyHandle, Initiation, Instance, RetryPolicy, RoleHandle, RoleId, Script, ScriptError,
    Termination,
};

/// Protocol messages (internal to the script body, public for
/// inspection/translation use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitMsg {
    /// Phase 1 solicitation.
    VoteRequest,
    /// A participant's vote.
    Vote(bool),
    /// Phase 2 decision.
    Decision(bool),
}

/// The packaged two-phase-commit script.
#[derive(Debug)]
pub struct TwoPhaseCommit {
    /// The underlying script.
    pub script: Script<CommitMsg>,
    /// The coordinator: returns the decision.
    pub coordinator: RoleHandle<CommitMsg, (), bool>,
    /// The participant family: data parameter is the vote; result is the
    /// decision.
    pub participant: FamilyHandle<CommitMsg, bool, bool>,
    n: usize,
}

impl TwoPhaseCommit {
    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }
}

/// Builds a two-phase commit over `n` participants.
pub fn two_phase_commit(n: usize) -> TwoPhaseCommit {
    let mut b = Script::<CommitMsg>::builder("two_phase_commit");
    let coordinator = b.role("coordinator", move |ctx, ()| {
        // Phase 1: solicit and collect votes.
        for i in 0..n {
            ctx.send(&RoleId::indexed("participant", i), CommitMsg::VoteRequest)?;
        }
        let mut all_yes = true;
        for _ in 0..n {
            match ctx.recv_any()? {
                (_, CommitMsg::Vote(v)) => all_yes &= v,
                (from, other) => {
                    return Err(ScriptError::app(format!(
                        "protocol violation from {from}: expected vote, got {other:?}"
                    )))
                }
            }
        }
        // Phase 2: broadcast the decision.
        for i in 0..n {
            ctx.send(
                &RoleId::indexed("participant", i),
                CommitMsg::Decision(all_yes),
            )?;
        }
        Ok(all_yes)
    });
    let participant = b.family("participant", n, |ctx, vote: bool| {
        let coord = RoleId::new("coordinator");
        match ctx.recv_from(&coord)? {
            CommitMsg::VoteRequest => {}
            other => {
                return Err(ScriptError::app(format!(
                    "protocol violation: expected vote request, got {other:?}"
                )))
            }
        }
        ctx.send(&coord, CommitMsg::Vote(vote))?;
        match ctx.recv_from(&coord)? {
            CommitMsg::Decision(d) => Ok(d),
            other => Err(ScriptError::app(format!(
                "protocol violation: expected decision, got {other:?}"
            ))),
        }
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    TwoPhaseCommit {
        script: b.build().expect("two-phase commit spec is valid"),
        coordinator,
        participant,
        n,
    }
}

/// Runs one commit round with the given votes; returns
/// `(coordinator decision, per-participant decisions)`.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run(tpc: &TwoPhaseCommit, votes: Vec<bool>) -> Result<(bool, Vec<bool>), ScriptError> {
    assert_eq!(votes.len(), tpc.n, "one vote per participant");
    let instance = tpc.script.instance();
    run_on(&instance, tpc, votes)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on(
    instance: &Instance<CommitMsg>,
    tpc: &TwoPhaseCommit,
    votes: Vec<bool>,
) -> Result<(bool, Vec<bool>), ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = votes
            .into_iter()
            .enumerate()
            .map(|(i, vote)| {
                let participant = &tpc.participant;
                s.spawn(move || instance.enroll_member(participant, i, vote))
            })
            .collect();
        let decision = instance.enroll(&tpc.coordinator, ())?;
        let mut seen = Vec::with_capacity(tpc.n);
        for h in handles {
            seen.push(h.join().expect("participant threads do not panic")?);
        }
        Ok((decision, seen))
    })
}

/// Like [`run_on`], but retries the whole commit round under `policy`
/// when it fails transiently (timeout, abort, or stall). Each attempt
/// is a fresh performance: two-phase commit is idempotent in this model
/// (the decision is a pure function of the votes), so a lost round can
/// simply be replayed.
///
/// As in [`broadcast::run_with_retry`](crate::broadcast::run_with_retry),
/// the runner enrolls the entire cast each attempt, so
/// [`ScriptError::RoleUnavailable`] caused by a mid-performance fault is
/// also retryable.
///
/// # Errors
///
/// The last retryable error once attempts are exhausted, or the first
/// permanent error.
pub fn run_with_retry(
    instance: &Instance<CommitMsg>,
    tpc: &TwoPhaseCommit,
    votes: Vec<bool>,
    policy: &RetryPolicy,
) -> Result<(bool, Vec<bool>), ScriptError> {
    policy.run_if(
        |e: &ScriptError| e.is_transient() || matches!(e, ScriptError::RoleUnavailable(_)),
        |_attempt| run_on(instance, tpc, votes.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_yes_commits() {
        let tpc = two_phase_commit(4);
        let (decision, seen) = run(&tpc, vec![true; 4]).unwrap();
        assert!(decision);
        assert_eq!(seen, vec![true; 4]);
    }

    #[test]
    fn single_no_aborts() {
        let tpc = two_phase_commit(4);
        let (decision, seen) = run(&tpc, vec![true, true, false, true]).unwrap();
        assert!(!decision);
        assert_eq!(seen, vec![false; 4]);
    }

    #[test]
    fn all_no_aborts() {
        let tpc = two_phase_commit(2);
        let (decision, seen) = run(&tpc, vec![false, false]).unwrap();
        assert!(!decision);
        assert_eq!(seen, vec![false; 2]);
    }

    #[test]
    fn single_participant() {
        let tpc = two_phase_commit(1);
        assert_eq!(run(&tpc, vec![true]).unwrap(), (true, vec![true]));
        assert_eq!(run(&tpc, vec![false]).unwrap(), (false, vec![false]));
    }

    #[test]
    fn decision_is_uniform_across_rounds() {
        let tpc = two_phase_commit(3);
        let inst = tpc.script.instance();
        for votes in [
            vec![true, true, true],
            vec![true, false, true],
            vec![false, false, false],
            vec![true, true, true],
        ] {
            let expected = votes.iter().all(|&v| v);
            let (decision, seen) = run_on(&inst, &tpc, votes).unwrap();
            assert_eq!(decision, expected);
            assert!(seen.iter().all(|&d| d == expected), "uniform decision");
        }
        assert_eq!(inst.completed_performances(), 4);
    }
}
