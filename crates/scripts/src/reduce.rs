//! A tree-reduction script: `n` leaves combine values up a binary tree.
//!
//! The combining operator is supplied per enrollment, so one script
//! declaration serves sums, maxima, concatenations — the script is "as
//! generic as its host programming language allows" (§II).

use script_core::{
    FamilyHandle, Initiation, Instance, RoleHandle, RoleId, Script, ScriptError, Termination,
};

/// A packaged reduction script.
#[derive(Debug)]
pub struct Reduce<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The root role: receives the fully combined value.
    pub root: RoleHandle<M, (), M>,
    /// The node family: each node contributes one leaf value.
    pub node: FamilyHandle<M, M, ()>,
    n: usize,
}

impl<M> Reduce<M> {
    /// Number of contributing nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }
}

/// Builds a binary-tree reduction over `n` nodes with operator `op`.
///
/// Node `i` combines its own value with those of children `2i+1` and
/// `2i+2` (if present) and passes the result to its parent; node 0
/// reports to the root role.
pub fn reduce<M, F>(n: usize, op: F) -> Reduce<M>
where
    M: Send + Clone + 'static,
    F: Fn(M, M) -> M + Send + Sync + Clone + 'static,
{
    let mut b = Script::<M>::builder("tree_reduce");
    let root = b.role("root", |ctx, ()| ctx.recv_from(&RoleId::indexed("node", 0)));
    let node = b.family("node", n, move |ctx, mine: M| {
        let me = ctx.role().index().expect("node is indexed");
        let mut acc = mine;
        for child in [2 * me + 1, 2 * me + 2] {
            if child < n {
                let v = ctx.recv_from(&RoleId::indexed("node", child))?;
                acc = op(acc, v);
            }
        }
        if me == 0 {
            ctx.send(&RoleId::new("root"), acc)?;
        } else {
            ctx.send(&RoleId::indexed("node", (me - 1) / 2), acc)?;
        }
        Ok(())
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Reduce {
        script: b.build().expect("reduce spec is valid"),
        root,
        node,
        n,
    }
}

/// Runs one reduction; returns the combined value.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(r: &Reduce<M>, values: Vec<M>) -> Result<M, ScriptError> {
    assert_eq!(values.len(), r.n, "one value per node");
    let instance = r.script.instance();
    run_on(&instance, r, values)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    r: &Reduce<M>,
    values: Vec<M>,
) -> Result<M, ScriptError> {
    std::thread::scope(|s| {
        let nodes: Vec<_> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                let node = &r.node;
                s.spawn(move || instance.enroll_member(node, i, v))
            })
            .collect();
        let out = instance.enroll(&r.root, ());
        for nh in nodes {
            nh.join().expect("node threads do not panic")?;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_correctly() {
        for n in [1, 2, 3, 7, 10, 16] {
            let r = reduce::<u64, _>(n, |a, b| a + b);
            let values: Vec<u64> = (1..=n as u64).collect();
            let got = run(&r, values).unwrap();
            assert_eq!(got, (n as u64) * (n as u64 + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn max_reduction() {
        let r = reduce::<u64, _>(6, |a, b| a.max(b));
        assert_eq!(run(&r, vec![3, 9, 2, 7, 1, 8]).unwrap(), 9);
    }

    #[test]
    fn non_commutative_operator_has_fixed_shape() {
        // String concatenation: the combine order is deterministic
        // (own value, then left child, then right child).
        let r = reduce::<String, _>(3, |a, b| a + &b);
        let got = run(&r, vec!["a".to_string(), "b".to_string(), "c".to_string()]).unwrap();
        assert_eq!(got, "abc");
    }

    #[test]
    fn reusable_instance() {
        let r = reduce::<u64, _>(4, |a, b| a + b);
        let inst = r.script.instance();
        assert_eq!(run_on(&inst, &r, vec![1, 1, 1, 1]).unwrap(), 4);
        assert_eq!(run_on(&inst, &r, vec![2, 2, 2, 2]).unwrap(), 8);
        assert_eq!(inst.completed_performances(), 2);
    }
}
