//! Dining philosophers as a script: philosophers and forks are all
//! roles, and one dinner is one performance.
//!
//! Each fork role serves its two neighboring philosophers (grant,
//! queue, release) with a guarded selection and stops via the
//! `terminated` query, exactly like the paper's lock managers.
//! Philosophers avoid the classic deadlock by asymmetric acquisition:
//! even seats take the left fork first, odd seats the right.

use script_core::{
    Event, FamilyHandle, Guard, Initiation, Instance, RoleId, Script, ScriptError, Termination,
};

/// Messages between philosophers and forks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkMsg {
    /// A philosopher asks for the fork.
    Request,
    /// The fork is granted to the requester.
    Grant,
    /// The philosopher puts the fork down.
    Release,
}

/// The packaged dinner script.
#[derive(Debug)]
pub struct Dinner {
    /// The underlying script.
    pub script: Script<ForkMsg>,
    /// The philosopher family: parameter is how many times to eat;
    /// result is the number of meals actually eaten.
    pub philosopher: FamilyHandle<ForkMsg, usize, usize>,
    /// The fork family: result is how many grants it issued.
    pub fork: FamilyHandle<ForkMsg, (), usize>,
    n: usize,
}

impl Dinner {
    /// Number of seats (philosophers = forks).
    pub fn seats(&self) -> usize {
        self.n
    }
}

fn phil(i: usize) -> RoleId {
    RoleId::indexed("philosopher", i)
}
fn fork_id(i: usize) -> RoleId {
    RoleId::indexed("fork", i)
}

/// Builds a dinner for `n` philosophers (and `n` forks).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn dinner(n: usize) -> Dinner {
    assert!(n >= 2, "a table needs at least two philosophers");
    let mut b = Script::<ForkMsg>::builder("dining_philosophers");

    // Fork i sits between philosopher i (its "left user") and
    // philosopher (i+1) % n (its "right user").
    let fork = b.family("fork", n, move |ctx, ()| {
        let me = ctx.role().index().expect("fork is indexed");
        let left_user = phil(me);
        let right_user = phil((me + 1) % n);
        let mut holder: Option<RoleId> = None;
        let mut waiting: Option<RoleId> = None;
        let mut grants = 0;
        loop {
            let l_done = ctx.terminated(&left_user);
            let r_done = ctx.terminated(&right_user);
            if l_done && r_done {
                return Ok(grants);
            }
            let event = ctx.select(vec![
                Guard::recv_from(left_user.clone()).when(!l_done),
                Guard::recv_from(right_user.clone()).when(!r_done),
                Guard::watch(left_user.clone()).when(!l_done),
                Guard::watch(right_user.clone()).when(!r_done),
            ])?;
            match event {
                Event::Received { from, msg, .. } => match msg {
                    ForkMsg::Request => {
                        if holder.is_none() {
                            holder = Some(from.clone());
                            grants += 1;
                            ctx.send(&from, ForkMsg::Grant)?;
                        } else {
                            debug_assert!(waiting.is_none(), "only two users per fork");
                            waiting = Some(from);
                        }
                    }
                    ForkMsg::Release => {
                        debug_assert_eq!(holder.as_ref(), Some(&from));
                        holder = None;
                        if let Some(w) = waiting.take() {
                            holder = Some(w.clone());
                            grants += 1;
                            ctx.send(&w, ForkMsg::Grant)?;
                        }
                    }
                    ForkMsg::Grant => {
                        return Err(ScriptError::app("philosophers do not grant forks"))
                    }
                },
                Event::Terminated { .. } => {}
                Event::Sent { .. } => unreachable!("no send guards"),
            }
        }
    });

    let philosopher = b.family("philosopher", n, move |ctx, rounds: usize| {
        let me = ctx.role().index().expect("philosopher is indexed");
        let left = fork_id(me);
        let right = fork_id((me + n - 1) % n);
        // Asymmetric acquisition order prevents the circular wait.
        let (first, second) = if me % 2 == 0 {
            (left.clone(), right.clone())
        } else {
            (right.clone(), left.clone())
        };
        let mut meals = 0;
        for _ in 0..rounds {
            ctx.send(&first, ForkMsg::Request)?;
            match ctx.recv_from(&first)? {
                ForkMsg::Grant => {}
                other => return Err(ScriptError::app(format!("expected grant, got {other:?}"))),
            }
            ctx.send(&second, ForkMsg::Request)?;
            match ctx.recv_from(&second)? {
                ForkMsg::Grant => {}
                other => return Err(ScriptError::app(format!("expected grant, got {other:?}"))),
            }
            meals += 1; // eat
            ctx.send(&second, ForkMsg::Release)?;
            ctx.send(&first, ForkMsg::Release)?;
        }
        Ok(meals)
    });

    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Dinner {
        script: b.build().expect("dinner spec is valid"),
        philosopher,
        fork,
        n,
    }
}

/// Runs one dinner of `rounds` meals per philosopher; returns
/// `(meals per philosopher, grants per fork)`.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run(d: &Dinner, rounds: usize) -> Result<(Vec<usize>, Vec<usize>), ScriptError> {
    let instance = d.script.instance();
    run_on(&instance, d, rounds)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on(
    instance: &Instance<ForkMsg>,
    d: &Dinner,
    rounds: usize,
) -> Result<(Vec<usize>, Vec<usize>), ScriptError> {
    std::thread::scope(|s| {
        let forks: Vec<_> = (0..d.n)
            .map(|i| {
                let fork = &d.fork;
                s.spawn(move || instance.enroll_member(fork, i, ()))
            })
            .collect();
        let phils: Vec<_> = (0..d.n)
            .map(|i| {
                let philosopher = &d.philosopher;
                s.spawn(move || instance.enroll_member(philosopher, i, rounds))
            })
            .collect();
        let mut meals = Vec::with_capacity(d.n);
        for p in phils {
            meals.push(p.join().expect("philosopher threads do not panic")?);
        }
        let mut grants = Vec::with_capacity(d.n);
        for f in forks {
            grants.push(f.join().expect("fork threads do not panic")?);
        }
        Ok((meals, grants))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_eats_every_round() {
        let d = dinner(5);
        let (meals, grants) = run(&d, 3).unwrap();
        assert_eq!(meals, vec![3; 5]);
        // Each meal takes two grants; each fork serves two philosophers.
        assert_eq!(grants.iter().sum::<usize>(), 2 * 3 * 5);
    }

    #[test]
    fn two_philosophers_share_two_forks() {
        let d = dinner(2);
        let (meals, grants) = run(&d, 4).unwrap();
        assert_eq!(meals, vec![4, 4]);
        assert_eq!(grants, vec![8, 8]);
    }

    #[test]
    fn no_deadlock_under_many_rounds() {
        // The classic symmetric protocol deadlocks almost immediately;
        // the asymmetric one must survive a long dinner. The engine's
        // own adaptive watchdog guards the assertion: a deadlocked
        // performance stops producing rendezvous, the watchdog declares
        // it stalled and aborts it, and `run_on` surfaces the abort as
        // an error instead of hanging the test.
        let d = dinner(5);
        let inst = d.script.instance();
        inst.set_watchdog_policy(script_core::WatchdogPolicy::adaptive());
        let (meals, _) = run_on(&inst, &d, 25).expect("dinner must not stall");
        assert_eq!(meals, vec![25; 5]);
        assert_eq!(inst.completed_performances(), 1);
    }

    #[test]
    fn successive_dinners() {
        let d = dinner(3);
        let inst = d.script.instance();
        for _ in 0..3 {
            let (meals, _) = run_on(&inst, &d, 2).unwrap();
            assert_eq!(meals, vec![2; 3]);
        }
        assert_eq!(inst.completed_performances(), 3);
    }
}
