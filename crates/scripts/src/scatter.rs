//! A scatter script: a distributor hands a distinct value to each member.

use script_core::{
    FamilyHandle, Initiation, Instance, RoleHandle, RoleId, Script, ScriptError, Termination,
};

/// A packaged scatter script.
#[derive(Debug)]
pub struct Scatter<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The distributor: its data parameter is one value per member.
    pub distributor: RoleHandle<M, Vec<M>, ()>,
    /// The member family: each member's result is its own value.
    pub member: FamilyHandle<M, (), M>,
    n: usize,
}

impl<M> Scatter<M> {
    /// Number of members.
    pub fn members(&self) -> usize {
        self.n
    }
}

/// Builds a scatter over `n` members.
pub fn scatter<M: Send + Clone + 'static>(n: usize) -> Scatter<M> {
    let mut b = Script::<M>::builder("scatter");
    let distributor = b.role("distributor", move |ctx, values: Vec<M>| {
        if values.len() != n {
            return Err(ScriptError::app(format!(
                "scatter needs exactly {n} values, got {}",
                values.len()
            )));
        }
        for (i, v) in values.into_iter().enumerate() {
            ctx.send(&RoleId::indexed("member", i), v)?;
        }
        Ok(())
    });
    let member = b.family("member", n, |ctx, ()| {
        ctx.recv_from(&RoleId::new("distributor"))
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Scatter {
        script: b.build().expect("scatter spec is valid"),
        distributor,
        member,
        n,
    }
}

/// Runs one scatter performance; returns each member's received value.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(
    sc: &Scatter<M>,
    values: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    let instance = sc.script.instance();
    run_on(&instance, sc, values)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    sc: &Scatter<M>,
    values: Vec<M>,
) -> Result<Vec<M>, ScriptError> {
    std::thread::scope(|s| {
        let members: Vec<_> = (0..sc.n)
            .map(|i| {
                let member = &sc.member;
                s.spawn(move || instance.enroll_member(member, i, ()))
            })
            .collect();
        let dist = instance.enroll(&sc.distributor, values);
        let mut received = Vec::with_capacity(sc.n);
        for m in members {
            received.push(m.join().expect("member threads do not panic")?);
        }
        dist?;
        Ok(received)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_member_gets_its_value() {
        let sc = scatter::<u64>(4);
        let got = run(&sc, vec![10, 11, 12, 13]).unwrap();
        assert_eq!(got, vec![10, 11, 12, 13]);
    }

    #[test]
    fn wrong_arity_rejected() {
        let sc = scatter::<u64>(3);
        // The distributor fails with an application error; members then
        // observe its termination.
        let err = run(&sc, vec![1]).unwrap_err();
        assert!(matches!(
            err,
            ScriptError::App(_) | ScriptError::RoleUnavailable(_)
        ));
    }

    #[test]
    fn scatter_then_scatter_again() {
        let sc = scatter::<&'static str>(2);
        let inst = sc.script.instance();
        assert_eq!(run_on(&inst, &sc, vec!["a", "b"]).unwrap(), vec!["a", "b"]);
        assert_eq!(run_on(&inst, &sc, vec!["c", "d"]).unwrap(), vec!["c", "d"]);
    }
}
