//! A token-ring script: a value circulates through every station a fixed
//! number of laps, each station applying a transformation.

use script_core::{FamilyHandle, Initiation, Instance, RoleId, Script, ScriptError, Termination};

/// A packaged token-ring script.
#[derive(Debug)]
pub struct Ring<M> {
    /// The underlying script.
    pub script: Script<M>,
    /// The station family: station 0 injects the token (its parameter)
    /// and every station's result is the last token value it saw.
    pub station: FamilyHandle<M, Option<M>, M>,
    n: usize,
    laps: usize,
}

impl<M> Ring<M> {
    /// Number of stations.
    pub fn stations(&self) -> usize {
        self.n
    }

    /// Number of laps the token makes.
    pub fn laps(&self) -> usize {
        self.laps
    }
}

/// Builds a ring of `n` stations circulating the token `laps` times,
/// applying `step` at every hop.
///
/// Station 0 must be enrolled with `Some(initial_token)`; the others
/// with `None`.
pub fn ring<M, F>(n: usize, laps: usize, step: F) -> Ring<M>
where
    M: Send + Clone + 'static,
    F: Fn(M) -> M + Send + Sync + 'static,
{
    assert!(n >= 2, "a ring needs at least two stations");
    assert!(laps >= 1, "the token must circulate at least once");
    let mut b = Script::<M>::builder("token_ring");
    let station = b.family("station", n, move |ctx, injected: Option<M>| {
        let me = ctx.role().index().expect("station is indexed");
        let prev = RoleId::indexed("station", (me + n - 1) % n);
        let next = RoleId::indexed("station", (me + 1) % n);
        let mut last;
        if me == 0 {
            let mut token = injected
                .ok_or_else(|| ScriptError::app("station 0 must inject the initial token"))?;
            for _ in 0..laps {
                ctx.send(&next, step(token.clone()))?;
                token = ctx.recv_from(&prev)?;
            }
            last = token;
        } else {
            if injected.is_some() {
                return Err(ScriptError::app("only station 0 may inject a token"));
            }
            last = ctx.recv_from(&prev)?;
            for lap in 0..laps {
                ctx.send(&next, step(last.clone()))?;
                if lap + 1 < laps {
                    last = ctx.recv_from(&prev)?;
                }
            }
        }
        Ok(last)
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Ring {
        script: b.build().expect("ring spec is valid"),
        station,
        n,
        laps,
    }
}

/// Runs one performance; returns each station's last-seen token value.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(r: &Ring<M>, token: M) -> Result<Vec<M>, ScriptError> {
    let instance = r.script.instance();
    run_on(&instance, r, token)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<M>,
    r: &Ring<M>,
    token: M,
) -> Result<Vec<M>, ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..r.n)
            .map(|i| {
                let station = &r.station;
                let injected = if i == 0 { Some(token.clone()) } else { None };
                s.spawn(move || instance.enroll_member(station, i, injected))
            })
            .collect();
        let mut out = Vec::with_capacity(r.n);
        for h in handles {
            out.push(h.join().expect("station threads do not panic")?);
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_n_times_laps_hops() {
        // Each hop adds one; after `laps` full circuits the token has
        // grown by n * laps. Station 0's final value is the token after
        // the last full lap.
        let n = 4;
        let laps = 3;
        let r = ring::<u64, _>(n, laps, |t| t + 1);
        let out = run(&r, 0).unwrap();
        assert_eq!(out[0], (n * laps) as u64);
    }

    #[test]
    fn intermediate_stations_see_monotone_tokens() {
        let r = ring::<u64, _>(3, 2, |t| t + 1);
        let out = run(&r, 0).unwrap();
        // Station i's last token on the final lap: stations see strictly
        // increasing values around the ring.
        assert!(out[1] < out[2] || out[2] < out[0] || out[0] < out[1]);
    }

    #[test]
    fn injecting_from_wrong_station_fails() {
        let r = ring::<u64, _>(2, 1, |t| t);
        let inst = r.script.instance();
        let result = std::thread::scope(|s| {
            let h = {
                let inst = inst.clone();
                let station = r.station.clone();
                s.spawn(move || inst.enroll_member(&station, 1, Some(5)))
            };
            let zero = inst.enroll_member(&r.station, 0, Some(0));
            (zero, h.join().unwrap())
        });
        assert!(result.1.is_err(), "station 1 must not inject");
        // Station 0 either completed its hop or saw the partner die.
        let _ = result.0;
    }

    #[test]
    fn two_station_single_lap() {
        let r = ring::<String, _>(2, 1, |t| t + "!");
        let out = run(&r, "go".to_string()).unwrap();
        assert_eq!(out[1], "go!");
        assert_eq!(out[0], "go!!");
    }
}
