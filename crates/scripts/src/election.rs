//! Chang–Roberts leader election on a unidirectional ring, as a script.
//!
//! Every station injects its (unique) identifier; identifiers travel
//! clockwise, surviving only if larger than the station they pass; the
//! identifier that makes it all the way around crowns its owner, who
//! circulates an `Elected` announcement once. The whole election —
//! candidate forwarding, dropping, announcement — is hidden in the
//! script body; enrollers supply an id and get the leader's id back.
//!
//! The station body drives a send/receive *selection* (a CSP-style
//! alternative with an output guard), since on a synchronous ring
//! everyone naively sending first would deadlock.

use std::collections::VecDeque;

use script_core::{
    Event, FamilyHandle, Guard, Initiation, Instance, RoleId, Script, ScriptError, Termination,
};

/// Ring messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectMsg {
    /// A candidate identifier still in the running.
    Candidate(u64),
    /// The election result, circulated once by the winner.
    Elected(u64),
}

/// The packaged election script.
#[derive(Debug)]
pub struct Election {
    /// The underlying script.
    pub script: Script<ElectMsg>,
    /// The station family: data parameter is the station's unique id;
    /// the result is the elected leader's id.
    pub station: FamilyHandle<ElectMsg, u64, u64>,
    n: usize,
}

impl Election {
    /// Number of stations on the ring.
    pub fn stations(&self) -> usize {
        self.n
    }
}

/// Builds a Chang–Roberts election over `n` ring stations.
///
/// # Panics
///
/// Panics if `n < 2` (a ring needs at least two stations).
pub fn election(n: usize) -> Election {
    assert!(n >= 2, "a ring needs at least two stations");
    let mut b = Script::<ElectMsg>::builder("chang_roberts");
    let station = b.family("station", n, move |ctx, my_id: u64| {
        let me = ctx.role().index().expect("station is indexed");
        let next = RoleId::indexed("station", (me + 1) % n);
        let prev = RoleId::indexed("station", (me + n - 1) % n);
        let mut outbox: VecDeque<ElectMsg> = VecDeque::new();
        outbox.push_back(ElectMsg::Candidate(my_id));
        let mut leader: Option<u64> = None;
        let mut done_receiving = false;
        loop {
            if done_receiving && outbox.is_empty() {
                return Ok(leader.expect("ring elected a leader"));
            }
            let event = ctx.select(vec![
                match outbox.front() {
                    Some(msg) => Guard::send(next.clone(), msg.clone()),
                    None => Guard::recv_any().when(false),
                },
                Guard::recv_from(prev.clone()).when(!done_receiving),
            ])?;
            match event {
                Event::Sent { .. } => {
                    outbox.pop_front();
                }
                Event::Received { msg, .. } => match msg {
                    ElectMsg::Candidate(c) if c == my_id => {
                        // My id survived the full circle: I am the leader.
                        leader = Some(my_id);
                        outbox.push_back(ElectMsg::Elected(my_id));
                    }
                    ElectMsg::Candidate(c) if c > my_id => {
                        outbox.push_back(ElectMsg::Candidate(c));
                    }
                    ElectMsg::Candidate(_) => {
                        // Smaller id: absorbed.
                    }
                    ElectMsg::Elected(l) if l == my_id => {
                        // My announcement returned: everyone knows.
                        done_receiving = true;
                    }
                    ElectMsg::Elected(l) => {
                        leader = Some(l);
                        outbox.push_back(ElectMsg::Elected(l));
                        done_receiving = true;
                    }
                },
                Event::Terminated { .. } => unreachable!("no watch guards"),
            }
        }
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    Election {
        script: b.build().expect("election spec is valid"),
        station,
        n,
    }
}

/// Runs one election with the given station ids (must be distinct);
/// returns the leader id observed by each station.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run(e: &Election, ids: Vec<u64>) -> Result<Vec<u64>, ScriptError> {
    assert_eq!(ids.len(), e.n, "one id per station");
    let instance = e.script.instance();
    run_on(&instance, e, ids)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on(
    instance: &Instance<ElectMsg>,
    e: &Election,
    ids: Vec<u64>,
) -> Result<Vec<u64>, ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .into_iter()
            .enumerate()
            .map(|(i, id)| {
                let station = &e.station;
                s.spawn(move || instance.enroll_member(station, i, id))
            })
            .collect();
        let mut out = Vec::with_capacity(e.n);
        for h in handles {
            out.push(h.join().expect("station threads do not panic")?);
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_id_wins() {
        let e = election(5);
        let got = run(&e, vec![30, 10, 50, 20, 40]).unwrap();
        assert_eq!(got, vec![50; 5]);
    }

    #[test]
    fn two_station_ring() {
        let e = election(2);
        assert_eq!(run(&e, vec![1, 2]).unwrap(), vec![2, 2]);
        assert_eq!(run(&e, vec![9, 3]).unwrap(), vec![9, 9]);
    }

    #[test]
    fn leader_position_is_irrelevant() {
        let e = election(4);
        for rotation in 0..4 {
            let mut ids = vec![10u64, 20, 30, 99];
            ids.rotate_left(rotation);
            let got = run(&e, ids).unwrap();
            assert_eq!(got, vec![99; 4], "rotation {rotation}");
        }
    }

    #[test]
    fn elections_are_repeatable_on_one_instance() {
        let e = election(3);
        let inst = e.script.instance();
        assert_eq!(run_on(&inst, &e, vec![1, 2, 3]).unwrap(), vec![3; 3]);
        assert_eq!(run_on(&inst, &e, vec![7, 5, 6]).unwrap(), vec![7; 3]);
        assert_eq!(inst.completed_performances(), 2);
    }

    #[test]
    fn wide_ring() {
        let n = 12;
        let e = election(n);
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 101).collect();
        let max = *ids.iter().max().unwrap();
        let got = run(&e, ids).unwrap();
        assert_eq!(got, vec![max; n]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_ring_rejected() {
        let _ = election(1);
    }
}
