//! A ring all-gather script: every member contributes one value and
//! leaves with everyone's values, via n−1 rounds of neighbor exchange.

use script_core::{FamilyHandle, Initiation, Instance, RoleId, Script, ScriptError, Termination};

/// The packaged all-gather script.
#[derive(Debug)]
pub struct AllGather<M> {
    /// The underlying script.
    pub script: Script<Vec<(usize, M)>>,
    /// The member family: contributes one value, receives all of them
    /// (indexed by member).
    pub member: FamilyHandle<Vec<(usize, M)>, M, Vec<M>>,
    n: usize,
}

impl<M> AllGather<M> {
    /// Number of members.
    pub fn members(&self) -> usize {
        self.n
    }
}

/// Builds a ring all-gather over `n` members.
///
/// Round r: member i sends the batch it received in round r−1 (its own
/// contribution in round 0) to member (i+1) mod n. After n−1 rounds
/// everyone has seen every contribution.
pub fn all_gather<M: Send + Clone + 'static>(n: usize) -> AllGather<M> {
    assert!(n >= 1, "all-gather needs at least one member");
    let mut b = Script::<Vec<(usize, M)>>::builder("all_gather");
    let member = b.family("member", n, move |ctx, mine: M| {
        let me = ctx.role().index().expect("member is indexed");
        let next = RoleId::indexed("member", (me + 1) % n);
        let prev = RoleId::indexed("member", (me + n - 1) % n);
        let mut known: Vec<Option<M>> = vec![None; n];
        known[me] = Some(mine.clone());
        let mut outgoing = vec![(me, mine)];
        for _ in 0..n.saturating_sub(1) {
            // Alternate send/receive by parity to avoid a send cycle
            // deadlock on the synchronous ring.
            if me % 2 == 0 {
                ctx.send(&next, outgoing)?;
                outgoing = ctx.recv_from(&prev)?;
            } else {
                let incoming = ctx.recv_from(&prev)?;
                ctx.send(&next, outgoing)?;
                outgoing = incoming;
            }
            for (idx, v) in &outgoing {
                known[*idx] = Some(v.clone());
            }
        }
        Ok(known
            .into_iter()
            .map(|v| v.expect("ring completed n-1 rounds"))
            .collect())
    });
    b.initiation(Initiation::Delayed)
        .termination(Termination::Delayed);
    AllGather {
        script: b.build().expect("all-gather spec is valid"),
        member,
        n,
    }
}

/// Runs one all-gather; returns each member's gathered vector.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run<M: Send + Clone + 'static>(
    ag: &AllGather<M>,
    values: Vec<M>,
) -> Result<Vec<Vec<M>>, ScriptError> {
    assert_eq!(values.len(), ag.n, "one value per member");
    let instance = ag.script.instance();
    run_on(&instance, ag, values)
}

/// Like [`run`] on an existing instance.
///
/// # Errors
///
/// The first error any participant reported.
pub fn run_on<M: Send + Clone + 'static>(
    instance: &Instance<Vec<(usize, M)>>,
    ag: &AllGather<M>,
    values: Vec<M>,
) -> Result<Vec<Vec<M>>, ScriptError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                let member = &ag.member;
                s.spawn(move || instance.enroll_member(member, i, v))
            })
            .collect();
        let mut out = Vec::with_capacity(ag.n);
        for h in handles {
            out.push(h.join().expect("member threads do not panic")?);
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_sees_everything() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            let ag = all_gather::<u64>(n);
            let values: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
            let out = run(&ag, values.clone()).unwrap();
            for (i, got) in out.iter().enumerate() {
                assert_eq!(got, &values, "member {i} of {n}");
            }
        }
    }

    #[test]
    fn works_with_strings() {
        let ag = all_gather::<String>(3);
        let out = run(&ag, vec!["a".into(), "b".into(), "c".into()]).unwrap();
        assert_eq!(out[2], vec!["a".to_string(), "b".into(), "c".into()]);
    }

    #[test]
    fn reusable_across_performances() {
        let ag = all_gather::<u64>(3);
        let inst = ag.script.instance();
        for round in 0..3u64 {
            let values = vec![round, round + 1, round + 2];
            let out = run_on(&inst, &ag, values.clone()).unwrap();
            assert!(out.iter().all(|v| v == &values));
        }
        assert_eq!(inst.completed_performances(), 3);
    }
}
