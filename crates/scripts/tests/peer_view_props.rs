//! Property battery for the epidemic `PeerView` sampler (ISSUE 9,
//! satellite 1): no self-loops or duplicates, fanout bounds respected,
//! views a pure function of `(seed, round, membership)`, and the union
//! of one round's views keeps the live-member graph connected for
//! n ≤ 64.

use std::collections::{BTreeSet, VecDeque};

use proptest::prelude::*;
use script_lib::gossip::PeerView;

/// A non-empty live membership drawn from indices 0..64, possibly with
/// holes (departed members) — the sampler must cope with sparse casts.
fn membership() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::btree_set(0usize..64, 1..=64).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_self_loops_no_duplicates_fanout_bounded(
        seed in any::<u64>(),
        round in 0u64..16,
        fanout in 1usize..=6,
        members in membership(),
    ) {
        let pv = PeerView::new(seed, fanout);
        for &me in &members {
            let view = pv.view(round, me, &members);
            prop_assert!(!view.contains(&me), "self-loop for {me}: {view:?}");
            let uniq: BTreeSet<usize> = view.iter().copied().collect();
            prop_assert_eq!(uniq.len(), view.len(), "duplicates for {}", me);
            prop_assert!(view.len() <= fanout, "fanout exceeded for {me}: {view:?}");
            for t in &view {
                prop_assert!(members.contains(t), "{t} not a live member");
            }
            // With at least one other live member the view is never
            // empty: the ring edge always fits in fanout >= 1.
            if members.len() > 1 {
                prop_assert!(!view.is_empty(), "empty view for {me}");
            }
        }
        let seeded = pv.seed_targets(round, &members);
        let uniq: BTreeSet<usize> = seeded.iter().copied().collect();
        prop_assert_eq!(uniq.len(), seeded.len());
        prop_assert!(seeded.len() <= fanout);
        prop_assert!(!seeded.is_empty());
    }

    #[test]
    fn view_is_pure_function_of_inputs(
        seed in any::<u64>(),
        round in 0u64..16,
        fanout in 1usize..=6,
        members in membership(),
    ) {
        let pv = PeerView::new(seed, fanout);
        for &me in &members {
            prop_assert_eq!(pv.view(round, me, &members), pv.view(round, me, &members));
        }
        prop_assert_eq!(pv.seed_targets(round, &members), pv.seed_targets(round, &members));
        // Membership order and duplicates are irrelevant: the sampler
        // canonicalizes, so shuffled/duplicated input gives the same view.
        let mut scrambled: Vec<usize> = members.iter().rev().copied().collect();
        scrambled.extend(members.iter().copied());
        for &me in &members {
            prop_assert_eq!(pv.view(round, me, &members), pv.view(round, me, &scrambled));
        }
    }

    #[test]
    fn union_of_views_keeps_live_graph_connected(
        seed in any::<u64>(),
        round in 0u64..16,
        fanout in 1usize..=6,
        members in membership(),
    ) {
        let pv = PeerView::new(seed, fanout);
        // Undirected union of every live member's view for this round.
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let start = *members.first().unwrap();
        let mut queue = VecDeque::from([start]);
        reached.insert(start);
        while let Some(x) = queue.pop_front() {
            let mut adjacent: Vec<usize> = pv.view(round, x, &members);
            for &m in &members {
                if pv.view(round, m, &members).contains(&x) {
                    adjacent.push(m);
                }
            }
            for t in adjacent {
                if reached.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        prop_assert_eq!(
            reached.len(),
            members.len(),
            "round {} views disconnect the live graph", round
        );
        // And the pure dissemination oracle terminates (it panics
        // internally if the rumor ever wedges short of full coverage).
        let rounds = pv.dissemination_rounds(round, &members);
        prop_assert!(rounds >= 1 && rounds <= members.len() as u64);
    }
}
