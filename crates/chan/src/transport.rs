//! The transport seam and the sharded in-process implementation.
//!
//! [`Transport`] abstracts the blocking rendezvous substrate a
//! [`Network`](crate::Network) runs on, so a future remote backend can
//! slot in without touching the engine or the translations.
//!
//! [`ShardedTransport`] is the in-process implementation: **one lock +
//! condvar per endpoint** instead of one per network. Hot-path
//! operations touch only the endpoints they name:
//!
//! * `send(a → b)` deposits into, and awaits pickup on, *b*'s endpoint;
//! * a selection by *s* sleeps on *s*'s own condvar; deposits to *s* and
//!   claims of *s*'s published offers land under *s*'s lock;
//! * a send arm `s → t` registers *s* as a *send watcher* on *t*, so
//!   *t*'s offer publications and slot releases wake exactly the
//!   selectors that care.
//!
//! Rare lifecycle transitions (declare/activate/finish/seal/abort) bump
//! a per-endpoint event counter and broadcast to every endpoint — the
//! only remaining thundering herd, and it fires once per role lifetime,
//! not once per message.
//!
//! Lost wakeups are prevented by an eventcount: every change a sleeping
//! selector could care about increments the endpoint's `signal` under
//! its lock; selectors re-read the counter before parking and rescan if
//! it moved. Locks are never nested endpoint-to-endpoint, so the
//! implementation is deadlock-free by construction.
//!
//! Fault decisions are routed at the edge: per-edge sequence counters
//! live in the *receiver's* endpoint and crash-step counters in the
//! operator's own endpoint, so decisions remain pure functions of
//! (seed, edge, seq) — determinism is preserved shard by shard. When the
//! attached plan cannot inject message faults (or crashes), the
//! corresponding hot path is gated by a single relaxed boolean load,
//! checked once per operation instead of consulting the plan per hop.

use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::fault::{FaultKind, FaultPlan, FaultRecord};
use crate::network::PeerState;
use crate::select::{Arm, Outcome, Source};
use crate::ChanError;

/// Callback invoked on every injected fault (see
/// [`Network::set_fault_observer`](crate::Network::set_fault_observer)).
pub type FaultObserver<I> = Arc<dyn Fn(&FaultRecord<I>) + Send + Sync>;

/// One completed rendezvous, observed at pickup on the receiving
/// endpoint (see
/// [`Network::set_rendezvous_observer`](crate::Network::set_rendezvous_observer)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RendezvousRecord<I> {
    /// The sending participant.
    pub from: I,
    /// The receiving participant.
    pub to: I,
    /// The message's protocol label, if the installed labeler produced
    /// one.
    pub label: Option<String>,
    /// Zero-based delivery counter for the directed edge `from → to`:
    /// a pure function of the communication schedule, so it is
    /// identical across runs — and across transports.
    pub seq: u64,
}

impl<I: fmt::Debug> fmt::Display for RendezvousRecord<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(
                f,
                "rendezvous {:?} -> {:?} [{l}] #{}",
                self.from, self.to, self.seq
            ),
            None => write!(
                f,
                "rendezvous {:?} -> {:?} #{}",
                self.from, self.to, self.seq
            ),
        }
    }
}

/// Callback invoked on every completed rendezvous (see
/// [`Network::set_rendezvous_observer`](crate::Network::set_rendezvous_observer)).
pub type RendezvousObserver<I> = Arc<dyn Fn(&RendezvousRecord<I>) + Send + Sync>;

/// Extracts a protocol label from a message. Kept a plain `fn` pointer
/// — like `set_fault_plan`'s `clone_fn` — so [`Transport`] itself needs
/// no extra bounds on `M`.
pub type LabelFn<M> = fn(&M) -> Option<String>;

/// Callback invoked on every recorded latency sample (see
/// [`Network::set_latency_observer`](crate::Network::set_latency_observer)).
pub type LatencyObserver = Arc<dyn Fn(&LatencySample) + Send + Sync>;

/// A connection-lifecycle transition observed by a session-aware
/// transport (see
/// [`Network::set_session_observer`](crate::Network::set_session_observer)).
///
/// The in-process transport has no connections and never emits these;
/// a connection-oriented transport with a session layer emits them when
/// a peer's link drops, when it resumes within its lease, and when its
/// lease expires and the peer degrades to a crashed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent<I> {
    /// `I`'s connection was severed; its session (and the performances
    /// it is bound to) stay alive until the lease expires.
    PeerDisconnected(I),
    /// A severed peer presented its session id again within the lease
    /// and resumed where it left off.
    PeerResumed(I),
    /// A severed peer's lease expired without a resume; it now degrades
    /// exactly like a crashed peer (`Terminated`, watchdog `Stalled`).
    LeaseExpired(I),
}

/// Callback invoked on every session-lifecycle transition.
pub type SessionObserver<I> = Arc<dyn Fn(&SessionEvent<I>) + Send + Sync>;

/// Completion callback for [`Transport::submit_send`]: invoked exactly
/// once with the result the blocking [`Transport::send`] would have
/// returned.
pub type SendDone<I> = Box<dyn FnOnce(Result<(), ChanError<I>>) + Send>;

/// Completion callback for [`Transport::submit_select`]: invoked
/// exactly once with the result the blocking [`Transport::select`]
/// would have returned.
pub type SelectDone<I, M> = Box<dyn FnOnce(Result<Outcome<I, M>, ChanError<I>>) + Send>;

/// Which blocking operation a [`LatencySample`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyOp {
    /// A synchronous send that completed its rendezvous.
    Send,
    /// A selection that fired a receive or send arm.
    Select,
    /// A non-blocking receive that took a deposited message.
    TryRecv,
}

/// One *successful* operation's wall-clock latency, as observed by the
/// participant that issued it.
///
/// Failed operations, empty polls, and lifecycle calls are not sampled:
/// they measure control flow, not rendezvous cost, and tiny poll
/// samples would drag the quantiles under what an actual rendezvous
/// needs. For a remote transport the elapsed time includes the RPC
/// round trip, so hub-side rendezvous time is attributed to the
/// performance that paid for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LatencySample {
    /// The operation measured.
    pub op: LatencyOp,
    /// Wall-clock time from issue to completion.
    pub elapsed: Duration,
}

/// The blocking rendezvous substrate a [`Network`](crate::Network) runs
/// on.
///
/// All methods are object-safe: a `Network` holds an
/// `Arc<dyn Transport>`, so alternative backends (a remote transport, an
/// instrumented wrapper) plug in via
/// [`Network::with_transport`](crate::Network::with_transport) without
/// another engine rewrite. Message duplication support passes a
/// `clone_fn` alongside the plan so the trait itself needs no
/// `M: Clone` bound.
///
/// # Contract
///
/// Every implementation must satisfy the observable behavior below; the
/// [`conformance`](crate::conformance) module checks it mechanically and
/// must pass for any new backend.
///
/// * **Rendezvous.** [`Transport::send`] completes only when the
///   receiver has picked the message up (or fails); at most one message
///   per directed edge is in flight, so messages from one sender arrive
///   in send order (per-edge FIFO).
/// * **Lifecycle.** Peers move `Expected → Active → Done`;
///   [`Transport::declare`] never downgrades a state. Operations naming
///   an `Expected` peer block (the role may yet enroll); operations
///   naming a `Done` peer fail with [`ChanError::Terminated`] *after*
///   any already-deposited message from it has been drained. A
///   selection whose arms are all permanently unfireable fails with
///   `Terminated` (single named peer) or [`ChanError::AllTerminated`].
/// * **Selection.** [`Transport::select`] fires exactly one arm, chosen
///   fairly among ready alternatives (seeded by
///   [`Transport::reseed`] for reproducibility); a send arm fires only
///   by claiming a peer already committed to a matching receive, so a
///   fired send arm proves delivery. Watch arms fire only once nothing
///   from the watched peer remains undelivered.
/// * **Deadlines.** An expired deadline surfaces
///   [`ChanError::Timeout`] and leaves no partial effect: a send that
///   timed out awaiting pickup reclaims its deposit.
/// * **Abort.** [`Transport::abort`] fails every blocked and future
///   operation with [`ChanError::Aborted`]; an already-claimed
///   rendezvous still completes (the sender has already seen success).
/// * **Faults.** With a [`FaultPlan`] attached, injection decisions are
///   pure functions of (seed, edge, per-edge sequence) made at the
///   *sending* edge, so the fault log for a fixed communication
///   schedule is identical across runs — and across transports. Remote
///   peer loss (a disconnected process) surfaces as the same
///   [`ChanError::Terminated`] a crashed peer produces.
/// * **Latency.** Measuring backends record a [`LatencySample`] for
///   every successful `send`, fired `select`, and non-empty `try_recv`
///   — and only those — so the per-operation sample counts for a fixed
///   communication schedule match across transports even though the
///   elapsed times differ.
pub trait Transport<I, M>: Send + Sync {
    /// Declares `id` as expected (idempotent, never downgrades).
    fn declare(&self, id: I);
    /// Marks `id` active, declaring it if necessary.
    fn activate(&self, id: I);
    /// Marks `id` done (finished or permanently barred).
    fn finish(&self, id: I);
    /// Seals: expected peers become done; on implicitly-declaring
    /// transports, future unknown peers are declared done.
    fn seal(&self);
    /// Aborts every blocked and future operation.
    fn abort(&self);
    /// Whether the transport has been aborted.
    fn is_aborted(&self) -> bool;
    /// Lifecycle state of `id`, `None` if never declared.
    fn peer_state(&self, id: &I) -> Option<PeerState>;
    /// All declared peers and their states, in unspecified order.
    fn peers(&self) -> Vec<(I, PeerState)>;
    /// Monotone progress counter (see
    /// [`Network::activity`](crate::Network::activity)).
    fn activity(&self) -> u64;
    /// Re-seeds the per-endpoint selection RNGs from `seed`.
    fn reseed(&self, seed: u64);
    /// Ensures `id` exists (implicit declaration if supported).
    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>>;
    /// Whether a message from `from` is deposited at `to` (diagnostic).
    fn has_pending_from(&self, to: &I, from: &I) -> bool;
    /// Attaches a fault plan; `clone_fn` materializes duplicates.
    fn set_fault_plan(&self, plan: FaultPlan, clone_fn: fn(&M) -> M);
    /// Detaches the fault plan and discards its log.
    fn clear_fault_plan(&self);
    /// The currently attached plan, if any.
    fn fault_plan(&self) -> Option<FaultPlan>;
    /// Registers the fault observer callback.
    fn set_fault_observer(&self, observer: FaultObserver<I>);
    /// Registers a callback invoked on every *completed* rendezvous —
    /// at message pickup, on the receiving side — with `label_of`
    /// extracting each message's protocol label. Observers run inside
    /// the delivery path and must not call back into the transport.
    /// Backends that do not observe rendezvous may ignore it (the
    /// default does).
    fn set_rendezvous_observer(&self, observer: RendezvousObserver<I>, label_of: LabelFn<M>) {
        let _ = (observer, label_of);
    }
    /// A copy of the fault log.
    fn fault_log(&self) -> Vec<FaultRecord<I>>;
    /// Drains and returns the fault log.
    fn take_fault_log(&self) -> Vec<FaultRecord<I>>;
    /// Registers a callback invoked after every successful blocking
    /// operation with its measured latency. Backends that do not
    /// measure may ignore it (the default does).
    fn set_latency_observer(&self, observer: LatencyObserver) {
        let _ = observer;
    }
    /// A copy of the recent latency samples, oldest first (bounded:
    /// implementations retain a fixed number of recent samples).
    fn latency_samples(&self) -> Vec<LatencySample> {
        Vec::new()
    }
    /// Drains and returns the recent latency samples.
    fn take_latency_samples(&self) -> Vec<LatencySample> {
        Vec::new()
    }
    /// Registers a callback invoked on session-lifecycle transitions
    /// (disconnect, resume, lease expiry). Backends without a session
    /// layer never emit any and may ignore it (the default does).
    fn set_session_observer(&self, observer: SessionObserver<I>) {
        let _ = observer;
    }
    /// Feeds one session-lifecycle event to the registered observer.
    /// A hub serving this transport over a network calls this so
    /// participants local to the hub observe remote peers' lifecycle;
    /// backends that store no observer ignore it (the default does).
    fn note_session_event(&self, event: &SessionEvent<I>) {
        let _ = event;
    }
    /// Synchronous send `from → to` (two-phase rendezvous).
    fn send(&self, from: &I, to: &I, msg: M, deadline: Option<Instant>)
        -> Result<(), ChanError<I>>;
    /// Non-blocking receive of a deposited message.
    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>>;
    /// Guarded selection over `arms` on behalf of `me`.
    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>>;
    /// Submits a send for *asynchronous* completion: the implementation
    /// calls `done` exactly once — possibly before returning — with the
    /// result the blocking [`Transport::send`] would have produced, and
    /// the calling thread never blocks on the rendezvous. An
    /// event-driven hub multiplexes thousands of in-flight sends onto
    /// one scheduler this way. Backends without a native nonblocking
    /// core hand the message and callback straight back (the default),
    /// telling the caller to fall back to a thread driving the blocking
    /// path.
    fn submit_send(
        self: Arc<Self>,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
        done: SendDone<I>,
    ) -> Result<(), (M, SendDone<I>)> {
        let _ = (from, to, deadline);
        Err((msg, done))
    }
    /// Submits a selection for *asynchronous* completion, with the same
    /// contract as [`Transport::submit_send`]: `done` fires exactly
    /// once with the blocking [`Transport::select`]'s result, and the
    /// unsupported default hands the arms and callback back to the
    /// caller.
    #[allow(clippy::type_complexity)]
    fn submit_select(
        self: Arc<Self>,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
        done: SelectDone<I, M>,
    ) -> Result<(), (Vec<Arm<I, M>>, SelectDone<I, M>)> {
        let _ = (me, deadline);
        Err((arms, done))
    }
}

const LIFE_EXPECTED: u8 = 0;
const LIFE_ACTIVE: u8 = 1;
const LIFE_DONE: u8 = 2;

fn life_of(v: u8) -> PeerState {
    match v {
        LIFE_ACTIVE => PeerState::Active,
        LIFE_DONE => PeerState::Done,
        _ => PeerState::Expected,
    }
}

#[derive(Debug)]
struct WaitEntry<I> {
    /// The receive sources this blocked participant is offering.
    offers: Vec<Source<I>>,
    /// Set by a claiming sender: the peer whose message must be taken.
    resolved: Option<I>,
}

impl<I: PartialEq> WaitEntry<I> {
    fn offers_from(&self, sender: &I) -> bool {
        self.offers
            .iter()
            .any(|s| matches!(s, Source::Any) || matches!(s, Source::Of(p) if p == sender))
    }
}

/// One participant's shard: its own lock, condvar, and lifecycle word.
struct Endpoint<I, M> {
    /// Lifecycle (`LIFE_*`), readable without the lock.
    life: AtomicU8,
    state: Mutex<EpState<I, M>>,
    cond: Condvar,
}

struct EpState<I, M> {
    /// Messages to me, keyed by sender: at most one in flight per edge.
    inbox: HashMap<I, M>,
    /// Pickup counts per sender, awaited by the sender's phase 2.
    acks: HashMap<I, u64>,
    /// My published receive offers, claimable by send arms.
    wait: Option<WaitEntry<I>>,
    /// Eventcount: bumped under this lock on every change a sleeper on
    /// `cond` could care about. Selectors re-read it before parking.
    signal: u64,
    /// Selectors with a send arm targeting me, woken when my offers or
    /// inbox slots change. `(token, endpoint)` so a selector can remove
    /// exactly its own registration.
    watchers: Vec<(u64, Arc<Endpoint<I, M>>)>,
    /// Fair-choice RNG for selections by this endpoint.
    rng: SmallRng,
    /// Per-edge send counters for edges *into* me (chaos decisions).
    chaos_in_seqs: HashMap<I, u64>,
    /// Per-edge *delivery* counters for edges into me, advanced only
    /// while a rendezvous observer is installed.
    rdv_in_seqs: HashMap<I, u64>,
    /// My operation counter driving crash-at-step-*k*.
    chaos_steps: u64,
    /// Asynchronous operations parked on this endpoint: single-shot
    /// `(op token, scheduler)` registrations drained — each token pushed
    /// onto its scheduler's ready queue — whenever the eventcount bumps.
    op_waiters: Vec<(u64, Arc<SchedShared<I, M>>)>,
}

impl<I, M> EpState<I, M> {
    /// Bumps the eventcount and hands every parked asynchronous
    /// operation to its scheduler. Every mutation a sleeper on the
    /// endpoint's condvar could care about must go through here, so the
    /// poll-based state machines observe exactly the wakeups the
    /// blocking loops do. Lock order is endpoint → scheduler queue; the
    /// scheduler never takes an endpoint lock while holding its queue.
    fn bump_signal(&mut self) {
        self.signal += 1;
        for (token, sched) in self.op_waiters.drain(..) {
            let mut q = sched.queue.lock();
            q.ready.push_back(token);
            sched.cond.notify_one();
        }
    }
}

/// Chaos configuration, shared read-only once attached.
struct FaultConfig<M> {
    plan: FaultPlan,
    clone_fn: fn(&M) -> M,
}

/// Cold-path fault state: hot paths read only the two booleans.
struct FaultHooks<I, M> {
    /// `plan.has_message_faults() || plan.has_connection_faults()`,
    /// readable without a lock (both classes decide per message at the
    /// sending edge, so they share the per-send gate).
    msg_faults: AtomicBool,
    /// `plan.has_crashes()`, readable without a lock.
    crashes: AtomicBool,
    config: Mutex<Option<Arc<FaultConfig<M>>>>,
    observer: Mutex<Option<FaultObserver<I>>>,
    session_observer: Mutex<Option<SessionObserver<I>>>,
    log: Mutex<Vec<FaultRecord<I>>>,
}

/// Cold-path rendezvous observation state: the no-observer pickup path
/// reads only the boolean — one relaxed load per delivery.
struct RendezvousHooks<I, M> {
    /// Whether an observer is installed, readable without a lock.
    enabled: AtomicBool,
    observer: Mutex<Option<RendezvousObserver<I>>>,
    label_of: Mutex<Option<LabelFn<M>>>,
}

/// Latency recording shared by measuring transports: a bounded ring of
/// recent samples plus an optional observer, both fed after every
/// successful blocking operation. Embed one and delegate the three
/// latency methods of [`Transport`] to it.
pub struct LatencyHooks {
    log: Mutex<VecDeque<LatencySample>>,
    observer: Mutex<Option<LatencyObserver>>,
}

/// Most recent latency samples retained per transport.
const LATENCY_LOG_CAP: usize = 1024;

impl fmt::Debug for LatencyHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHooks")
            .field("samples", &self.log.lock().len())
            .finish()
    }
}

impl Default for LatencyHooks {
    fn default() -> Self {
        Self {
            log: Mutex::new(VecDeque::with_capacity(64)),
            observer: Mutex::new(None),
        }
    }
}

impl LatencyHooks {
    /// Appends a sample (evicting the oldest past the cap) and notifies
    /// the observer, if any.
    pub fn record(&self, op: LatencyOp, elapsed: Duration) {
        let sample = LatencySample { op, elapsed };
        {
            let mut log = self.log.lock();
            if log.len() == LATENCY_LOG_CAP {
                log.pop_front();
            }
            log.push_back(sample);
        }
        let obs = self.observer.lock().clone();
        if let Some(obs) = obs {
            obs(&sample);
        }
    }

    /// Installs (replacing) the observer callback.
    pub fn set_observer(&self, observer: LatencyObserver) {
        *self.observer.lock() = Some(observer);
    }

    /// A copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<LatencySample> {
        self.log.lock().iter().copied().collect()
    }

    /// Drains and returns the retained samples.
    pub fn take_samples(&self) -> Vec<LatencySample> {
        self.log.lock().drain(..).collect()
    }
}

/// The in-process sharded transport (see the module docs).
pub struct ShardedTransport<I, M> {
    endpoints: RwLock<HashMap<I, Arc<Endpoint<I, M>>>>,
    implicit_declare: bool,
    sealed: AtomicBool,
    aborted: AtomicBool,
    activity: AtomicU64,
    /// Root seed for per-endpoint RNGs (`None` = entropy).
    seed: Mutex<Option<u64>>,
    /// Unique tokens for watcher registrations.
    next_token: AtomicU64,
    /// Peers currently severed but inside their session lease (a
    /// session-aware hub reports them via
    /// [`Transport::note_session_event`]). While any peer is suspended
    /// the network is *reconfiguring*, not quiescent — see
    /// [`ShardedTransport::activity`].
    suspended: Mutex<Vec<I>>,
    /// Per-read synthetic progress ticks handed out while a lease is
    /// pending.
    lease_ticks: AtomicU64,
    /// The lazily-started scheduler driving asynchronous operations
    /// ([`Transport::submit_send`]/[`Transport::submit_select`]): one
    /// thread for the whole transport, regardless of how many ops are
    /// in flight.
    sched: Mutex<Option<Arc<SchedShared<I, M>>>>,
    faults: FaultHooks<I, M>,
    rendezvous: RendezvousHooks<I, M>,
    latency: LatencyHooks,
}

impl<I, M> Drop for ShardedTransport<I, M> {
    fn drop(&mut self) {
        // Release the scheduler thread (it holds only a weak reference
        // back to the transport, so this is the last liveness signal it
        // gets).
        if let Some(sched) = self.sched.lock().take() {
            sched.queue.lock().shutdown = true;
            sched.cond.notify_all();
        }
    }
}

impl<I, M> fmt::Debug for ShardedTransport<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedTransport")
            .field(
                "endpoints",
                &self.endpoints.read().map(|g| g.len()).unwrap_or(0),
            )
            .field("aborted", &self.aborted.load(Ordering::Relaxed))
            .field("sealed", &self.sealed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Derives a per-endpoint RNG seed from the root seed and the endpoint
/// id (deterministic within a build: `DefaultHasher::new` is keyless).
fn derive_seed<I: Hash>(root: u64, id: &I) -> u64 {
    let mut h = DefaultHasher::new();
    root.hash(&mut h);
    id.hash(&mut h);
    h.finish()
}

impl<I, M> ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// Creates a transport. `implicit_declare` networks auto-declare
    /// unknown peers; `seed` fixes the selection RNGs for reproducibility.
    pub fn new(implicit_declare: bool, seed: Option<u64>) -> Self {
        Self {
            endpoints: RwLock::new(HashMap::new()),
            implicit_declare,
            sealed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            activity: AtomicU64::new(0),
            seed: Mutex::new(seed),
            next_token: AtomicU64::new(0),
            suspended: Mutex::new(Vec::new()),
            lease_ticks: AtomicU64::new(0),
            sched: Mutex::new(None),
            faults: FaultHooks {
                msg_faults: AtomicBool::new(false),
                crashes: AtomicBool::new(false),
                config: Mutex::new(None),
                observer: Mutex::new(None),
                session_observer: Mutex::new(None),
                log: Mutex::new(Vec::new()),
            },
            rendezvous: RendezvousHooks {
                enabled: AtomicBool::new(false),
                observer: Mutex::new(None),
                label_of: Mutex::new(None),
            },
            latency: LatencyHooks::default(),
        }
    }

    fn new_endpoint(&self, id: &I, life: u8) -> Arc<Endpoint<I, M>> {
        let rng = match *self.seed.lock() {
            Some(root) => SmallRng::seed_from_u64(derive_seed(root, id)),
            None => SmallRng::from_entropy(),
        };
        Arc::new(Endpoint {
            life: AtomicU8::new(life),
            state: Mutex::new(EpState {
                inbox: HashMap::new(),
                acks: HashMap::new(),
                wait: None,
                signal: 0,
                watchers: Vec::new(),
                rng,
                chaos_in_seqs: HashMap::new(),
                rdv_in_seqs: HashMap::new(),
                chaos_steps: 0,
                op_waiters: Vec::new(),
            }),
            cond: Condvar::new(),
        })
    }

    /// Read access to the endpoint registry (poisoning swallowed, in
    /// the style of the vendored `parking_lot` shim).
    fn registry(&self) -> RwLockReadGuard<'_, HashMap<I, Arc<Endpoint<I, M>>>> {
        self.endpoints
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn registry_mut(&self) -> RwLockWriteGuard<'_, HashMap<I, Arc<Endpoint<I, M>>>> {
        self.endpoints
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lookup(&self, id: &I) -> Option<Arc<Endpoint<I, M>>> {
        self.registry().get(id).cloned()
    }

    /// Gets the endpoint for `id`, creating it with `life` if absent.
    fn get_or_create(&self, id: &I, life: u8) -> Arc<Endpoint<I, M>> {
        if let Some(ep) = self.lookup(id) {
            return ep;
        }
        let mut w = self.registry_mut();
        if let Some(ep) = w.get(id) {
            return ep.clone();
        }
        let ep = self.new_endpoint(id, life);
        w.insert(id.clone(), ep.clone());
        ep
    }

    /// Resolves `id`, implicitly declaring it if the transport allows.
    fn ensure(&self, id: &I) -> Result<Arc<Endpoint<I, M>>, ChanError<I>> {
        if let Some(ep) = self.lookup(id) {
            return Ok(ep);
        }
        if self.implicit_declare {
            let life = if self.sealed.load(Ordering::SeqCst) {
                LIFE_DONE
            } else {
                LIFE_EXPECTED
            };
            Ok(self.get_or_create(id, life))
        } else {
            Err(ChanError::Unknown(id.clone()))
        }
    }

    /// Bumps every endpoint's eventcount and wakes all sleepers. Used by
    /// the rare lifecycle transitions (and abort/seal), whose effects
    /// any blocked operation anywhere may be waiting on.
    fn broadcast(&self) {
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in eps {
            ep.state.lock().bump_signal();
            ep.cond.notify_all();
        }
    }

    /// Wakes the selectors registered as send watchers on `ep`. Call
    /// *without* holding any endpoint lock; the snapshot was taken under
    /// `ep`'s lock.
    fn wake_watchers(watchers: Vec<(u64, Arc<Endpoint<I, M>>)>) {
        for (_, w) in watchers {
            w.state.lock().bump_signal();
            w.cond.notify_all();
        }
    }

    fn chaos_cfg(&self) -> Option<Arc<FaultConfig<M>>> {
        self.faults.config.lock().clone()
    }

    /// Records an injected fault in the log and tells the observer.
    fn record_fault(&self, kind: FaultKind, from: &I, to: &I, seq: u64) {
        let record = FaultRecord {
            kind,
            from: from.clone(),
            to: to.clone(),
            seq,
        };
        let obs = self.faults.observer.lock().clone();
        if let Some(obs) = obs {
            obs(&record);
        }
        self.faults.log.lock().push(record);
    }

    /// Counts one operation by `me` toward crash-at-step-*k*; on a
    /// crash, marks `me` done and broadcasts the transition.
    fn chaos_step(&self, me: &I, me_ep: &Arc<Endpoint<I, M>>) -> Result<(), ChanError<I>> {
        let Some(cfg) = self.chaos_cfg() else {
            return Ok(());
        };
        if !cfg.plan.has_crashes() {
            return Ok(());
        }
        let crashed = {
            let mut st = me_ep.state.lock();
            st.chaos_steps += 1;
            st.chaos_steps == cfg.plan.crash_step() && cfg.plan.decide_crash(me)
        };
        if crashed {
            me_ep.life.store(LIFE_DONE, Ordering::SeqCst);
            self.activity.fetch_add(1, Ordering::Relaxed);
            self.record_fault(FaultKind::Crash, me, me, cfg.plan.crash_step());
            self.broadcast();
            return Err(ChanError::Terminated(me.clone()));
        }
        Ok(())
    }

    /// Advances the per-edge counter for `from → to` under `to`'s lock.
    fn chaos_edge_seq(&self, from: &I, to_ep: &Arc<Endpoint<I, M>>) -> u64 {
        let mut st = to_ep.state.lock();
        let c = st.chaos_in_seqs.entry(from.clone()).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Takes the message from `from` out of `me`'s inbox (`st` is
    /// `me`'s state), acking it. Every delivery path — blocking and
    /// asynchronous receives, selections, and claimed send arms — funnels
    /// through here, so this is the single point where a completed
    /// rendezvous becomes observable.
    fn take_from(&self, st: &mut EpState<I, M>, me: &I, from: &I) -> Option<M> {
        let msg = st.inbox.remove(from)?;
        *st.acks.entry(from.clone()).or_insert(0) += 1;
        st.bump_signal();
        self.activity.fetch_add(1, Ordering::Relaxed);
        if self.rendezvous.enabled.load(Ordering::Relaxed) {
            self.record_rendezvous(st, me, from, &msg);
        }
        Some(msg)
    }

    /// Records one completed rendezvous: assigns the per-edge delivery
    /// seq and invokes the observer, all under the receiver's endpoint
    /// lock — so observer call order can never invert against pickup
    /// order on any edge into this endpoint (a sequencing hub relies on
    /// that for gapless replay). The lock order is endpoint → observer
    /// internals; observers must therefore never call back into the
    /// transport.
    fn record_rendezvous(&self, st: &mut EpState<I, M>, me: &I, from: &I, msg: &M) {
        let c = st.rdv_in_seqs.entry(from.clone()).or_insert(0);
        let seq = *c;
        *c += 1;
        let label_of = *self.rendezvous.label_of.lock();
        let obs = self.rendezvous.observer.lock().clone();
        if let Some(obs) = obs {
            obs(&RendezvousRecord {
                from: from.clone(),
                to: me.clone(),
                label: label_of.and_then(|f| f(msg)),
                seq,
            });
        }
    }

    /// Any peer other than `me` that could still produce a message?
    fn any_possible_sender(&self, me: &I) -> bool {
        if self.implicit_declare && !self.sealed.load(Ordering::SeqCst) {
            return true;
        }
        self.registry()
            .iter()
            .any(|(id, ep)| id != me && ep.life.load(Ordering::SeqCst) != LIFE_DONE)
    }

    /// Waits on `ep`'s condvar. Returns `true` on deadline expiry.
    fn wait_on(
        ep: &Endpoint<I, M>,
        st: &mut parking_lot::MutexGuard<'_, EpState<I, M>>,
        deadline: Option<Instant>,
    ) -> bool {
        match deadline {
            Some(d) => ep.cond.wait_until(st, d).timed_out(),
            None => {
                ep.cond.wait(st);
                false
            }
        }
    }
}

impl<I, M> Transport<I, M> for ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    fn declare(&self, id: I) {
        self.get_or_create(&id, LIFE_EXPECTED);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn activate(&self, id: I) {
        let ep = self.get_or_create(&id, LIFE_ACTIVE);
        ep.life.store(LIFE_ACTIVE, Ordering::SeqCst);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn finish(&self, id: I) {
        let ep = self.get_or_create(&id, LIFE_DONE);
        ep.life.store(LIFE_DONE, Ordering::SeqCst);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in &eps {
            let _ = ep.life.compare_exchange(
                LIFE_EXPECTED,
                LIFE_DONE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.broadcast();
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    fn peer_state(&self, id: &I) -> Option<PeerState> {
        self.lookup(id)
            .map(|ep| life_of(ep.life.load(Ordering::SeqCst)))
    }

    fn peers(&self) -> Vec<(I, PeerState)> {
        self.registry()
            .iter()
            .map(|(id, ep)| (id.clone(), life_of(ep.life.load(Ordering::SeqCst))))
            .collect()
    }

    fn activity(&self) -> u64 {
        let base = self.activity.load(Ordering::Relaxed);
        // Lease-aware watchdog interaction: while any peer is severed
        // but still inside its session lease, the network has promised
        // it may return — that window is reconfiguration, not
        // quiescence. Hand every sampler a changing value so no
        // watchdog declares a stall before the lease verdict is in;
        // once the set empties (resume or expiry) the counter reverts
        // to real progress and true stalls surface as before.
        if self.suspended.lock().is_empty() {
            base
        } else {
            base.wrapping_add(self.lease_ticks.fetch_add(1, Ordering::Relaxed) + 1)
        }
    }

    fn reseed(&self, seed: u64) {
        *self.seed.lock() = Some(seed);
        let eps: Vec<(I, Arc<Endpoint<I, M>>)> = self
            .registry()
            .iter()
            .map(|(id, ep)| (id.clone(), ep.clone()))
            .collect();
        for (id, ep) in eps {
            ep.state.lock().rng = SmallRng::seed_from_u64(derive_seed(seed, &id));
        }
    }

    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>> {
        self.ensure(id).map(|_| ())
    }

    fn has_pending_from(&self, to: &I, from: &I) -> bool {
        self.lookup(to)
            .map(|ep| ep.state.lock().inbox.contains_key(from))
            .unwrap_or(false)
    }

    fn set_fault_plan(&self, plan: FaultPlan, clone_fn: fn(&M) -> M) {
        let msg = plan.has_message_faults() || plan.has_connection_faults();
        let crashes = plan.has_crashes();
        *self.faults.config.lock() = Some(Arc::new(FaultConfig { plan, clone_fn }));
        self.faults.log.lock().clear();
        // Reset all fault counters so the new plan starts from seq 0.
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in eps {
            let mut st = ep.state.lock();
            st.chaos_in_seqs.clear();
            st.chaos_steps = 0;
        }
        // Flags last: a racing hot path that sees them set finds the
        // config already in place. A no-op plan leaves both false — the
        // per-message fault branch is hoisted out entirely at attach
        // time, not re-checked per hop.
        self.faults.msg_faults.store(msg, Ordering::SeqCst);
        self.faults.crashes.store(crashes, Ordering::SeqCst);
    }

    fn clear_fault_plan(&self) {
        self.faults.msg_faults.store(false, Ordering::SeqCst);
        self.faults.crashes.store(false, Ordering::SeqCst);
        *self.faults.config.lock() = None;
        self.faults.log.lock().clear();
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.config.lock().as_ref().map(|c| c.plan.clone())
    }

    fn set_fault_observer(&self, observer: FaultObserver<I>) {
        *self.faults.observer.lock() = Some(observer);
    }

    fn set_rendezvous_observer(&self, observer: RendezvousObserver<I>, label_of: LabelFn<M>) {
        *self.rendezvous.label_of.lock() = Some(label_of);
        *self.rendezvous.observer.lock() = Some(observer);
        // Flag last: a racing pickup that sees it set finds both the
        // observer and the labeler already in place.
        self.rendezvous.enabled.store(true, Ordering::SeqCst);
    }

    fn set_session_observer(&self, observer: SessionObserver<I>) {
        *self.faults.session_observer.lock() = Some(observer);
    }

    fn note_session_event(&self, event: &SessionEvent<I>) {
        {
            let mut suspended = self.suspended.lock();
            match event {
                SessionEvent::PeerDisconnected(id) => {
                    if !suspended.contains(id) {
                        suspended.push(id.clone());
                    }
                }
                SessionEvent::PeerResumed(id) | SessionEvent::LeaseExpired(id) => {
                    suspended.retain(|s| s != id);
                }
            }
        }
        let obs = self.faults.session_observer.lock().clone();
        if let Some(obs) = obs {
            obs(event);
        }
    }

    fn fault_log(&self) -> Vec<FaultRecord<I>> {
        if self.faults.config.lock().is_none() {
            return Vec::new();
        }
        self.faults.log.lock().clone()
    }

    fn take_fault_log(&self) -> Vec<FaultRecord<I>> {
        if self.faults.config.lock().is_none() {
            return Vec::new();
        }
        std::mem::take(&mut *self.faults.log.lock())
    }

    fn set_latency_observer(&self, observer: LatencyObserver) {
        self.latency.set_observer(observer);
    }

    fn latency_samples(&self) -> Vec<LatencySample> {
        self.latency.samples()
    }

    fn take_latency_samples(&self) -> Vec<LatencySample> {
        self.latency.take_samples()
    }

    fn send(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        let start = Instant::now();
        let result = self.send_impl(from, to, msg, deadline);
        if result.is_ok() {
            self.latency.record(LatencyOp::Send, start.elapsed());
        }
        result
    }

    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        let start = Instant::now();
        let result = self.try_recv_impl(me, from);
        if matches!(result, Ok(Some(_))) {
            self.latency.record(LatencyOp::TryRecv, start.elapsed());
        }
        result
    }

    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        let start = Instant::now();
        let result = self.select_impl(me, arms, deadline);
        if matches!(
            result,
            Ok(Outcome::Received { .. }) | Ok(Outcome::Sent { .. })
        ) {
            self.latency.record(LatencyOp::Select, start.elapsed());
        }
        result
    }

    fn submit_send(
        self: Arc<Self>,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
        done: SendDone<I>,
    ) -> Result<(), (M, SendDone<I>)> {
        self.submit_send_native(from, to, msg, deadline, done);
        Ok(())
    }

    fn submit_select(
        self: Arc<Self>,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
        done: SelectDone<I, M>,
    ) -> Result<(), (Vec<Arm<I, M>>, SelectDone<I, M>)> {
        self.submit_select_native(me, arms, deadline, done);
        Ok(())
    }
}

impl<I, M> ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// [`Transport::send`] body; the trait method wraps it with latency
    /// recording.
    fn send_impl(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        if to == from {
            return Err(ChanError::Myself);
        }
        let to_ep = self.ensure(to)?;
        let from_ep = self.ensure(from)?;

        // Chaos hooks — two relaxed boolean loads on the fault-free path.
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(from, &from_ep)?;
        }
        let mut dup_info: Option<M> = None;
        if self.faults.msg_faults.load(Ordering::Relaxed) {
            if let Some(cfg) = self.chaos_cfg() {
                let has_msg = cfg.plan.has_message_faults();
                if has_msg || cfg.plan.has_connection_faults() {
                    let seq = self.chaos_edge_seq(from, &to_ep);
                    // Connection faults decide (and record) here at the
                    // sending edge like every other class — that is what
                    // keeps fault logs identical across transports — but
                    // are *enacted* only by connection-oriented hubs
                    // observing the record. In-process they are no-ops.
                    if cfg.plan.decide_partition(from, to, seq) {
                        self.record_fault(FaultKind::Partition, from, to, seq);
                    } else if cfg.plan.decide_sever(from, to, seq) {
                        self.record_fault(FaultKind::Sever, from, to, seq);
                    }
                    if has_msg {
                        let delayed = cfg.plan.decide_delay(from, to, seq);
                        let dropped = cfg.plan.decide_drop(from, to, seq);
                        if !dropped && cfg.plan.decide_duplicate(from, to, seq) {
                            // Recorded here, at decision time, so the fault
                            // log is a pure function of the plan; the
                            // redelivery below stays best-effort.
                            self.record_fault(FaultKind::Duplicate, from, to, seq);
                            dup_info = Some((cfg.clone_fn)(&msg));
                        }
                        if delayed {
                            self.record_fault(FaultKind::Delay, from, to, seq);
                            std::thread::sleep(cfg.plan.delay());
                        }
                        if dropped {
                            // Lost on the wire *after* transmission: the
                            // sender observes success (unless the peer is
                            // already gone); the receiver never sees it.
                            self.record_fault(FaultKind::Drop, from, to, seq);
                            if self.aborted.load(Ordering::SeqCst) {
                                return Err(ChanError::Aborted);
                            }
                            return match life_of(to_ep.life.load(Ordering::SeqCst)) {
                                PeerState::Done => Err(ChanError::Terminated(to.clone())),
                                _ => Ok(()),
                            };
                        }
                    }
                }
            }
        }

        // Phase 1: wait for the receiver to be active with a free slot,
        // then deposit. Everything happens under the *receiver's* lock.
        let mut st = to_ep.state.lock();
        loop {
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }
            match life_of(to_ep.life.load(Ordering::SeqCst)) {
                PeerState::Done => return Err(ChanError::Terminated(to.clone())),
                PeerState::Expected => {}
                PeerState::Active => {
                    if !st.inbox.contains_key(from) {
                        break;
                    }
                }
            }
            if Self::wait_on(&to_ep, &mut st, deadline) {
                return Err(ChanError::Timeout);
            }
        }
        st.inbox.insert(from.clone(), msg);
        st.bump_signal();
        self.activity.fetch_add(1, Ordering::Relaxed);
        let target = st.acks.get(from).copied().unwrap_or(0) + 1;

        // Phase 2: wait for pickup (still on the receiver's endpoint;
        // the pickup bumps `acks[from]` and notifies this condvar).
        to_ep.cond.notify_all();
        loop {
            if st.acks.get(from).copied().unwrap_or(0) >= target {
                break;
            }
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }
            if to_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
                // Receiver finished without taking the message: reclaim.
                st.inbox.remove(from);
                return Err(ChanError::Terminated(to.clone()));
            }
            if Self::wait_on(&to_ep, &mut st, deadline) {
                // Timed out waiting for pickup: reclaim the deposit so
                // the message is not delivered after we report failure.
                st.inbox.remove(from);
                return Err(ChanError::Timeout);
            }
        }

        // Rendezvous complete. Deliver the chaos duplicate, if planned
        // and the edge slot is free (best-effort redelivery).
        if let Some(copy) = dup_info {
            if !st.inbox.contains_key(from) && to_ep.life.load(Ordering::SeqCst) == LIFE_ACTIVE {
                st.inbox.insert(from.clone(), copy);
                st.bump_signal();
                self.activity.fetch_add(1, Ordering::Relaxed);
                drop(st);
                to_ep.cond.notify_all();
            }
        }
        Ok(())
    }

    /// [`Transport::try_recv`] body; the trait method wraps it with
    /// latency recording.
    fn try_recv_impl(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        if from == me {
            return Err(ChanError::Myself);
        }
        let from_ep = self.ensure(from)?;
        let me_ep = self.ensure(me)?;
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(me, &me_ep)?;
        }
        if self.aborted.load(Ordering::SeqCst) {
            return Err(ChanError::Aborted);
        }
        let mut st = me_ep.state.lock();
        if let Some(msg) = self.take_from(&mut st, me, from) {
            let watchers = st.watchers.clone();
            drop(st);
            // The sender's phase 2 sleeps on *my* condvar; watchers may
            // care about the freed slot.
            me_ep.cond.notify_all();
            Self::wake_watchers(watchers);
            return Ok(Some(msg));
        }
        drop(st);
        if from_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
            return Err(ChanError::Terminated(from.clone()));
        }
        Ok(None)
    }

    /// [`Transport::select`] body; the trait method wraps it with
    /// latency recording.
    fn select_impl(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        let (me_ep, mut reprs) = self.prepare_select(me, arms)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let watched = Self::register_watchers(token, &me_ep, &reprs);
        let result = self.select_loop(me, &me_ep, &mut reprs, deadline);
        Self::deregister_watchers(token, watched);
        result
    }

    /// Validates and resolves a selection's arms: the internal
    /// representation makes send messages take-able and resolves every
    /// named peer's endpoint once up front. Also counts the selection
    /// toward crash-at-step-*k*. Shared by the blocking and
    /// asynchronous paths.
    #[allow(clippy::type_complexity)]
    fn prepare_select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
    ) -> Result<
        (
            Arc<Endpoint<I, M>>,
            Vec<(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)>,
        ),
        ChanError<I>,
    > {
        if arms.is_empty() {
            return Err(ChanError::EmptySelect);
        }
        let me_ep = self.ensure(me)?;
        type ArmRepr<I, M> = (SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>);
        let mut reprs: Vec<ArmRepr<I, M>> = Vec::with_capacity(arms.len());
        for arm in arms {
            let (repr, named) = match arm {
                Arm::Recv(Source::Of(p)) => (SelRepr::Recv(Source::Of(p.clone())), Some(p)),
                Arm::Recv(Source::Any) => (SelRepr::Recv(Source::Any), None),
                Arm::Send { to, msg } => (
                    SelRepr::Send {
                        to: to.clone(),
                        msg: Some(msg),
                    },
                    Some(to),
                ),
                Arm::Watch(p) => (SelRepr::Watch(p.clone()), Some(p)),
            };
            let ep = match named {
                Some(p) => {
                    if p == *me {
                        return Err(ChanError::Myself);
                    }
                    Some(self.ensure(&p)?)
                }
                None => None,
            };
            reprs.push((repr, ep));
        }
        // Chaos: selection counts as one operation toward crash-at-step-k.
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(me, &me_ep)?;
        }
        Ok((me_ep, reprs))
    }

    /// Registers `me` as a send watcher on every send-arm target, so
    /// their offer publications and slot releases wake us. Every
    /// selection exit path must pass the returned endpoints to
    /// [`Self::deregister_watchers`].
    #[allow(clippy::type_complexity)]
    fn register_watchers(
        token: u64,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &[(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
    ) -> Vec<Arc<Endpoint<I, M>>> {
        let mut watched: Vec<Arc<Endpoint<I, M>>> = Vec::new();
        for (repr, ep) in reprs {
            if let (SelRepr::Send { .. }, Some(t_ep)) = (repr, ep) {
                if !watched.iter().any(|w| Arc::ptr_eq(w, t_ep)) {
                    t_ep.state.lock().watchers.push((token, me_ep.clone()));
                    watched.push(t_ep.clone());
                }
            }
        }
        watched
    }

    fn deregister_watchers(token: u64, watched: Vec<Arc<Endpoint<I, M>>>) {
        for t_ep in watched {
            t_ep.state.lock().watchers.retain(|(t, _)| *t != token);
        }
    }

    /// The selection loop body (watcher registration handled by the
    /// caller). `reprs` pairs each arm with its resolved endpoint.
    ///
    /// The loop shares its machinery — [`Self::take_claim`],
    /// [`Self::scan_arms`], [`Self::publish_offers`] — with the
    /// poll-based asynchronous selection, so the two paths cannot drift.
    #[allow(clippy::type_complexity)]
    fn select_loop(
        &self,
        me: &I,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &mut [(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        loop {
            let (sig0, claimed) = self.take_claim(me, me_ep, reprs);
            if let Some(outcome) = claimed {
                return Ok(outcome);
            }
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }
            if let Some(outcome) = self.scan_arms(me, me_ep, reprs)? {
                return Ok(outcome);
            }
            self.publish_offers(me_ep, reprs);
            // Sleep — unless the eventcount moved since the scan
            // started, in which case something changed mid-scan and we
            // rescan.
            let mut st = me_ep.state.lock();
            if st.signal != sig0 {
                continue;
            }
            if Self::wait_on(me_ep, &mut st, deadline) {
                // Deadline expired — unless a claim raced in, in which
                // case the loop head will honor it.
                let resolved = st
                    .wait
                    .as_ref()
                    .map(|w| w.resolved.is_some())
                    .unwrap_or(false);
                if !resolved {
                    st.wait = None;
                    return Err(ChanError::Timeout);
                }
            }
        }
    }

    /// Loop head of a selection, under `me`'s own lock: snapshots the
    /// eventcount, withdraws any published offers so no claim can land
    /// mid-scan, and honors a claim left by a sender while we slept
    /// (priority even over aborts — the claiming sender already
    /// returned success).
    #[allow(clippy::type_complexity)]
    fn take_claim(
        &self,
        me: &I,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &[(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
    ) -> (u64, Option<Outcome<I, M>>) {
        let mut st = me_ep.state.lock();
        let sig0 = st.signal;
        if let Some(entry) = st.wait.take() {
            if let Some(from) = entry.resolved {
                let msg = self
                    .take_from(&mut st, me, &from)
                    .expect("claim implies a deposited message");
                let watchers = st.watchers.clone();
                drop(st);
                me_ep.cond.notify_all();
                Self::wake_watchers(watchers);
                let arm = reprs
                    .iter()
                    .position(|(r, _)| match r {
                        SelRepr::Recv(Source::Any) => true,
                        SelRepr::Recv(Source::Of(p)) => *p == from,
                        _ => false,
                    })
                    .expect("claim matched an offered receive arm");
                return (sig0, Some(Outcome::Received { arm, from, msg }));
            }
        }
        (sig0, None)
    }

    /// Publishes `me`'s receive offers so send arms elsewhere can claim
    /// us, then wakes the selectors watching us.
    #[allow(clippy::type_complexity)]
    fn publish_offers(
        &self,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &[(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
    ) {
        let offers: Vec<Source<I>> = reprs
            .iter()
            .filter_map(|(r, _)| match r {
                SelRepr::Recv(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        let watchers;
        {
            let mut st = me_ep.state.lock();
            st.wait = Some(WaitEntry {
                offers,
                resolved: None,
            });
            watchers = st.watchers.clone();
        }
        Self::wake_watchers(watchers);
    }

    /// One fairness-shuffled pass over the arms, locking only the
    /// endpoint each arm concerns (never two at once). `Ok(Some(..))`:
    /// an arm fired. `Ok(None)`: nothing ready, but something may yet
    /// fire. `Err(..)`: every arm is permanently unfireable.
    #[allow(clippy::type_complexity)]
    fn scan_arms(
        &self,
        me: &I,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &mut [(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
    ) -> Result<Option<Outcome<I, M>>, ChanError<I>> {
        {
            let mut order: Vec<usize> = (0..reprs.len()).collect();
            order.shuffle(&mut me_ep.state.lock().rng);
            let mut any_live = false;
            for idx in order {
                let (repr, arm_ep) = &mut reprs[idx];
                match repr {
                    SelRepr::Recv(Source::Of(p)) => {
                        let p = p.clone();
                        let mut st = me_ep.state.lock();
                        if let Some(msg) = self.take_from(&mut st, me, &p) {
                            let watchers = st.watchers.clone();
                            drop(st);
                            me_ep.cond.notify_all();
                            Self::wake_watchers(watchers);
                            return Ok(Some(Outcome::Received {
                                arm: idx,
                                from: p,
                                msg,
                            }));
                        }
                        drop(st);
                        let p_ep = arm_ep.as_ref().expect("named arm resolved");
                        if p_ep.life.load(Ordering::SeqCst) != LIFE_DONE {
                            any_live = true;
                        }
                    }
                    SelRepr::Recv(Source::Any) => {
                        let mut st = me_ep.state.lock();
                        let senders: Vec<I> = st.inbox.keys().cloned().collect();
                        if let Some(from) = senders.choose(&mut st.rng).cloned() {
                            let msg = self
                                .take_from(&mut st, me, &from)
                                .expect("chosen sender has a message");
                            let watchers = st.watchers.clone();
                            drop(st);
                            me_ep.cond.notify_all();
                            Self::wake_watchers(watchers);
                            return Ok(Some(Outcome::Received {
                                arm: idx,
                                from,
                                msg,
                            }));
                        }
                        drop(st);
                        if self.any_possible_sender(me) {
                            any_live = true;
                        }
                    }
                    SelRepr::Send { to, msg } => {
                        let to = to.clone();
                        let t_ep = arm_ep.as_ref().expect("named arm resolved").clone();
                        match life_of(t_ep.life.load(Ordering::SeqCst)) {
                            PeerState::Done => {}
                            PeerState::Expected => any_live = true,
                            PeerState::Active => {
                                any_live = true;
                                let mut ts = t_ep.state.lock();
                                let slot_free = !ts.inbox.contains_key(me);
                                let claimable = slot_free
                                    && ts
                                        .wait
                                        .as_ref()
                                        .map(|w| w.resolved.is_none() && w.offers_from(me))
                                        .unwrap_or(false);
                                if claimable {
                                    let m = msg.take().expect("send arm fires at most once");
                                    // Chaos: a dropped send arm still
                                    // fires (the sender saw delivery) but
                                    // leaves the receiver waiting.
                                    if self.faults.msg_faults.load(Ordering::Relaxed) {
                                        if let Some(cfg) = self.chaos_cfg() {
                                            if cfg.plan.has_message_faults() {
                                                let c =
                                                    ts.chaos_in_seqs.entry(me.clone()).or_insert(0);
                                                let seq = *c;
                                                *c += 1;
                                                if cfg.plan.decide_drop(me, &to, seq) {
                                                    drop(ts);
                                                    self.record_fault(
                                                        FaultKind::Drop,
                                                        me,
                                                        &to,
                                                        seq,
                                                    );
                                                    return Ok(Some(Outcome::Sent {
                                                        arm: idx,
                                                        to,
                                                    }));
                                                }
                                            }
                                        }
                                    }
                                    ts.inbox.insert(me.clone(), m);
                                    ts.wait.as_mut().expect("checked above").resolved =
                                        Some(me.clone());
                                    ts.bump_signal();
                                    self.activity.fetch_add(1, Ordering::Relaxed);
                                    drop(ts);
                                    t_ep.cond.notify_all();
                                    return Ok(Some(Outcome::Sent { arm: idx, to }));
                                }
                            }
                        }
                    }
                    SelRepr::Watch(p) => {
                        let p = p.clone();
                        let p_ep = arm_ep.as_ref().expect("named arm resolved");
                        if p_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
                            let pending = me_ep.state.lock().inbox.contains_key(&p);
                            if !pending {
                                return Ok(Some(Outcome::Terminated { arm: idx, peer: p }));
                            }
                            // A message from the dead peer is still
                            // pending: a recv arm must drain it first;
                            // the watch arm stays pending.
                            any_live = true;
                        } else {
                            any_live = true;
                        }
                    }
                }
            }

            if !any_live {
                // Every arm is permanently unfireable.
                if reprs.len() == 1 {
                    if let (SelRepr::Recv(Source::Of(p)) | SelRepr::Send { to: p, .. }, _) =
                        &reprs[0]
                    {
                        return Err(ChanError::Terminated(p.clone()));
                    }
                }
                return Err(ChanError::AllTerminated);
            }
        }
        Ok(None)
    }
}

/// Internal selection-arm representation (named at module scope so the
/// helper method can reference it).
enum SelRepr<I, M> {
    Recv(Source<I>),
    Send { to: I, msg: Option<M> },
    Watch(I),
}

// ---------------------------------------------------------------------
// Asynchronous operations: nonblocking state machines for send/select,
// driven by one scheduler thread per transport.
//
// The blocking paths above park a caller thread on an endpoint condvar;
// the machines below park a *token* on the endpoint instead
// (`EpState::op_waiters`) and re-poll when the eventcount bumps. The
// two paths share the same scan/claim/deposit code, so a hub serving
// thousands of spokes multiplexes every blocked rendezvous onto a
// single thread without any change in observable semantics.
// ---------------------------------------------------------------------

/// Shared handle between the transport, its scheduler thread, and the
/// endpoints that park asynchronous operations.
struct SchedShared<I, M> {
    queue: Mutex<SchedState<I, M>>,
    cond: Condvar,
}

/// The scheduler's run state: parked op state machines, tokens due for
/// a poll, and the timer heap (deadlines and chaos-delay gates),
/// earliest first.
struct SchedState<I, M> {
    ready: VecDeque<u64>,
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    ops: HashMap<u64, AsyncOp<I, M>>,
    shutdown: bool,
}

/// A parked asynchronous operation.
enum AsyncOp<I, M> {
    Send(SendOp<I, M>),
    Select(SelectOp<I, M>),
}

/// The nonblocking counterpart of `send_impl`'s two-phase rendezvous.
struct SendOp<I, M> {
    from: I,
    to: I,
    to_ep: Arc<Endpoint<I, M>>,
    /// Taken at deposit (the phase 1 → 2 transition).
    msg: Option<M>,
    /// Chaos duplicate, redelivered best-effort after pickup.
    dup: Option<M>,
    /// The `acks[from]` level that proves pickup; `Some` once deposited.
    ack_target: Option<u64>,
    /// Chaos-delay gate: the machine does not run before this (the
    /// blocking path sleeps here; the nonblocking one arms a timer).
    ready_at: Option<Instant>,
    deadline: Option<Instant>,
    started: Instant,
    done: Option<SendDone<I>>,
}

/// The nonblocking counterpart of `select_loop`.
struct SelectOp<I, M> {
    me: I,
    me_ep: Arc<Endpoint<I, M>>,
    #[allow(clippy::type_complexity)]
    reprs: Vec<(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)>,
    /// Send-arm targets we registered as a watcher on.
    watched: Vec<Arc<Endpoint<I, M>>>,
    /// Watcher-registration token (also the op's scheduler token).
    wtoken: u64,
    deadline: Option<Instant>,
    started: Instant,
    done: Option<SelectDone<I, M>>,
}

/// The scheduler thread: pops runnable op tokens (readiness wakeups
/// first, then due timers), polls each op's state machine outside the
/// queue lock, and completes or re-parks it. One thread serves every
/// in-flight asynchronous operation on the transport; it exits when
/// the transport is dropped.
fn scheduler_loop<I, M>(transport: Weak<ShardedTransport<I, M>>, sched: Arc<SchedShared<I, M>>)
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    loop {
        let token = {
            let mut q = sched.queue.lock();
            loop {
                if q.shutdown {
                    q.ops.clear();
                    return;
                }
                if let Some(t) = q.ready.pop_front() {
                    break t;
                }
                match q.timers.peek().copied() {
                    Some(Reverse((at, t))) => {
                        if at <= Instant::now() {
                            q.timers.pop();
                            break t;
                        }
                        sched.cond.wait_until(&mut q, at);
                    }
                    None => {
                        sched.cond.wait(&mut q);
                    }
                }
            }
        };
        let Some(t) = transport.upgrade() else {
            sched.queue.lock().ops.clear();
            return;
        };
        // A token may outlive its op (stale waiter or timer): skip.
        let Some(op) = sched.queue.lock().ops.remove(&token) else {
            continue;
        };
        t.drive_op(token, op, &sched);
    }
}

impl<I, M> ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// The transport's scheduler, started on first use. The thread
    /// holds only a weak reference back, so it cannot keep the
    /// transport alive; [`ShardedTransport`]'s `Drop` releases it.
    fn scheduler(this: &Arc<Self>) -> Arc<SchedShared<I, M>> {
        let mut guard = this.sched.lock();
        if let Some(s) = guard.as_ref() {
            return s.clone();
        }
        let sched = Arc::new(SchedShared {
            queue: Mutex::new(SchedState {
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
                ops: HashMap::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
        });
        let weak = Arc::downgrade(this);
        let handle = Arc::clone(&sched);
        std::thread::Builder::new()
            .name("chan-async-sched".into())
            .spawn(move || scheduler_loop(weak, handle))
            .expect("spawn async-op scheduler");
        *guard = Some(Arc::clone(&sched));
        sched
    }

    /// Parks a new op with the scheduler: arms its deadline (and
    /// chaos-delay) timers and queues its first poll.
    fn enqueue_op(this: &Arc<Self>, token: u64, op: AsyncOp<I, M>, ready_at: Option<Instant>) {
        let deadline = match &op {
            AsyncOp::Send(s) => s.deadline,
            AsyncOp::Select(s) => s.deadline,
        };
        let sched = Self::scheduler(this);
        let mut q = sched.queue.lock();
        q.ops.insert(token, op);
        if let Some(d) = deadline {
            q.timers.push(Reverse((d, token)));
        }
        match ready_at {
            Some(at) => q.timers.push(Reverse((at, token))),
            None => q.ready.push_back(token),
        }
        drop(q);
        sched.cond.notify_one();
    }

    /// Polls `op` once; on completion runs its callback (with latency
    /// recording), otherwise re-parks it.
    fn drive_op(&self, token: u64, mut op: AsyncOp<I, M>, sched: &Arc<SchedShared<I, M>>) {
        match op {
            AsyncOp::Send(ref mut s) => match self.poll_send(token, s, sched) {
                Some(result) => {
                    let started = s.started;
                    let done = s.done.take().expect("send completes once");
                    self.finish_send(done, started, result);
                }
                None => {
                    sched.queue.lock().ops.insert(token, op);
                }
            },
            AsyncOp::Select(ref mut s) => match self.poll_select(token, s, sched) {
                Some(result) => {
                    let wtoken = s.wtoken;
                    Self::deregister_watchers(wtoken, std::mem::take(&mut s.watched));
                    let started = s.started;
                    let done = s.done.take().expect("select completes once");
                    self.finish_select(done, started, result);
                }
                None => {
                    sched.queue.lock().ops.insert(token, op);
                }
            },
        }
    }

    /// Completes an asynchronous send: records latency on success, as
    /// the blocking wrapper does, then fires the callback.
    fn finish_send(&self, done: SendDone<I>, started: Instant, result: Result<(), ChanError<I>>) {
        if result.is_ok() {
            self.latency.record(LatencyOp::Send, started.elapsed());
        }
        done(result);
    }

    /// Completes an asynchronous selection, recording latency on a
    /// fired arm as the blocking wrapper does.
    fn finish_select(
        &self,
        done: SelectDone<I, M>,
        started: Instant,
        result: Result<Outcome<I, M>, ChanError<I>>,
    ) {
        if matches!(
            result,
            Ok(Outcome::Received { .. }) | Ok(Outcome::Sent { .. })
        ) {
            self.latency.record(LatencyOp::Select, started.elapsed());
        }
        done(result);
    }

    /// [`Transport::submit_send`] body. Chaos decisions happen here,
    /// synchronously at submission, exactly where the blocking path
    /// makes them — so fault records (and any observer-driven push
    /// frames) always precede the operation's completion.
    fn submit_send_native(
        self: Arc<Self>,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
        done: SendDone<I>,
    ) {
        let started = Instant::now();
        if to == from {
            return self.finish_send(done, started, Err(ChanError::Myself));
        }
        let to_ep = match self.ensure(to) {
            Ok(ep) => ep,
            Err(e) => return self.finish_send(done, started, Err(e)),
        };
        let from_ep = match self.ensure(from) {
            Ok(ep) => ep,
            Err(e) => return self.finish_send(done, started, Err(e)),
        };
        if self.faults.crashes.load(Ordering::Relaxed) {
            if let Err(e) = self.chaos_step(from, &from_ep) {
                return self.finish_send(done, started, Err(e));
            }
        }
        let mut dup: Option<M> = None;
        let mut ready_at: Option<Instant> = None;
        if self.faults.msg_faults.load(Ordering::Relaxed) {
            if let Some(cfg) = self.chaos_cfg() {
                let has_msg = cfg.plan.has_message_faults();
                if has_msg || cfg.plan.has_connection_faults() {
                    let seq = self.chaos_edge_seq(from, &to_ep);
                    if cfg.plan.decide_partition(from, to, seq) {
                        self.record_fault(FaultKind::Partition, from, to, seq);
                    } else if cfg.plan.decide_sever(from, to, seq) {
                        self.record_fault(FaultKind::Sever, from, to, seq);
                    }
                    if has_msg {
                        let delayed = cfg.plan.decide_delay(from, to, seq);
                        let dropped = cfg.plan.decide_drop(from, to, seq);
                        if !dropped && cfg.plan.decide_duplicate(from, to, seq) {
                            self.record_fault(FaultKind::Duplicate, from, to, seq);
                            dup = Some((cfg.clone_fn)(&msg));
                        }
                        if delayed {
                            self.record_fault(FaultKind::Delay, from, to, seq);
                            ready_at = Some(Instant::now() + cfg.plan.delay());
                        }
                        if dropped {
                            self.record_fault(FaultKind::Drop, from, to, seq);
                            let result = if self.aborted.load(Ordering::SeqCst) {
                                Err(ChanError::Aborted)
                            } else {
                                match life_of(to_ep.life.load(Ordering::SeqCst)) {
                                    PeerState::Done => Err(ChanError::Terminated(to.clone())),
                                    _ => Ok(()),
                                }
                            };
                            return self.finish_send(done, started, result);
                        }
                    }
                }
            }
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let op = AsyncOp::Send(SendOp {
            from: from.clone(),
            to: to.clone(),
            to_ep,
            msg: Some(msg),
            dup,
            ack_target: None,
            ready_at,
            deadline,
            started,
            done: Some(done),
        });
        Self::enqueue_op(&self, token, op, ready_at);
    }

    /// [`Transport::submit_select`] body: validation, chaos, and
    /// watcher registration happen synchronously at submission; the
    /// scan runs on the scheduler.
    fn submit_select_native(
        self: Arc<Self>,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
        done: SelectDone<I, M>,
    ) {
        let started = Instant::now();
        match self.prepare_select(me, arms) {
            Err(e) => self.finish_select(done, started, Err(e)),
            Ok((me_ep, reprs)) => {
                let token = self.next_token.fetch_add(1, Ordering::Relaxed);
                let watched = Self::register_watchers(token, &me_ep, &reprs);
                let op = AsyncOp::Select(SelectOp {
                    me: me.clone(),
                    me_ep,
                    reprs,
                    watched,
                    wtoken: token,
                    deadline,
                    started,
                    done: Some(done),
                });
                Self::enqueue_op(&self, token, op, None);
            }
        }
    }

    /// One poll of an asynchronous send. `Some(result)`: complete.
    /// `None`: parked (a waiter is registered on the receiver's
    /// endpoint, or the chaos-delay timer was re-armed).
    ///
    /// Mirrors `send_impl`'s two blocking loops phase for phase; the
    /// only divergence is that waiting registers the op token on the
    /// receiver's endpoint instead of sleeping on its condvar.
    fn poll_send(
        &self,
        token: u64,
        op: &mut SendOp<I, M>,
        sched: &Arc<SchedShared<I, M>>,
    ) -> Option<Result<(), ChanError<I>>> {
        let now = Instant::now();
        if let Some(at) = op.ready_at {
            if now < at {
                sched.queue.lock().timers.push(Reverse((at, token)));
                return None;
            }
            op.ready_at = None;
        }
        let to_ep = Arc::clone(&op.to_ep);
        let mut st = to_ep.state.lock();
        loop {
            match op.ack_target {
                None => {
                    // Phase 1: deposit once the receiver is active with
                    // a free slot.
                    if self.aborted.load(Ordering::SeqCst) {
                        return Some(Err(ChanError::Aborted));
                    }
                    match life_of(to_ep.life.load(Ordering::SeqCst)) {
                        PeerState::Done => {
                            return Some(Err(ChanError::Terminated(op.to.clone())));
                        }
                        PeerState::Active if !st.inbox.contains_key(&op.from) => {
                            let msg = op.msg.take().expect("message deposited once");
                            st.inbox.insert(op.from.clone(), msg);
                            st.bump_signal();
                            self.activity.fetch_add(1, Ordering::Relaxed);
                            op.ack_target = Some(st.acks.get(&op.from).copied().unwrap_or(0) + 1);
                            to_ep.cond.notify_all();
                            continue;
                        }
                        _ => {}
                    }
                }
                Some(target) => {
                    // Phase 2: await pickup.
                    if st.acks.get(&op.from).copied().unwrap_or(0) >= target {
                        // Rendezvous complete; best-effort duplicate.
                        if let Some(copy) = op.dup.take() {
                            if !st.inbox.contains_key(&op.from)
                                && to_ep.life.load(Ordering::SeqCst) == LIFE_ACTIVE
                            {
                                st.inbox.insert(op.from.clone(), copy);
                                st.bump_signal();
                                self.activity.fetch_add(1, Ordering::Relaxed);
                                drop(st);
                                to_ep.cond.notify_all();
                                return Some(Ok(()));
                            }
                        }
                        return Some(Ok(()));
                    }
                    if self.aborted.load(Ordering::SeqCst) {
                        return Some(Err(ChanError::Aborted));
                    }
                    if to_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
                        // Receiver finished without taking it: reclaim.
                        st.inbox.remove(&op.from);
                        return Some(Err(ChanError::Terminated(op.to.clone())));
                    }
                }
            }
            // Not ready: past the deadline time out (reclaiming an
            // un-picked-up deposit), else park on the receiver.
            if op.deadline.is_some_and(|d| now >= d) {
                if op.ack_target.is_some() {
                    st.inbox.remove(&op.from);
                }
                return Some(Err(ChanError::Timeout));
            }
            st.op_waiters.push((token, Arc::clone(sched)));
            return None;
        }
    }

    /// One poll of an asynchronous selection, via the same
    /// claim/scan/publish helpers the blocking loop uses. `Some`:
    /// complete. `None`: parked on `me`'s endpoint with offers
    /// published.
    fn poll_select(
        &self,
        token: u64,
        op: &mut SelectOp<I, M>,
        sched: &Arc<SchedShared<I, M>>,
    ) -> Option<Result<Outcome<I, M>, ChanError<I>>> {
        loop {
            let (sig0, claimed) = self.take_claim(&op.me, &op.me_ep, &op.reprs);
            if let Some(outcome) = claimed {
                return Some(Ok(outcome));
            }
            if self.aborted.load(Ordering::SeqCst) {
                return Some(Err(ChanError::Aborted));
            }
            match self.scan_arms(&op.me, &op.me_ep, &mut op.reprs) {
                Ok(Some(outcome)) => return Some(Ok(outcome)),
                Ok(None) => {}
                Err(e) => return Some(Err(e)),
            }
            self.publish_offers(&op.me_ep, &op.reprs);
            let mut st = op.me_ep.state.lock();
            if st.signal != sig0 {
                continue;
            }
            if op.deadline.is_some_and(|d| Instant::now() >= d) {
                // The eventcount is unmoved, so no claim can have
                // landed: withdraw the offers and time out, exactly as
                // the blocking loop does on a pure deadline expiry.
                st.wait = None;
                return Some(Err(ChanError::Timeout));
            }
            st.op_waiters.push((token, Arc::clone(sched)));
            return None;
        }
    }
}
