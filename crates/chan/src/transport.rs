//! The transport seam and the sharded in-process implementation.
//!
//! [`Transport`] abstracts the blocking rendezvous substrate a
//! [`Network`](crate::Network) runs on, so a future remote backend can
//! slot in without touching the engine or the translations.
//!
//! [`ShardedTransport`] is the in-process implementation: **one lock +
//! condvar per endpoint** instead of one per network. Hot-path
//! operations touch only the endpoints they name:
//!
//! * `send(a → b)` deposits into, and awaits pickup on, *b*'s endpoint;
//! * a selection by *s* sleeps on *s*'s own condvar; deposits to *s* and
//!   claims of *s*'s published offers land under *s*'s lock;
//! * a send arm `s → t` registers *s* as a *send watcher* on *t*, so
//!   *t*'s offer publications and slot releases wake exactly the
//!   selectors that care.
//!
//! Rare lifecycle transitions (declare/activate/finish/seal/abort) bump
//! a per-endpoint event counter and broadcast to every endpoint — the
//! only remaining thundering herd, and it fires once per role lifetime,
//! not once per message.
//!
//! Lost wakeups are prevented by an eventcount: every change a sleeping
//! selector could care about increments the endpoint's `signal` under
//! its lock; selectors re-read the counter before parking and rescan if
//! it moved. Locks are never nested endpoint-to-endpoint, so the
//! implementation is deadlock-free by construction.
//!
//! Fault decisions are routed at the edge: per-edge sequence counters
//! live in the *receiver's* endpoint and crash-step counters in the
//! operator's own endpoint, so decisions remain pure functions of
//! (seed, edge, seq) — determinism is preserved shard by shard. When the
//! attached plan cannot inject message faults (or crashes), the
//! corresponding hot path is gated by a single relaxed boolean load,
//! checked once per operation instead of consulting the plan per hop.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::fault::{FaultKind, FaultPlan, FaultRecord};
use crate::network::PeerState;
use crate::select::{Arm, Outcome, Source};
use crate::ChanError;

/// Callback invoked on every injected fault (see
/// [`Network::set_fault_observer`](crate::Network::set_fault_observer)).
pub type FaultObserver<I> = Arc<dyn Fn(&FaultRecord<I>) + Send + Sync>;

/// Callback invoked on every recorded latency sample (see
/// [`Network::set_latency_observer`](crate::Network::set_latency_observer)).
pub type LatencyObserver = Arc<dyn Fn(&LatencySample) + Send + Sync>;

/// A connection-lifecycle transition observed by a session-aware
/// transport (see
/// [`Network::set_session_observer`](crate::Network::set_session_observer)).
///
/// The in-process transport has no connections and never emits these;
/// a connection-oriented transport with a session layer emits them when
/// a peer's link drops, when it resumes within its lease, and when its
/// lease expires and the peer degrades to a crashed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent<I> {
    /// `I`'s connection was severed; its session (and the performances
    /// it is bound to) stay alive until the lease expires.
    PeerDisconnected(I),
    /// A severed peer presented its session id again within the lease
    /// and resumed where it left off.
    PeerResumed(I),
    /// A severed peer's lease expired without a resume; it now degrades
    /// exactly like a crashed peer (`Terminated`, watchdog `Stalled`).
    LeaseExpired(I),
}

/// Callback invoked on every session-lifecycle transition.
pub type SessionObserver<I> = Arc<dyn Fn(&SessionEvent<I>) + Send + Sync>;

/// Which blocking operation a [`LatencySample`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyOp {
    /// A synchronous send that completed its rendezvous.
    Send,
    /// A selection that fired a receive or send arm.
    Select,
    /// A non-blocking receive that took a deposited message.
    TryRecv,
}

/// One *successful* operation's wall-clock latency, as observed by the
/// participant that issued it.
///
/// Failed operations, empty polls, and lifecycle calls are not sampled:
/// they measure control flow, not rendezvous cost, and tiny poll
/// samples would drag the quantiles under what an actual rendezvous
/// needs. For a remote transport the elapsed time includes the RPC
/// round trip, so hub-side rendezvous time is attributed to the
/// performance that paid for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LatencySample {
    /// The operation measured.
    pub op: LatencyOp,
    /// Wall-clock time from issue to completion.
    pub elapsed: Duration,
}

/// The blocking rendezvous substrate a [`Network`](crate::Network) runs
/// on.
///
/// All methods are object-safe: a `Network` holds an
/// `Arc<dyn Transport>`, so alternative backends (a remote transport, an
/// instrumented wrapper) plug in via
/// [`Network::with_transport`](crate::Network::with_transport) without
/// another engine rewrite. Message duplication support passes a
/// `clone_fn` alongside the plan so the trait itself needs no
/// `M: Clone` bound.
///
/// # Contract
///
/// Every implementation must satisfy the observable behavior below; the
/// [`conformance`](crate::conformance) module checks it mechanically and
/// must pass for any new backend.
///
/// * **Rendezvous.** [`Transport::send`] completes only when the
///   receiver has picked the message up (or fails); at most one message
///   per directed edge is in flight, so messages from one sender arrive
///   in send order (per-edge FIFO).
/// * **Lifecycle.** Peers move `Expected → Active → Done`;
///   [`Transport::declare`] never downgrades a state. Operations naming
///   an `Expected` peer block (the role may yet enroll); operations
///   naming a `Done` peer fail with [`ChanError::Terminated`] *after*
///   any already-deposited message from it has been drained. A
///   selection whose arms are all permanently unfireable fails with
///   `Terminated` (single named peer) or [`ChanError::AllTerminated`].
/// * **Selection.** [`Transport::select`] fires exactly one arm, chosen
///   fairly among ready alternatives (seeded by
///   [`Transport::reseed`] for reproducibility); a send arm fires only
///   by claiming a peer already committed to a matching receive, so a
///   fired send arm proves delivery. Watch arms fire only once nothing
///   from the watched peer remains undelivered.
/// * **Deadlines.** An expired deadline surfaces
///   [`ChanError::Timeout`] and leaves no partial effect: a send that
///   timed out awaiting pickup reclaims its deposit.
/// * **Abort.** [`Transport::abort`] fails every blocked and future
///   operation with [`ChanError::Aborted`]; an already-claimed
///   rendezvous still completes (the sender has already seen success).
/// * **Faults.** With a [`FaultPlan`] attached, injection decisions are
///   pure functions of (seed, edge, per-edge sequence) made at the
///   *sending* edge, so the fault log for a fixed communication
///   schedule is identical across runs — and across transports. Remote
///   peer loss (a disconnected process) surfaces as the same
///   [`ChanError::Terminated`] a crashed peer produces.
/// * **Latency.** Measuring backends record a [`LatencySample`] for
///   every successful `send`, fired `select`, and non-empty `try_recv`
///   — and only those — so the per-operation sample counts for a fixed
///   communication schedule match across transports even though the
///   elapsed times differ.
pub trait Transport<I, M>: Send + Sync {
    /// Declares `id` as expected (idempotent, never downgrades).
    fn declare(&self, id: I);
    /// Marks `id` active, declaring it if necessary.
    fn activate(&self, id: I);
    /// Marks `id` done (finished or permanently barred).
    fn finish(&self, id: I);
    /// Seals: expected peers become done; on implicitly-declaring
    /// transports, future unknown peers are declared done.
    fn seal(&self);
    /// Aborts every blocked and future operation.
    fn abort(&self);
    /// Whether the transport has been aborted.
    fn is_aborted(&self) -> bool;
    /// Lifecycle state of `id`, `None` if never declared.
    fn peer_state(&self, id: &I) -> Option<PeerState>;
    /// All declared peers and their states, in unspecified order.
    fn peers(&self) -> Vec<(I, PeerState)>;
    /// Monotone progress counter (see
    /// [`Network::activity`](crate::Network::activity)).
    fn activity(&self) -> u64;
    /// Re-seeds the per-endpoint selection RNGs from `seed`.
    fn reseed(&self, seed: u64);
    /// Ensures `id` exists (implicit declaration if supported).
    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>>;
    /// Whether a message from `from` is deposited at `to` (diagnostic).
    fn has_pending_from(&self, to: &I, from: &I) -> bool;
    /// Attaches a fault plan; `clone_fn` materializes duplicates.
    fn set_fault_plan(&self, plan: FaultPlan, clone_fn: fn(&M) -> M);
    /// Detaches the fault plan and discards its log.
    fn clear_fault_plan(&self);
    /// The currently attached plan, if any.
    fn fault_plan(&self) -> Option<FaultPlan>;
    /// Registers the fault observer callback.
    fn set_fault_observer(&self, observer: FaultObserver<I>);
    /// A copy of the fault log.
    fn fault_log(&self) -> Vec<FaultRecord<I>>;
    /// Drains and returns the fault log.
    fn take_fault_log(&self) -> Vec<FaultRecord<I>>;
    /// Registers a callback invoked after every successful blocking
    /// operation with its measured latency. Backends that do not
    /// measure may ignore it (the default does).
    fn set_latency_observer(&self, observer: LatencyObserver) {
        let _ = observer;
    }
    /// A copy of the recent latency samples, oldest first (bounded:
    /// implementations retain a fixed number of recent samples).
    fn latency_samples(&self) -> Vec<LatencySample> {
        Vec::new()
    }
    /// Drains and returns the recent latency samples.
    fn take_latency_samples(&self) -> Vec<LatencySample> {
        Vec::new()
    }
    /// Registers a callback invoked on session-lifecycle transitions
    /// (disconnect, resume, lease expiry). Backends without a session
    /// layer never emit any and may ignore it (the default does).
    fn set_session_observer(&self, observer: SessionObserver<I>) {
        let _ = observer;
    }
    /// Feeds one session-lifecycle event to the registered observer.
    /// A hub serving this transport over a network calls this so
    /// participants local to the hub observe remote peers' lifecycle;
    /// backends that store no observer ignore it (the default does).
    fn note_session_event(&self, event: &SessionEvent<I>) {
        let _ = event;
    }
    /// Synchronous send `from → to` (two-phase rendezvous).
    fn send(&self, from: &I, to: &I, msg: M, deadline: Option<Instant>)
        -> Result<(), ChanError<I>>;
    /// Non-blocking receive of a deposited message.
    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>>;
    /// Guarded selection over `arms` on behalf of `me`.
    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>>;
}

const LIFE_EXPECTED: u8 = 0;
const LIFE_ACTIVE: u8 = 1;
const LIFE_DONE: u8 = 2;

fn life_of(v: u8) -> PeerState {
    match v {
        LIFE_ACTIVE => PeerState::Active,
        LIFE_DONE => PeerState::Done,
        _ => PeerState::Expected,
    }
}

#[derive(Debug)]
struct WaitEntry<I> {
    /// The receive sources this blocked participant is offering.
    offers: Vec<Source<I>>,
    /// Set by a claiming sender: the peer whose message must be taken.
    resolved: Option<I>,
}

impl<I: PartialEq> WaitEntry<I> {
    fn offers_from(&self, sender: &I) -> bool {
        self.offers
            .iter()
            .any(|s| matches!(s, Source::Any) || matches!(s, Source::Of(p) if p == sender))
    }
}

/// One participant's shard: its own lock, condvar, and lifecycle word.
struct Endpoint<I, M> {
    /// Lifecycle (`LIFE_*`), readable without the lock.
    life: AtomicU8,
    state: Mutex<EpState<I, M>>,
    cond: Condvar,
}

struct EpState<I, M> {
    /// Messages to me, keyed by sender: at most one in flight per edge.
    inbox: HashMap<I, M>,
    /// Pickup counts per sender, awaited by the sender's phase 2.
    acks: HashMap<I, u64>,
    /// My published receive offers, claimable by send arms.
    wait: Option<WaitEntry<I>>,
    /// Eventcount: bumped under this lock on every change a sleeper on
    /// `cond` could care about. Selectors re-read it before parking.
    signal: u64,
    /// Selectors with a send arm targeting me, woken when my offers or
    /// inbox slots change. `(token, endpoint)` so a selector can remove
    /// exactly its own registration.
    watchers: Vec<(u64, Arc<Endpoint<I, M>>)>,
    /// Fair-choice RNG for selections by this endpoint.
    rng: SmallRng,
    /// Per-edge send counters for edges *into* me (chaos decisions).
    chaos_in_seqs: HashMap<I, u64>,
    /// My operation counter driving crash-at-step-*k*.
    chaos_steps: u64,
}

/// Chaos configuration, shared read-only once attached.
struct FaultConfig<M> {
    plan: FaultPlan,
    clone_fn: fn(&M) -> M,
}

/// Cold-path fault state: hot paths read only the two booleans.
struct FaultHooks<I, M> {
    /// `plan.has_message_faults() || plan.has_connection_faults()`,
    /// readable without a lock (both classes decide per message at the
    /// sending edge, so they share the per-send gate).
    msg_faults: AtomicBool,
    /// `plan.has_crashes()`, readable without a lock.
    crashes: AtomicBool,
    config: Mutex<Option<Arc<FaultConfig<M>>>>,
    observer: Mutex<Option<FaultObserver<I>>>,
    session_observer: Mutex<Option<SessionObserver<I>>>,
    log: Mutex<Vec<FaultRecord<I>>>,
}

/// Latency recording shared by measuring transports: a bounded ring of
/// recent samples plus an optional observer, both fed after every
/// successful blocking operation. Embed one and delegate the three
/// latency methods of [`Transport`] to it.
pub struct LatencyHooks {
    log: Mutex<VecDeque<LatencySample>>,
    observer: Mutex<Option<LatencyObserver>>,
}

/// Most recent latency samples retained per transport.
const LATENCY_LOG_CAP: usize = 1024;

impl fmt::Debug for LatencyHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHooks")
            .field("samples", &self.log.lock().len())
            .finish()
    }
}

impl Default for LatencyHooks {
    fn default() -> Self {
        Self {
            log: Mutex::new(VecDeque::with_capacity(64)),
            observer: Mutex::new(None),
        }
    }
}

impl LatencyHooks {
    /// Appends a sample (evicting the oldest past the cap) and notifies
    /// the observer, if any.
    pub fn record(&self, op: LatencyOp, elapsed: Duration) {
        let sample = LatencySample { op, elapsed };
        {
            let mut log = self.log.lock();
            if log.len() == LATENCY_LOG_CAP {
                log.pop_front();
            }
            log.push_back(sample);
        }
        let obs = self.observer.lock().clone();
        if let Some(obs) = obs {
            obs(&sample);
        }
    }

    /// Installs (replacing) the observer callback.
    pub fn set_observer(&self, observer: LatencyObserver) {
        *self.observer.lock() = Some(observer);
    }

    /// A copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<LatencySample> {
        self.log.lock().iter().copied().collect()
    }

    /// Drains and returns the retained samples.
    pub fn take_samples(&self) -> Vec<LatencySample> {
        self.log.lock().drain(..).collect()
    }
}

/// The in-process sharded transport (see the module docs).
pub struct ShardedTransport<I, M> {
    endpoints: RwLock<HashMap<I, Arc<Endpoint<I, M>>>>,
    implicit_declare: bool,
    sealed: AtomicBool,
    aborted: AtomicBool,
    activity: AtomicU64,
    /// Root seed for per-endpoint RNGs (`None` = entropy).
    seed: Mutex<Option<u64>>,
    /// Unique tokens for watcher registrations.
    next_token: AtomicU64,
    /// Peers currently severed but inside their session lease (a
    /// session-aware hub reports them via
    /// [`Transport::note_session_event`]). While any peer is suspended
    /// the network is *reconfiguring*, not quiescent — see
    /// [`ShardedTransport::activity`].
    suspended: Mutex<Vec<I>>,
    /// Per-read synthetic progress ticks handed out while a lease is
    /// pending.
    lease_ticks: AtomicU64,
    faults: FaultHooks<I, M>,
    latency: LatencyHooks,
}

impl<I, M> fmt::Debug for ShardedTransport<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedTransport")
            .field(
                "endpoints",
                &self.endpoints.read().map(|g| g.len()).unwrap_or(0),
            )
            .field("aborted", &self.aborted.load(Ordering::Relaxed))
            .field("sealed", &self.sealed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Derives a per-endpoint RNG seed from the root seed and the endpoint
/// id (deterministic within a build: `DefaultHasher::new` is keyless).
fn derive_seed<I: Hash>(root: u64, id: &I) -> u64 {
    let mut h = DefaultHasher::new();
    root.hash(&mut h);
    id.hash(&mut h);
    h.finish()
}

impl<I, M> ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// Creates a transport. `implicit_declare` networks auto-declare
    /// unknown peers; `seed` fixes the selection RNGs for reproducibility.
    pub fn new(implicit_declare: bool, seed: Option<u64>) -> Self {
        Self {
            endpoints: RwLock::new(HashMap::new()),
            implicit_declare,
            sealed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            activity: AtomicU64::new(0),
            seed: Mutex::new(seed),
            next_token: AtomicU64::new(0),
            suspended: Mutex::new(Vec::new()),
            lease_ticks: AtomicU64::new(0),
            faults: FaultHooks {
                msg_faults: AtomicBool::new(false),
                crashes: AtomicBool::new(false),
                config: Mutex::new(None),
                observer: Mutex::new(None),
                session_observer: Mutex::new(None),
                log: Mutex::new(Vec::new()),
            },
            latency: LatencyHooks::default(),
        }
    }

    fn new_endpoint(&self, id: &I, life: u8) -> Arc<Endpoint<I, M>> {
        let rng = match *self.seed.lock() {
            Some(root) => SmallRng::seed_from_u64(derive_seed(root, id)),
            None => SmallRng::from_entropy(),
        };
        Arc::new(Endpoint {
            life: AtomicU8::new(life),
            state: Mutex::new(EpState {
                inbox: HashMap::new(),
                acks: HashMap::new(),
                wait: None,
                signal: 0,
                watchers: Vec::new(),
                rng,
                chaos_in_seqs: HashMap::new(),
                chaos_steps: 0,
            }),
            cond: Condvar::new(),
        })
    }

    /// Read access to the endpoint registry (poisoning swallowed, in
    /// the style of the vendored `parking_lot` shim).
    fn registry(&self) -> RwLockReadGuard<'_, HashMap<I, Arc<Endpoint<I, M>>>> {
        self.endpoints
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn registry_mut(&self) -> RwLockWriteGuard<'_, HashMap<I, Arc<Endpoint<I, M>>>> {
        self.endpoints
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lookup(&self, id: &I) -> Option<Arc<Endpoint<I, M>>> {
        self.registry().get(id).cloned()
    }

    /// Gets the endpoint for `id`, creating it with `life` if absent.
    fn get_or_create(&self, id: &I, life: u8) -> Arc<Endpoint<I, M>> {
        if let Some(ep) = self.lookup(id) {
            return ep;
        }
        let mut w = self.registry_mut();
        if let Some(ep) = w.get(id) {
            return ep.clone();
        }
        let ep = self.new_endpoint(id, life);
        w.insert(id.clone(), ep.clone());
        ep
    }

    /// Resolves `id`, implicitly declaring it if the transport allows.
    fn ensure(&self, id: &I) -> Result<Arc<Endpoint<I, M>>, ChanError<I>> {
        if let Some(ep) = self.lookup(id) {
            return Ok(ep);
        }
        if self.implicit_declare {
            let life = if self.sealed.load(Ordering::SeqCst) {
                LIFE_DONE
            } else {
                LIFE_EXPECTED
            };
            Ok(self.get_or_create(id, life))
        } else {
            Err(ChanError::Unknown(id.clone()))
        }
    }

    /// Bumps every endpoint's eventcount and wakes all sleepers. Used by
    /// the rare lifecycle transitions (and abort/seal), whose effects
    /// any blocked operation anywhere may be waiting on.
    fn broadcast(&self) {
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in eps {
            ep.state.lock().signal += 1;
            ep.cond.notify_all();
        }
    }

    /// Wakes the selectors registered as send watchers on `ep`. Call
    /// *without* holding any endpoint lock; the snapshot was taken under
    /// `ep`'s lock.
    fn wake_watchers(watchers: Vec<(u64, Arc<Endpoint<I, M>>)>) {
        for (_, w) in watchers {
            w.state.lock().signal += 1;
            w.cond.notify_all();
        }
    }

    fn chaos_cfg(&self) -> Option<Arc<FaultConfig<M>>> {
        self.faults.config.lock().clone()
    }

    /// Records an injected fault in the log and tells the observer.
    fn record_fault(&self, kind: FaultKind, from: &I, to: &I, seq: u64) {
        let record = FaultRecord {
            kind,
            from: from.clone(),
            to: to.clone(),
            seq,
        };
        let obs = self.faults.observer.lock().clone();
        if let Some(obs) = obs {
            obs(&record);
        }
        self.faults.log.lock().push(record);
    }

    /// Counts one operation by `me` toward crash-at-step-*k*; on a
    /// crash, marks `me` done and broadcasts the transition.
    fn chaos_step(&self, me: &I, me_ep: &Arc<Endpoint<I, M>>) -> Result<(), ChanError<I>> {
        let Some(cfg) = self.chaos_cfg() else {
            return Ok(());
        };
        if !cfg.plan.has_crashes() {
            return Ok(());
        }
        let crashed = {
            let mut st = me_ep.state.lock();
            st.chaos_steps += 1;
            st.chaos_steps == cfg.plan.crash_step() && cfg.plan.decide_crash(me)
        };
        if crashed {
            me_ep.life.store(LIFE_DONE, Ordering::SeqCst);
            self.activity.fetch_add(1, Ordering::Relaxed);
            self.record_fault(FaultKind::Crash, me, me, cfg.plan.crash_step());
            self.broadcast();
            return Err(ChanError::Terminated(me.clone()));
        }
        Ok(())
    }

    /// Advances the per-edge counter for `from → to` under `to`'s lock.
    fn chaos_edge_seq(&self, from: &I, to_ep: &Arc<Endpoint<I, M>>) -> u64 {
        let mut st = to_ep.state.lock();
        let c = st.chaos_in_seqs.entry(from.clone()).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Takes the message from `from` out of `st`'s inbox, acking it.
    fn take_from(&self, st: &mut EpState<I, M>, from: &I) -> Option<M> {
        let msg = st.inbox.remove(from)?;
        *st.acks.entry(from.clone()).or_insert(0) += 1;
        st.signal += 1;
        self.activity.fetch_add(1, Ordering::Relaxed);
        Some(msg)
    }

    /// Any peer other than `me` that could still produce a message?
    fn any_possible_sender(&self, me: &I) -> bool {
        if self.implicit_declare && !self.sealed.load(Ordering::SeqCst) {
            return true;
        }
        self.registry()
            .iter()
            .any(|(id, ep)| id != me && ep.life.load(Ordering::SeqCst) != LIFE_DONE)
    }

    /// Waits on `ep`'s condvar. Returns `true` on deadline expiry.
    fn wait_on(
        ep: &Endpoint<I, M>,
        st: &mut parking_lot::MutexGuard<'_, EpState<I, M>>,
        deadline: Option<Instant>,
    ) -> bool {
        match deadline {
            Some(d) => ep.cond.wait_until(st, d).timed_out(),
            None => {
                ep.cond.wait(st);
                false
            }
        }
    }
}

impl<I, M> Transport<I, M> for ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    fn declare(&self, id: I) {
        self.get_or_create(&id, LIFE_EXPECTED);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn activate(&self, id: I) {
        let ep = self.get_or_create(&id, LIFE_ACTIVE);
        ep.life.store(LIFE_ACTIVE, Ordering::SeqCst);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn finish(&self, id: I) {
        let ep = self.get_or_create(&id, LIFE_DONE);
        ep.life.store(LIFE_DONE, Ordering::SeqCst);
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in &eps {
            let _ = ep.life.compare_exchange(
                LIFE_EXPECTED,
                LIFE_DONE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        self.activity.fetch_add(1, Ordering::Relaxed);
        self.broadcast();
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.broadcast();
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    fn peer_state(&self, id: &I) -> Option<PeerState> {
        self.lookup(id)
            .map(|ep| life_of(ep.life.load(Ordering::SeqCst)))
    }

    fn peers(&self) -> Vec<(I, PeerState)> {
        self.registry()
            .iter()
            .map(|(id, ep)| (id.clone(), life_of(ep.life.load(Ordering::SeqCst))))
            .collect()
    }

    fn activity(&self) -> u64 {
        let base = self.activity.load(Ordering::Relaxed);
        // Lease-aware watchdog interaction: while any peer is severed
        // but still inside its session lease, the network has promised
        // it may return — that window is reconfiguration, not
        // quiescence. Hand every sampler a changing value so no
        // watchdog declares a stall before the lease verdict is in;
        // once the set empties (resume or expiry) the counter reverts
        // to real progress and true stalls surface as before.
        if self.suspended.lock().is_empty() {
            base
        } else {
            base.wrapping_add(self.lease_ticks.fetch_add(1, Ordering::Relaxed) + 1)
        }
    }

    fn reseed(&self, seed: u64) {
        *self.seed.lock() = Some(seed);
        let eps: Vec<(I, Arc<Endpoint<I, M>>)> = self
            .registry()
            .iter()
            .map(|(id, ep)| (id.clone(), ep.clone()))
            .collect();
        for (id, ep) in eps {
            ep.state.lock().rng = SmallRng::seed_from_u64(derive_seed(seed, &id));
        }
    }

    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>> {
        self.ensure(id).map(|_| ())
    }

    fn has_pending_from(&self, to: &I, from: &I) -> bool {
        self.lookup(to)
            .map(|ep| ep.state.lock().inbox.contains_key(from))
            .unwrap_or(false)
    }

    fn set_fault_plan(&self, plan: FaultPlan, clone_fn: fn(&M) -> M) {
        let msg = plan.has_message_faults() || plan.has_connection_faults();
        let crashes = plan.has_crashes();
        *self.faults.config.lock() = Some(Arc::new(FaultConfig { plan, clone_fn }));
        self.faults.log.lock().clear();
        // Reset all fault counters so the new plan starts from seq 0.
        let eps: Vec<Arc<Endpoint<I, M>>> = self.registry().values().cloned().collect();
        for ep in eps {
            let mut st = ep.state.lock();
            st.chaos_in_seqs.clear();
            st.chaos_steps = 0;
        }
        // Flags last: a racing hot path that sees them set finds the
        // config already in place. A no-op plan leaves both false — the
        // per-message fault branch is hoisted out entirely at attach
        // time, not re-checked per hop.
        self.faults.msg_faults.store(msg, Ordering::SeqCst);
        self.faults.crashes.store(crashes, Ordering::SeqCst);
    }

    fn clear_fault_plan(&self) {
        self.faults.msg_faults.store(false, Ordering::SeqCst);
        self.faults.crashes.store(false, Ordering::SeqCst);
        *self.faults.config.lock() = None;
        self.faults.log.lock().clear();
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.config.lock().as_ref().map(|c| c.plan.clone())
    }

    fn set_fault_observer(&self, observer: FaultObserver<I>) {
        *self.faults.observer.lock() = Some(observer);
    }

    fn set_session_observer(&self, observer: SessionObserver<I>) {
        *self.faults.session_observer.lock() = Some(observer);
    }

    fn note_session_event(&self, event: &SessionEvent<I>) {
        {
            let mut suspended = self.suspended.lock();
            match event {
                SessionEvent::PeerDisconnected(id) => {
                    if !suspended.contains(id) {
                        suspended.push(id.clone());
                    }
                }
                SessionEvent::PeerResumed(id) | SessionEvent::LeaseExpired(id) => {
                    suspended.retain(|s| s != id);
                }
            }
        }
        let obs = self.faults.session_observer.lock().clone();
        if let Some(obs) = obs {
            obs(event);
        }
    }

    fn fault_log(&self) -> Vec<FaultRecord<I>> {
        if self.faults.config.lock().is_none() {
            return Vec::new();
        }
        self.faults.log.lock().clone()
    }

    fn take_fault_log(&self) -> Vec<FaultRecord<I>> {
        if self.faults.config.lock().is_none() {
            return Vec::new();
        }
        std::mem::take(&mut *self.faults.log.lock())
    }

    fn set_latency_observer(&self, observer: LatencyObserver) {
        self.latency.set_observer(observer);
    }

    fn latency_samples(&self) -> Vec<LatencySample> {
        self.latency.samples()
    }

    fn take_latency_samples(&self) -> Vec<LatencySample> {
        self.latency.take_samples()
    }

    fn send(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        let start = Instant::now();
        let result = self.send_impl(from, to, msg, deadline);
        if result.is_ok() {
            self.latency.record(LatencyOp::Send, start.elapsed());
        }
        result
    }

    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        let start = Instant::now();
        let result = self.try_recv_impl(me, from);
        if matches!(result, Ok(Some(_))) {
            self.latency.record(LatencyOp::TryRecv, start.elapsed());
        }
        result
    }

    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        let start = Instant::now();
        let result = self.select_impl(me, arms, deadline);
        if matches!(
            result,
            Ok(Outcome::Received { .. }) | Ok(Outcome::Sent { .. })
        ) {
            self.latency.record(LatencyOp::Select, start.elapsed());
        }
        result
    }
}

impl<I, M> ShardedTransport<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// [`Transport::send`] body; the trait method wraps it with latency
    /// recording.
    fn send_impl(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        if to == from {
            return Err(ChanError::Myself);
        }
        let to_ep = self.ensure(to)?;
        let from_ep = self.ensure(from)?;

        // Chaos hooks — two relaxed boolean loads on the fault-free path.
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(from, &from_ep)?;
        }
        let mut dup_info: Option<M> = None;
        if self.faults.msg_faults.load(Ordering::Relaxed) {
            if let Some(cfg) = self.chaos_cfg() {
                let has_msg = cfg.plan.has_message_faults();
                if has_msg || cfg.plan.has_connection_faults() {
                    let seq = self.chaos_edge_seq(from, &to_ep);
                    // Connection faults decide (and record) here at the
                    // sending edge like every other class — that is what
                    // keeps fault logs identical across transports — but
                    // are *enacted* only by connection-oriented hubs
                    // observing the record. In-process they are no-ops.
                    if cfg.plan.decide_partition(from, to, seq) {
                        self.record_fault(FaultKind::Partition, from, to, seq);
                    } else if cfg.plan.decide_sever(from, to, seq) {
                        self.record_fault(FaultKind::Sever, from, to, seq);
                    }
                    if has_msg {
                        let delayed = cfg.plan.decide_delay(from, to, seq);
                        let dropped = cfg.plan.decide_drop(from, to, seq);
                        if !dropped && cfg.plan.decide_duplicate(from, to, seq) {
                            // Recorded here, at decision time, so the fault
                            // log is a pure function of the plan; the
                            // redelivery below stays best-effort.
                            self.record_fault(FaultKind::Duplicate, from, to, seq);
                            dup_info = Some((cfg.clone_fn)(&msg));
                        }
                        if delayed {
                            self.record_fault(FaultKind::Delay, from, to, seq);
                            std::thread::sleep(cfg.plan.delay());
                        }
                        if dropped {
                            // Lost on the wire *after* transmission: the
                            // sender observes success (unless the peer is
                            // already gone); the receiver never sees it.
                            self.record_fault(FaultKind::Drop, from, to, seq);
                            if self.aborted.load(Ordering::SeqCst) {
                                return Err(ChanError::Aborted);
                            }
                            return match life_of(to_ep.life.load(Ordering::SeqCst)) {
                                PeerState::Done => Err(ChanError::Terminated(to.clone())),
                                _ => Ok(()),
                            };
                        }
                    }
                }
            }
        }

        // Phase 1: wait for the receiver to be active with a free slot,
        // then deposit. Everything happens under the *receiver's* lock.
        let mut st = to_ep.state.lock();
        loop {
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }
            match life_of(to_ep.life.load(Ordering::SeqCst)) {
                PeerState::Done => return Err(ChanError::Terminated(to.clone())),
                PeerState::Expected => {}
                PeerState::Active => {
                    if !st.inbox.contains_key(from) {
                        break;
                    }
                }
            }
            if Self::wait_on(&to_ep, &mut st, deadline) {
                return Err(ChanError::Timeout);
            }
        }
        st.inbox.insert(from.clone(), msg);
        st.signal += 1;
        self.activity.fetch_add(1, Ordering::Relaxed);
        let target = st.acks.get(from).copied().unwrap_or(0) + 1;

        // Phase 2: wait for pickup (still on the receiver's endpoint;
        // the pickup bumps `acks[from]` and notifies this condvar).
        to_ep.cond.notify_all();
        loop {
            if st.acks.get(from).copied().unwrap_or(0) >= target {
                break;
            }
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }
            if to_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
                // Receiver finished without taking the message: reclaim.
                st.inbox.remove(from);
                return Err(ChanError::Terminated(to.clone()));
            }
            if Self::wait_on(&to_ep, &mut st, deadline) {
                // Timed out waiting for pickup: reclaim the deposit so
                // the message is not delivered after we report failure.
                st.inbox.remove(from);
                return Err(ChanError::Timeout);
            }
        }

        // Rendezvous complete. Deliver the chaos duplicate, if planned
        // and the edge slot is free (best-effort redelivery).
        if let Some(copy) = dup_info {
            if !st.inbox.contains_key(from) && to_ep.life.load(Ordering::SeqCst) == LIFE_ACTIVE {
                st.inbox.insert(from.clone(), copy);
                st.signal += 1;
                self.activity.fetch_add(1, Ordering::Relaxed);
                drop(st);
                to_ep.cond.notify_all();
            }
        }
        Ok(())
    }

    /// [`Transport::try_recv`] body; the trait method wraps it with
    /// latency recording.
    fn try_recv_impl(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        if from == me {
            return Err(ChanError::Myself);
        }
        let from_ep = self.ensure(from)?;
        let me_ep = self.ensure(me)?;
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(me, &me_ep)?;
        }
        if self.aborted.load(Ordering::SeqCst) {
            return Err(ChanError::Aborted);
        }
        let mut st = me_ep.state.lock();
        if let Some(msg) = self.take_from(&mut st, from) {
            let watchers = st.watchers.clone();
            drop(st);
            // The sender's phase 2 sleeps on *my* condvar; watchers may
            // care about the freed slot.
            me_ep.cond.notify_all();
            Self::wake_watchers(watchers);
            return Ok(Some(msg));
        }
        drop(st);
        if from_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
            return Err(ChanError::Terminated(from.clone()));
        }
        Ok(None)
    }

    /// [`Transport::select`] body; the trait method wraps it with
    /// latency recording.
    fn select_impl(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        if arms.is_empty() {
            return Err(ChanError::EmptySelect);
        }
        let me_ep = self.ensure(me)?;
        // Internal representation: send messages become take-able, and
        // every named peer's endpoint is resolved once up front.
        type ArmRepr<I, M> = (SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>);
        let mut reprs: Vec<ArmRepr<I, M>> = Vec::with_capacity(arms.len());
        for arm in arms {
            let (repr, named) = match arm {
                Arm::Recv(Source::Of(p)) => (SelRepr::Recv(Source::Of(p.clone())), Some(p)),
                Arm::Recv(Source::Any) => (SelRepr::Recv(Source::Any), None),
                Arm::Send { to, msg } => (
                    SelRepr::Send {
                        to: to.clone(),
                        msg: Some(msg),
                    },
                    Some(to),
                ),
                Arm::Watch(p) => (SelRepr::Watch(p.clone()), Some(p)),
            };
            let ep = match named {
                Some(p) => {
                    if p == *me {
                        return Err(ChanError::Myself);
                    }
                    Some(self.ensure(&p)?)
                }
                None => None,
            };
            reprs.push((repr, ep));
        }
        // Chaos: selection counts as one operation toward crash-at-step-k.
        if self.faults.crashes.load(Ordering::Relaxed) {
            self.chaos_step(me, &me_ep)?;
        }

        // Register as a send watcher on every send-arm target, so their
        // offer publications and slot releases wake us. Deregistered on
        // every exit path below.
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut watched: Vec<Arc<Endpoint<I, M>>> = Vec::new();
        for (repr, ep) in &reprs {
            if let (SelRepr::Send { .. }, Some(t_ep)) = (repr, ep) {
                if !watched.iter().any(|w| Arc::ptr_eq(w, t_ep)) {
                    t_ep.state.lock().watchers.push((token, me_ep.clone()));
                    watched.push(t_ep.clone());
                }
            }
        }
        let result = self.select_loop(me, &me_ep, &mut reprs, deadline);
        for t_ep in watched {
            t_ep.state.lock().watchers.retain(|(t, _)| *t != token);
        }
        result
    }

    /// The selection loop body (watcher registration handled by the
    /// caller). `reprs` pairs each arm with its resolved endpoint.
    #[allow(clippy::type_complexity)]
    fn select_loop(
        &self,
        me: &I,
        me_ep: &Arc<Endpoint<I, M>>,
        reprs: &mut [(SelRepr<I, M>, Option<Arc<Endpoint<I, M>>>)],
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        loop {
            // Loop head, under my own lock: honor a claim left over from
            // a previous sleep (priority even over aborts — the claiming
            // sender already returned success), withdraw any published
            // offers so no claim can land mid-scan, and snapshot the
            // eventcount.
            let sig0;
            {
                let mut st = me_ep.state.lock();
                sig0 = st.signal;
                if let Some(entry) = st.wait.take() {
                    if let Some(from) = entry.resolved {
                        let msg = self
                            .take_from(&mut st, &from)
                            .expect("claim implies a deposited message");
                        let watchers = st.watchers.clone();
                        drop(st);
                        me_ep.cond.notify_all();
                        Self::wake_watchers(watchers);
                        let arm = reprs
                            .iter()
                            .position(|(r, _)| match r {
                                SelRepr::Recv(Source::Any) => true,
                                SelRepr::Recv(Source::Of(p)) => *p == from,
                                _ => false,
                            })
                            .expect("claim matched an offered receive arm");
                        return Ok(Outcome::Received { arm, from, msg });
                    }
                }
            }
            if self.aborted.load(Ordering::SeqCst) {
                return Err(ChanError::Aborted);
            }

            // Scan arms in random order for a ready one, locking only
            // the endpoint each arm concerns (never two at once).
            let mut order: Vec<usize> = (0..reprs.len()).collect();
            order.shuffle(&mut me_ep.state.lock().rng);
            let mut any_live = false;
            for idx in order {
                let (repr, arm_ep) = &mut reprs[idx];
                match repr {
                    SelRepr::Recv(Source::Of(p)) => {
                        let p = p.clone();
                        let mut st = me_ep.state.lock();
                        if let Some(msg) = self.take_from(&mut st, &p) {
                            let watchers = st.watchers.clone();
                            drop(st);
                            me_ep.cond.notify_all();
                            Self::wake_watchers(watchers);
                            return Ok(Outcome::Received {
                                arm: idx,
                                from: p,
                                msg,
                            });
                        }
                        drop(st);
                        let p_ep = arm_ep.as_ref().expect("named arm resolved");
                        if p_ep.life.load(Ordering::SeqCst) != LIFE_DONE {
                            any_live = true;
                        }
                    }
                    SelRepr::Recv(Source::Any) => {
                        let mut st = me_ep.state.lock();
                        let senders: Vec<I> = st.inbox.keys().cloned().collect();
                        if let Some(from) = senders.choose(&mut st.rng).cloned() {
                            let msg = self
                                .take_from(&mut st, &from)
                                .expect("chosen sender has a message");
                            let watchers = st.watchers.clone();
                            drop(st);
                            me_ep.cond.notify_all();
                            Self::wake_watchers(watchers);
                            return Ok(Outcome::Received {
                                arm: idx,
                                from,
                                msg,
                            });
                        }
                        drop(st);
                        if self.any_possible_sender(me) {
                            any_live = true;
                        }
                    }
                    SelRepr::Send { to, msg } => {
                        let to = to.clone();
                        let t_ep = arm_ep.as_ref().expect("named arm resolved").clone();
                        match life_of(t_ep.life.load(Ordering::SeqCst)) {
                            PeerState::Done => {}
                            PeerState::Expected => any_live = true,
                            PeerState::Active => {
                                any_live = true;
                                let mut ts = t_ep.state.lock();
                                let slot_free = !ts.inbox.contains_key(me);
                                let claimable = slot_free
                                    && ts
                                        .wait
                                        .as_ref()
                                        .map(|w| w.resolved.is_none() && w.offers_from(me))
                                        .unwrap_or(false);
                                if claimable {
                                    let m = msg.take().expect("send arm fires at most once");
                                    // Chaos: a dropped send arm still
                                    // fires (the sender saw delivery) but
                                    // leaves the receiver waiting.
                                    if self.faults.msg_faults.load(Ordering::Relaxed) {
                                        if let Some(cfg) = self.chaos_cfg() {
                                            if cfg.plan.has_message_faults() {
                                                let c =
                                                    ts.chaos_in_seqs.entry(me.clone()).or_insert(0);
                                                let seq = *c;
                                                *c += 1;
                                                if cfg.plan.decide_drop(me, &to, seq) {
                                                    drop(ts);
                                                    self.record_fault(
                                                        FaultKind::Drop,
                                                        me,
                                                        &to,
                                                        seq,
                                                    );
                                                    return Ok(Outcome::Sent { arm: idx, to });
                                                }
                                            }
                                        }
                                    }
                                    ts.inbox.insert(me.clone(), m);
                                    ts.wait.as_mut().expect("checked above").resolved =
                                        Some(me.clone());
                                    ts.signal += 1;
                                    self.activity.fetch_add(1, Ordering::Relaxed);
                                    drop(ts);
                                    t_ep.cond.notify_all();
                                    return Ok(Outcome::Sent { arm: idx, to });
                                }
                            }
                        }
                    }
                    SelRepr::Watch(p) => {
                        let p = p.clone();
                        let p_ep = arm_ep.as_ref().expect("named arm resolved");
                        if p_ep.life.load(Ordering::SeqCst) == LIFE_DONE {
                            let pending = me_ep.state.lock().inbox.contains_key(&p);
                            if !pending {
                                return Ok(Outcome::Terminated { arm: idx, peer: p });
                            }
                            // A message from the dead peer is still
                            // pending: a recv arm must drain it first;
                            // the watch arm stays pending.
                            any_live = true;
                        } else {
                            any_live = true;
                        }
                    }
                }
            }

            if !any_live {
                // Every arm is permanently unfireable.
                if reprs.len() == 1 {
                    if let (SelRepr::Recv(Source::Of(p)) | SelRepr::Send { to: p, .. }, _) =
                        &reprs[0]
                    {
                        return Err(ChanError::Terminated(p.clone()));
                    }
                }
                return Err(ChanError::AllTerminated);
            }

            // Publish our receive offers so send arms elsewhere can
            // claim us, wake the selectors watching us, then sleep —
            // unless the eventcount moved since the scan started, in
            // which case something changed mid-scan and we rescan.
            let offers: Vec<Source<I>> = reprs
                .iter()
                .filter_map(|(r, _)| match r {
                    SelRepr::Recv(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            let watchers;
            {
                let mut st = me_ep.state.lock();
                st.wait = Some(WaitEntry {
                    offers,
                    resolved: None,
                });
                watchers = st.watchers.clone();
            }
            Self::wake_watchers(watchers);
            let mut st = me_ep.state.lock();
            if st.signal != sig0 {
                continue;
            }
            if Self::wait_on(me_ep, &mut st, deadline) {
                // Deadline expired — unless a claim raced in, in which
                // case the loop head will honor it.
                let resolved = st
                    .wait
                    .as_ref()
                    .map(|w| w.resolved.is_some())
                    .unwrap_or(false);
                if !resolved {
                    st.wait = None;
                    return Err(ChanError::Timeout);
                }
            }
        }
    }
}

/// Internal selection-arm representation (named at module scope so the
/// helper method can reference it).
enum SelRepr<I, M> {
    Recv(Source<I>),
    Send { to: I, msg: Option<M> },
    Watch(I),
}
