//! Rendezvous channel networks with CSP-style guarded selection.
//!
//! This crate is the communication kernel shared by the script engine
//! (`script-core`) and the CSP substrate (`script-csp`) of the PODC 1983
//! *Script* reproduction. It provides a [`Network`] of named participants
//! exchanging messages by **synchronous rendezvous** (the semantics of
//! CSP's `!` and `?`), together with:
//!
//! * guarded selection over receive *and* send arms ([`Port::select`]),
//!   with the usual CSP restriction resolved correctly: a send arm only
//!   fires by *claiming* a peer that is already committed to a matching
//!   receive, so no deposited message is ever stranded;
//! * per-participant lifecycle (`Expected → Active → Done`) so that
//!   communication with a not-yet-enrolled role blocks, and communication
//!   with a terminated or never-filled role fails with a distinguished
//!   error — exactly the semantics the paper prescribes for critical role
//!   sets;
//! * termination watching ([`Arm::watch`]) so server-like roles can drain
//!   requests and stop when all their clients are done;
//! * whole-network abort for panic containment;
//! * deterministic fault injection ([`FaultPlan`]) — seeded message drop,
//!   delay, duplication, and peer crash for chaos testing, a strict no-op
//!   when no plan is attached (or when the attached plan enables no fault
//!   class — the short-circuit is hoisted to attach time);
//! * a pluggable [`Transport`] seam: [`Network`] is a facade over an
//!   `Arc<dyn Transport>`, whose default in-process implementation,
//!   [`ShardedTransport`], keeps one lock + condvar **per endpoint** so
//!   unrelated participants never contend.
//!
//! # Example
//!
//! ```
//! use script_chan::{Network, ChanError};
//!
//! let net: Network<&'static str, u32> = Network::new();
//! net.activate("alice");
//! net.activate("bob");
//! let alice = net.port("alice")?;
//! let bob = net.port("bob")?;
//!
//! let t = std::thread::spawn(move || bob.recv_from(&"alice"));
//! alice.send(&"bob", 7)?;
//! assert_eq!(t.join().unwrap()?, 7);
//! # Ok::<(), ChanError<&'static str>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod conformance;
mod error;
mod fault;
mod network;
mod select;
pub mod transport;

pub use error::ChanError;
pub use fault::{per_edge_fingerprints, per_edge_log, EdgeLog, FaultKind, FaultPlan, FaultRecord};
pub use network::{Network, PeerState, Port};
pub use select::{Arm, Outcome, Source};
pub use transport::{
    FaultObserver, LabelFn, LatencyHooks, LatencyObserver, LatencyOp, LatencySample,
    RendezvousObserver, RendezvousRecord, SelectDone, SendDone, SessionEvent, SessionObserver,
    ShardedTransport, Transport,
};
