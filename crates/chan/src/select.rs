//! Guarded-selection arm and outcome types.

/// The source specification of a receive arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source<I> {
    /// Receive only from the named peer (CSP `p?x`).
    Of(I),
    /// Receive from any peer (Ada `accept`, or the extended naming of
    /// Francez's CSP proposal).
    Any,
}

/// One alternative of a guarded selection (CSP alternative command).
///
/// Arms with a false boolean guard should simply not be passed to
/// [`Port::select`](crate::Port::select); the higher layers provide the
/// `when`-style sugar.
#[derive(Debug, Clone, PartialEq)]
pub enum Arm<I, M> {
    /// Fire when a message from `source` can be received.
    Recv(Source<I>),
    /// Fire when `msg` can be synchronously delivered to `to`.
    ///
    /// A send arm only fires against a peer that is already committed to a
    /// matching receive, so firing implies delivery.
    Send {
        /// Destination peer.
        to: I,
        /// Message delivered if the arm fires.
        msg: M,
    },
    /// Fire when the peer has terminated and no message from it remains
    /// undelivered.
    ///
    /// This lets server roles drain all requests before reacting to a
    /// partner's termination (the `r.terminated` device of the paper's
    /// lock-manager example).
    Watch(I),
}

impl<I, M> Arm<I, M> {
    /// A receive arm restricted to one peer.
    pub fn recv_from(peer: I) -> Self {
        Arm::Recv(Source::Of(peer))
    }

    /// A receive arm accepting any peer.
    pub fn recv_any() -> Self {
        Arm::Recv(Source::Any)
    }

    /// A synchronous send arm.
    pub fn send(to: I, msg: M) -> Self {
        Arm::Send { to, msg }
    }

    /// A termination-watch arm.
    pub fn watch(peer: I) -> Self {
        Arm::Watch(peer)
    }
}

/// The result of a successful [`Port::select`](crate::Port::select).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<I, M> {
    /// A receive arm fired.
    Received {
        /// Index of the arm that fired, in the order arms were passed.
        arm: usize,
        /// The peer the message came from.
        from: I,
        /// The received message.
        msg: M,
    },
    /// A send arm fired; the message was delivered.
    Sent {
        /// Index of the arm that fired.
        arm: usize,
        /// The peer the message went to.
        to: I,
    },
    /// A watch arm fired: the peer terminated and left no pending message.
    Terminated {
        /// Index of the arm that fired.
        arm: usize,
        /// The terminated peer.
        peer: I,
    },
}

impl<I, M> Outcome<I, M> {
    /// Index of the arm that fired.
    pub fn arm(&self) -> usize {
        match self {
            Outcome::Received { arm, .. }
            | Outcome::Sent { arm, .. }
            | Outcome::Terminated { arm, .. } => *arm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        let a: Arm<u8, ()> = Arm::recv_from(1);
        assert!(matches!(a, Arm::Recv(Source::Of(1))));
        let b: Arm<u8, ()> = Arm::recv_any();
        assert!(matches!(b, Arm::Recv(Source::Any)));
        let c: Arm<u8, u8> = Arm::send(2, 9);
        assert!(matches!(c, Arm::Send { to: 2, msg: 9 }));
        let d: Arm<u8, ()> = Arm::watch(3);
        assert!(matches!(d, Arm::Watch(3)));
    }

    #[test]
    fn outcome_arm_index() {
        let o: Outcome<u8, u8> = Outcome::Received {
            arm: 2,
            from: 1,
            msg: 0,
        };
        assert_eq!(o.arm(), 2);
        let o: Outcome<u8, u8> = Outcome::Sent { arm: 1, to: 4 };
        assert_eq!(o.arm(), 1);
        let o: Outcome<u8, u8> = Outcome::Terminated { arm: 0, peer: 4 };
        assert_eq!(o.arm(), 0);
    }
}
