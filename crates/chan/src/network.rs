//! The rendezvous network facade.
//!
//! A [`Network`] is a thin handle over a [`Transport`] — the blocking
//! rendezvous substrate. The default transport is the in-process
//! [`ShardedTransport`](crate::ShardedTransport): one lock + condvar
//! *per endpoint*, so unrelated participants never contend and wakeups
//! are targeted instead of herd broadcasts (see the
//! [`transport`](crate::transport) module docs for the sharding and
//! wakeup protocol). Alternative substrates plug in through
//! [`Network::with_transport`] without touching the layers above.
//!
//! Send arms in a selection fire only by *claiming* a peer that is
//! already committed to a matching receive (the standard two-phase
//! trick for CSP output guards), which makes a fired send arm a proof
//! of delivery.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

use crate::fault::{FaultPlan, FaultRecord};
use crate::select::{Arm, Outcome};
use crate::transport::{LatencySample, SessionEvent, ShardedTransport, Transport};
use crate::ChanError;

/// Lifecycle state of a network participant.
///
/// The three states mirror the paper's role lifecycle: a role in the
/// script text but not yet enrolled (`Expected`), an enrolled role
/// executing its body (`Active`), and a role that finished or will never
/// be filled in this performance (`Done`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerState {
    /// Declared but not yet active; communication with it blocks.
    Expected,
    /// Actively participating.
    Active,
    /// Finished, or barred from ever joining; communication with it fails
    /// with [`ChanError::Terminated`] once pending messages are drained.
    Done,
}

/// A network of named participants communicating by rendezvous.
///
/// Cloning a `Network` yields another handle to the same network. See the
/// [crate docs](crate) for an overview and example.
pub struct Network<I, M> {
    transport: Arc<dyn Transport<I, M>>,
}

impl<I, M> Clone for Network<I, M> {
    fn clone(&self) -> Self {
        Self {
            transport: Arc::clone(&self.transport),
        }
    }
}

impl<I: fmt::Debug + Clone + Eq + Hash, M> fmt::Debug for Network<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("peers", &self.transport.peers())
            .field("aborted", &self.transport.is_aborted())
            .finish()
    }
}

impl<I, M> Default for Network<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, M> Network<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// Creates an empty network on the default sharded in-process
    /// transport. Peers must be declared (or activated) before they can
    /// be referenced.
    pub fn new() -> Self {
        Self::with_transport(Arc::new(ShardedTransport::new(false, None)))
    }

    /// Creates a network in which referencing an undeclared peer
    /// implicitly declares it as [`PeerState::Expected`] instead of
    /// failing with [`ChanError::Unknown`].
    ///
    /// Used for open-ended role families whose membership is not known up
    /// front.
    pub fn new_open() -> Self {
        Self::with_transport(Arc::new(ShardedTransport::new(true, None)))
    }

    /// Creates a network with a deterministic RNG seed for the fair
    /// nondeterministic choice among ready alternatives. Intended for
    /// reproducible tests.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_transport(Arc::new(ShardedTransport::new(false, Some(seed))))
    }

    /// [`Network::new_open`] with a deterministic selection RNG seed,
    /// so nondeterministic-order broadcasts over open-ended casts are
    /// reproducible under a chaos seed.
    pub fn new_open_seeded(seed: u64) -> Self {
        Self::with_transport(Arc::new(ShardedTransport::new(true, Some(seed))))
    }

    /// Wraps an existing transport in a network handle.
    ///
    /// This is the seam for alternative substrates (a remote transport,
    /// an instrumented wrapper): everything above the [`Transport`]
    /// trait — ports, selections, the engine — works unchanged.
    pub fn with_transport(transport: Arc<dyn Transport<I, M>>) -> Self {
        Self { transport }
    }

    /// Re-seeds the selection RNGs in place. Lets an instance impose a
    /// reproducible selection order on an already-built network (e.g.
    /// one per performance, derived from a chaos seed).
    pub fn reseed(&self, seed: u64) {
        self.transport.reseed(seed);
    }

    /// Declares `id` as an expected participant (idempotent; never
    /// downgrades an existing state).
    pub fn declare(&self, id: I) {
        self.transport.declare(id);
    }

    /// Marks `id` as active, declaring it if necessary.
    pub fn activate(&self, id: I) {
        self.transport.activate(id);
    }

    /// Marks `id` as done (finished or permanently barred). Blocked
    /// operations naming `id` observe the transition: receives drain any
    /// pending message first, then fail with
    /// [`ChanError::Terminated`]; senders waiting on `id` fail
    /// immediately.
    pub fn finish(&self, id: I) {
        self.transport.finish(id);
    }

    /// Seals the network: every peer still [`PeerState::Expected`] becomes
    /// [`PeerState::Done`] (it will never be filled), and — on
    /// implicitly-declaring networks — future references to unknown peers
    /// are declared `Done` rather than `Expected`.
    ///
    /// This implements the freeze of a performance's cast: after the
    /// critical role set is filled (or after an explicit
    /// `seal_cast`), unfilled roles read as terminated.
    pub fn seal(&self) {
        self.transport.seal();
    }

    /// Aborts the whole network: every blocked and future operation fails
    /// with [`ChanError::Aborted`].
    pub fn abort(&self) {
        self.transport.abort();
    }

    /// Returns `true` if the network has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.transport.is_aborted()
    }

    /// Current lifecycle state of `id` (`None` if never declared).
    pub fn peer_state(&self, id: &I) -> Option<PeerState> {
        self.transport.peer_state(id)
    }

    /// All declared participants and their states, in unspecified order.
    pub fn peers(&self) -> Vec<(I, PeerState)> {
        self.transport.peers()
    }

    /// Monotone progress counter: increments on every deposit, pickup,
    /// and peer lifecycle transition. A watchdog that samples this
    /// across a quiescence window can distinguish a slow performance
    /// (counter advancing) from a wedged one (counter frozen).
    pub fn activity(&self) -> u64 {
        self.transport.activity()
    }

    /// Diagnostic: is a message from `from` currently deposited at `to`
    /// awaiting pickup? Useful in tests that need to observe the
    /// rendezvous mid-flight; not part of the protocol surface.
    pub fn has_pending_from(&self, to: &I, from: &I) -> bool {
        self.transport.has_pending_from(to, from)
    }

    /// Attaches a deterministic [`FaultPlan`]. Subsequent sends consult
    /// the plan for drop/delay/duplicate decisions and every operation
    /// counts toward crash-at-step-*k*. Replaces any previous plan and
    /// resets all fault counters and the fault log.
    ///
    /// A plan with no enabled fault class short-circuits at attach time:
    /// the transport hoists the decision out of the per-message path, so
    /// a no-op plan costs the same as no plan at all.
    ///
    /// Requires `M: Clone` so dropped-in duplicates can be
    /// materialized; networks that never attach a plan need no `Clone`.
    pub fn set_fault_plan(&self, plan: FaultPlan)
    where
        M: Clone,
    {
        fn clone_of<M: Clone>(m: &M) -> M {
            m.clone()
        }
        self.transport.set_fault_plan(plan, clone_of::<M>);
    }

    /// Detaches the fault plan (and discards its log), restoring the
    /// no-op fast path.
    pub fn clear_fault_plan(&self) {
        self.transport.clear_fault_plan();
    }

    /// The currently attached plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.transport.fault_plan()
    }

    /// Registers a callback invoked synchronously, from the faulting
    /// thread, for every injected fault (it must not block on the
    /// faulting operation). Used by the engine to surface faults as
    /// script events.
    pub fn set_fault_observer<F>(&self, observer: F)
    where
        F: Fn(&FaultRecord<I>) + Send + Sync + 'static,
    {
        self.transport.set_fault_observer(Arc::new(observer));
    }

    /// Registers a callback invoked synchronously, from the receiving
    /// thread, for every *completed* rendezvous (message pickup), with
    /// `label_of` extracting each message's protocol label. The
    /// callback runs inside the delivery path and must not call back
    /// into this network. Used by the engine to surface rendezvous as
    /// script events for runtime protocol conformance monitoring.
    pub fn set_rendezvous_observer<F>(&self, observer: F, label_of: crate::LabelFn<M>)
    where
        F: Fn(&crate::RendezvousRecord<I>) + Send + Sync + 'static,
    {
        self.transport
            .set_rendezvous_observer(Arc::new(observer), label_of);
    }

    /// A copy of the fault log: every fault injected so far, in
    /// injection order.
    pub fn fault_log(&self) -> Vec<FaultRecord<I>> {
        self.transport.fault_log()
    }

    /// Drains and returns the fault log.
    pub fn take_fault_log(&self) -> Vec<FaultRecord<I>> {
        self.transport.take_fault_log()
    }

    /// Registers a callback invoked synchronously, from the operating
    /// thread, for every successful blocking operation with its
    /// measured wall-clock latency (it must not block). Used by the
    /// engine to feed each performance's watchdog latency estimator.
    pub fn set_latency_observer<F>(&self, observer: F)
    where
        F: Fn(&LatencySample) + Send + Sync + 'static,
    {
        self.transport.set_latency_observer(Arc::new(observer));
    }

    /// Registers a callback invoked synchronously for every session
    /// lifecycle transition (peer disconnected / resumed / lease
    /// expired) the transport observes. Connection-oriented transports
    /// emit these natively; the in-process transport emits none.
    pub fn set_session_observer<F>(&self, observer: F)
    where
        F: Fn(&SessionEvent<I>) + Send + Sync + 'static,
    {
        self.transport.set_session_observer(Arc::new(observer));
    }

    /// A copy of the recent latency samples, oldest first (bounded).
    pub fn latency_samples(&self) -> Vec<LatencySample> {
        self.transport.latency_samples()
    }

    /// Drains and returns the recent latency samples.
    pub fn take_latency_samples(&self) -> Vec<LatencySample> {
        self.transport.take_latency_samples()
    }

    /// Obtains the communication capability for participant `me`.
    ///
    /// # Errors
    ///
    /// Returns [`ChanError::Unknown`] if `me` was never declared and the
    /// network does not implicitly declare.
    pub fn port(&self, me: I) -> Result<Port<I, M>, ChanError<I>> {
        self.transport.ensure_peer(&me)?;
        Ok(Port {
            net: self.clone(),
            me,
        })
    }
}

/// The communication capability of one participant.
///
/// A `Port` is bound to one participant id; all operations are performed
/// "as" that participant. Obtained from [`Network::port`].
pub struct Port<I, M> {
    net: Network<I, M>,
    me: I,
}

impl<I: fmt::Debug, M> fmt::Debug for Port<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Port").field("me", &self.me).finish()
    }
}

impl<I, M> Port<I, M>
where
    I: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Send + 'static,
{
    /// The participant this port speaks for.
    pub fn id(&self) -> &I {
        &self.me
    }

    /// The underlying network.
    pub fn network(&self) -> &Network<I, M> {
        &self.net
    }

    /// Synchronously sends `msg` to `to`: blocks until the message has
    /// been picked up by the receiver (rendezvous), waiting for `to` to
    /// become active first if it is still expected.
    ///
    /// # Errors
    ///
    /// * [`ChanError::Terminated`] if `to` is (or becomes) done before
    ///   pickup,
    /// * [`ChanError::Aborted`] if the network aborts,
    /// * [`ChanError::Unknown`] / [`ChanError::Myself`] on bad addressing.
    pub fn send(&self, to: &I, msg: M) -> Result<(), ChanError<I>> {
        self.send_deadline(to, msg, None)
    }

    /// [`Port::send`] with an optional deadline.
    ///
    /// # Errors
    ///
    /// As [`Port::send`], plus [`ChanError::Timeout`] if the deadline
    /// expires before the rendezvous completes.
    pub fn send_deadline(
        &self,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        self.net.transport.send(&self.me, to, msg, deadline)
    }

    /// Receives the pending message from `from`, blocking until one
    /// arrives.
    ///
    /// # Errors
    ///
    /// [`ChanError::Terminated`] if `from` is done with no pending
    /// message, plus the addressing/abort errors of [`Port::send`].
    pub fn recv_from(&self, from: &I) -> Result<M, ChanError<I>> {
        self.recv_from_deadline(from, None)
    }

    /// [`Port::recv_from`] with an optional deadline.
    ///
    /// # Errors
    ///
    /// As [`Port::recv_from`], plus [`ChanError::Timeout`].
    pub fn recv_from_deadline(
        &self,
        from: &I,
        deadline: Option<Instant>,
    ) -> Result<M, ChanError<I>> {
        match self.select_deadline(vec![Arm::recv_from(from.clone())], deadline)? {
            Outcome::Received { msg, .. } => Ok(msg),
            _ => unreachable!("single recv arm yielded a non-receive outcome"),
        }
    }

    /// Receives a message from any peer, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`ChanError::AllTerminated`] once every other peer is done and no
    /// message is pending, plus abort/timeout errors.
    pub fn recv_any(&self) -> Result<(I, M), ChanError<I>> {
        self.recv_any_deadline(None)
    }

    /// [`Port::recv_any`] with an optional deadline.
    ///
    /// # Errors
    ///
    /// As [`Port::recv_any`], plus [`ChanError::Timeout`].
    pub fn recv_any_deadline(&self, deadline: Option<Instant>) -> Result<(I, M), ChanError<I>> {
        match self.select_deadline(vec![Arm::recv_any()], deadline)? {
            Outcome::Received { from, msg, .. } => Ok((from, msg)),
            _ => unreachable!("single recv arm yielded a non-receive outcome"),
        }
    }

    /// Non-blocking receive: takes the pending message from `from` if
    /// one is already deposited, without waiting.
    ///
    /// # Errors
    ///
    /// [`ChanError::Terminated`] if `from` is done with nothing pending;
    /// addressing and abort errors as for [`Port::send`]. Returns
    /// `Ok(None)` when no message is pending but one may still arrive.
    pub fn try_recv_from(&self, from: &I) -> Result<Option<M>, ChanError<I>> {
        self.net.transport.try_recv(&self.me, from)
    }

    /// Guarded selection over the given arms (CSP alternative command).
    ///
    /// Blocks until one arm can fire, then fires exactly one, chosen
    /// uniformly at random among the ready alternatives (bounded
    /// nondeterminism). Unfired arms — including any messages held by
    /// unfired send arms — are discarded.
    ///
    /// # Errors
    ///
    /// * [`ChanError::EmptySelect`] if `arms` is empty,
    /// * [`ChanError::Terminated`] / [`ChanError::AllTerminated`] when
    ///   every arm has become permanently unfireable,
    /// * [`ChanError::Aborted`] on network abort,
    /// * addressing errors as for [`Port::send`].
    pub fn select(&self, arms: Vec<Arm<I, M>>) -> Result<Outcome<I, M>, ChanError<I>> {
        self.select_deadline(arms, None)
    }

    /// [`Port::select`] with an optional deadline.
    ///
    /// # Errors
    ///
    /// As [`Port::select`], plus [`ChanError::Timeout`].
    pub fn select_deadline(
        &self,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        self.net.transport.select(&self.me, arms, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    type TwoParty = (
        Network<&'static str, u32>,
        Port<&'static str, u32>,
        Port<&'static str, u32>,
    );

    fn two_party() -> TwoParty {
        let net: Network<&'static str, u32> = Network::with_seed(42);
        net.activate("a");
        net.activate("b");
        let a = net.port("a").unwrap();
        let b = net.port("b").unwrap();
        (net, a, b)
    }

    fn soon() -> Option<Instant> {
        Some(Instant::now() + Duration::from_millis(50))
    }

    #[test]
    fn simple_rendezvous() {
        let (_net, a, b) = two_party();
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 5).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 5);
    }

    #[test]
    fn send_blocks_until_pickup() {
        let (_net, a, b) = two_party();
        let started = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let done = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let d2 = StdArc::clone(&done);
        let s2 = StdArc::clone(&started);
        let t = std::thread::spawn(move || {
            s2.store(true, std::sync::atomic::Ordering::SeqCst);
            a.send(&"b", 1).unwrap();
            d2.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        while !started.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !done.load(std::sync::atomic::Ordering::SeqCst),
            "send returned before pickup"
        );
        assert_eq!(b.recv_from(&"a").unwrap(), 1);
        t.join().unwrap();
        assert!(done.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn send_to_expected_peer_blocks_then_completes() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.declare("late");
        let a = net.port("a").unwrap();
        let net2 = net.clone();
        let t = std::thread::spawn(move || a.send(&"late", 9));
        std::thread::sleep(Duration::from_millis(10));
        net2.activate("late");
        let late = net2.port("late").unwrap();
        assert_eq!(late.recv_from(&"a").unwrap(), 9);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn send_to_done_peer_fails() {
        let (net, a, _b) = two_party();
        net.finish("b");
        assert_eq!(a.send(&"b", 1), Err(ChanError::Terminated("b")));
    }

    #[test]
    fn send_fails_when_peer_dies_mid_wait() {
        let (net, a, _b) = two_party();
        let t = std::thread::spawn(move || a.send(&"b", 1));
        std::thread::sleep(Duration::from_millis(10));
        net.finish("b");
        assert_eq!(t.join().unwrap(), Err(ChanError::Terminated("b")));
    }

    #[test]
    fn recv_from_done_peer_drains_pending_message_first() {
        let (net, a, b) = two_party();
        let t = std::thread::spawn(move || a.send(&"b", 3));
        // Wait for the deposit to land.
        while !net.has_pending_from(&"b", &"a") {
            std::thread::yield_now();
        }
        net.finish("a");
        // The pending message is still delivered...
        assert_eq!(b.recv_from(&"a").unwrap(), 3);
        t.join().unwrap().unwrap();
        // ...and only then does termination surface.
        assert_eq!(b.recv_from(&"a"), Err(ChanError::Terminated("a")));
    }

    #[test]
    fn recv_any_errors_when_everyone_done() {
        let (net, _a, b) = two_party();
        net.finish("a");
        assert_eq!(b.recv_any(), Err(ChanError::AllTerminated));
    }

    #[test]
    fn self_send_rejected() {
        let (_net, a, _b) = two_party();
        assert_eq!(a.send(&"a", 1), Err(ChanError::Myself));
        assert_eq!(a.recv_from(&"a"), Err(ChanError::Myself));
    }

    #[test]
    fn unknown_peer_rejected() {
        let (_net, a, _b) = two_party();
        assert_eq!(a.send(&"zed", 1), Err(ChanError::Unknown("zed")));
    }

    #[test]
    fn open_network_implicitly_declares() {
        let net: Network<&'static str, u32> = Network::new_open();
        net.activate("a");
        let a = net.port("a").unwrap();
        // "b" is auto-declared Expected; the send blocks, then times out.
        assert_eq!(a.send_deadline(&"b", 1, soon()), Err(ChanError::Timeout));
        assert_eq!(net.peer_state(&"b"), Some(PeerState::Expected));
    }

    #[test]
    fn abort_wakes_blocked_operations() {
        let (net, a, b) = two_party();
        let t1 = std::thread::spawn(move || a.send(&"b", 1));
        let t2 = std::thread::spawn(move || b.recv_from(&"a").map(|_| ()));
        std::thread::sleep(Duration::from_millis(10));
        net.abort();
        // One of the two may have completed the rendezvous before the
        // abort; but at least the pair cannot both succeed with a second
        // exchange pending. Here no receive happened before abort in the
        // send's phase-2, so outcomes may be Ok/Ok (rendezvous won the
        // race) or Aborted.
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        match (&r1, &r2) {
            (Ok(()), Ok(())) => {}
            _ => {
                assert!(
                    r1 == Err(ChanError::Aborted) || r2 == Err(ChanError::Aborted),
                    "unexpected outcomes: {r1:?} {r2:?}"
                );
            }
        }
        assert!(net.is_aborted());
    }

    #[test]
    fn timeout_on_recv() {
        let (_net, _a, b) = two_party();
        assert_eq!(b.recv_from_deadline(&"a", soon()), Err(ChanError::Timeout));
    }

    #[test]
    fn timeout_on_send_reclaims_deposit() {
        let (net, a, b) = two_party();
        assert_eq!(a.send_deadline(&"b", 7, soon()), Err(ChanError::Timeout));
        // The deposit must have been reclaimed: nothing to receive.
        assert_eq!(b.recv_from_deadline(&"a", soon()), Err(ChanError::Timeout));
        drop(net);
    }

    #[test]
    fn select_recv_prefers_ready_message() {
        let (_net, a, b) = two_party();
        let t = std::thread::spawn(move || a.send(&"b", 11));
        let out = b
            .select(vec![Arm::recv_from("a"), Arm::watch("a")])
            .unwrap();
        assert_eq!(
            out,
            Outcome::Received {
                arm: 0,
                from: "a",
                msg: 11
            }
        );
        t.join().unwrap().unwrap();
    }

    #[test]
    fn select_send_claims_committed_receiver() {
        let (_net, a, b) = two_party();
        let t = std::thread::spawn(move || b.recv_any());
        std::thread::sleep(Duration::from_millis(10));
        let out = a.select(vec![Arm::send("b", 21)]).unwrap();
        assert_eq!(out, Outcome::Sent { arm: 0, to: "b" });
        assert_eq!(t.join().unwrap().unwrap(), ("a", 21));
    }

    #[test]
    fn select_send_does_not_fire_without_committed_receiver() {
        let (_net, a, _b) = two_party();
        assert_eq!(
            a.select_deadline(vec![Arm::send("b", 1)], soon()),
            Err(ChanError::Timeout)
        );
    }

    #[test]
    fn crossing_selects_do_not_deadlock() {
        // Both offer {send, recv}; CSP semantics allow a match.
        let (_net, a, b) = two_party();
        let t = std::thread::spawn(move || a.select(vec![Arm::send("b", 1), Arm::recv_from("b")]));
        let r_b = b
            .select(vec![Arm::send("a", 2), Arm::recv_from("a")])
            .unwrap();
        let r_a = t.join().unwrap().unwrap();
        // Exactly one direction fired, consistently on both sides.
        match (&r_a, &r_b) {
            (Outcome::Sent { to: "b", .. }, Outcome::Received { from: "a", msg, .. }) => {
                assert_eq!(*msg, 1)
            }
            (Outcome::Received { from: "b", msg, .. }, Outcome::Sent { to: "a", .. }) => {
                assert_eq!(*msg, 2)
            }
            other => panic!("inconsistent match: {other:?}"),
        }
    }

    #[test]
    fn watch_fires_on_termination() {
        let (net, _a, b) = two_party();
        let t = std::thread::spawn(move || b.select(vec![Arm::recv_from("a"), Arm::watch("a")]));
        std::thread::sleep(Duration::from_millis(10));
        net.finish("a");
        assert_eq!(
            t.join().unwrap().unwrap(),
            Outcome::Terminated { arm: 1, peer: "a" }
        );
    }

    #[test]
    fn watch_waits_for_drain() {
        let (net, a, b) = two_party();
        let t = std::thread::spawn(move || a.send(&"b", 5));
        while !net.has_pending_from(&"b", &"a") {
            std::thread::yield_now();
        }
        net.finish("a");
        // Watch must not fire while the message is pending.
        let out = b
            .select(vec![Arm::recv_from("a"), Arm::watch("a")])
            .unwrap();
        assert_eq!(
            out,
            Outcome::Received {
                arm: 0,
                from: "a",
                msg: 5
            }
        );
        t.join().unwrap().unwrap();
        let out = b
            .select(vec![Arm::recv_from("a"), Arm::watch("a")])
            .unwrap();
        assert_eq!(out, Outcome::Terminated { arm: 1, peer: "a" });
    }

    #[test]
    fn empty_select_rejected() {
        let (_net, a, _b) = two_party();
        assert_eq!(a.select(vec![]), Err(ChanError::EmptySelect));
    }

    #[test]
    fn single_dead_arm_names_the_peer() {
        let (net, a, _b) = two_party();
        net.finish("b");
        assert_eq!(
            a.select(vec![Arm::recv_from("b")]),
            Err(ChanError::Terminated("b"))
        );
    }

    #[test]
    fn multiple_dead_arms_report_all_terminated() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.activate("b");
        net.activate("c");
        let a = net.port("a").unwrap();
        net.finish("b");
        net.finish("c");
        assert_eq!(
            a.select(vec![Arm::recv_from("b"), Arm::recv_from("c")]),
            Err(ChanError::AllTerminated)
        );
    }

    #[test]
    fn two_senders_one_receiver_fairness() {
        let net: Network<&'static str, u32> = Network::with_seed(7);
        net.activate("s1");
        net.activate("s2");
        net.activate("r");
        let s1 = net.port("s1").unwrap();
        let s2 = net.port("s2").unwrap();
        let r = net.port("r").unwrap();
        const N: usize = 50;
        let t1 = std::thread::spawn(move || {
            for _ in 0..N {
                s1.send(&"r", 1).unwrap();
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..N {
                s2.send(&"r", 2).unwrap();
            }
        });
        let mut ones = 0;
        let mut twos = 0;
        for _ in 0..2 * N {
            match r.recv_any().unwrap() {
                ("s1", _) => ones += 1,
                ("s2", _) => twos += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(ones, N);
        assert_eq!(twos, N);
    }

    #[test]
    fn pipeline_of_ten() {
        let net: Network<usize, u64> = Network::new();
        for i in 0..10 {
            net.activate(i);
        }
        let mut handles = Vec::new();
        for i in 1..10 {
            let p = net.port(i).unwrap();
            handles.push(std::thread::spawn(move || {
                let v = p.recv_from(&(i - 1)).unwrap();
                if i < 9 {
                    p.send(&(i + 1), v + 1).unwrap();
                    0
                } else {
                    v + 1
                }
            }));
        }
        let p0 = net.port(0).unwrap();
        p0.send(&1, 0).unwrap();
        let mut last = 0;
        for h in handles {
            last = last.max(h.join().unwrap());
        }
        assert_eq!(last, 9);
    }

    #[test]
    fn peer_states_reported() {
        let net: Network<&'static str, ()> = Network::new();
        net.declare("x");
        assert_eq!(net.peer_state(&"x"), Some(PeerState::Expected));
        net.activate("x");
        assert_eq!(net.peer_state(&"x"), Some(PeerState::Active));
        net.finish("x");
        assert_eq!(net.peer_state(&"x"), Some(PeerState::Done));
        assert_eq!(net.peer_state(&"y"), None);
        assert_eq!(net.peers().len(), 1);
    }

    #[test]
    fn declare_never_downgrades() {
        let net: Network<&'static str, ()> = Network::new();
        net.activate("x");
        net.declare("x");
        assert_eq!(net.peer_state(&"x"), Some(PeerState::Active));
    }
}

#[cfg(test)]
mod seal_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn seal_bars_expected_peers() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.declare("ghost");
        let a = net.port("a").unwrap();
        let t = std::thread::spawn(move || a.send(&"ghost", 1));
        std::thread::sleep(Duration::from_millis(10));
        net.seal();
        assert_eq!(t.join().unwrap(), Err(ChanError::Terminated("ghost")));
    }

    #[test]
    fn sealed_open_network_rejects_new_peers() {
        let net: Network<&'static str, u32> = Network::new_open();
        net.activate("a");
        net.seal();
        let a = net.port("a").unwrap();
        assert_eq!(a.send(&"never", 1), Err(ChanError::Terminated("never")));
    }

    #[test]
    fn seal_does_not_touch_active_peers() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.seal();
        assert_eq!(net.peer_state(&"a"), Some(PeerState::Active));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    /// Random many-sender workloads: every message sent is received
    /// exactly once, attributed to the right sender.
    fn conservation(case: Vec<(u8, u8)>) {
        // Map to 3 senders, payloads tagged (sender, seq).
        let net: Network<String, (usize, u64)> = Network::new();
        let senders = 3usize;
        net.activate("rx".to_string());
        for i in 0..senders {
            net.activate(format!("tx{i}"));
        }
        let mut per_sender: Vec<Vec<u64>> = vec![Vec::new(); senders];
        for (s, v) in &case {
            per_sender[*s as usize % senders].push(u64::from(*v));
        }
        let total: usize = per_sender.iter().map(|v| v.len()).sum();
        let rx = net.port("rx".to_string()).unwrap();
        std::thread::scope(|scope| {
            for (i, msgs) in per_sender.clone().into_iter().enumerate() {
                let port = net.port(format!("tx{i}")).unwrap();
                scope.spawn(move || {
                    for (seq, _v) in msgs.iter().enumerate() {
                        port.send(&"rx".to_string(), (i, seq as u64)).unwrap();
                    }
                });
            }
            let mut seen: Vec<Vec<u64>> = vec![Vec::new(); senders];
            for _ in 0..total {
                let (from, (i, seq)) = rx
                    .recv_any_deadline(Some(Instant::now() + Duration::from_secs(10)))
                    .unwrap();
                assert_eq!(from, format!("tx{i}"));
                seen[i].push(seq);
            }
            // Per-sender FIFO: each sender's sequence numbers arrive in
            // order (rendezvous means at most one in flight per pair).
            for (i, seqs) in seen.iter().enumerate() {
                let expected: Vec<u64> = (0..per_sender[i].len() as u64).collect();
                assert_eq!(seqs, &expected, "sender {i} order");
            }
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn messages_conserved_and_fifo(case in proptest::collection::vec((0u8..3, any::<u8>()), 0..30)) {
            conservation(case);
        }

        /// Select over random subsets of ready peers always fires an arm
        /// that was actually ready, and drains everything eventually.
        #[test]
        fn select_never_invents_messages(seed in any::<u64>(), k in 1usize..4) {
            let net: Network<usize, usize> = Network::with_seed(seed);
            net.activate(99); // receiver
            for i in 0..k {
                net.activate(i);
            }
            let rx = net.port(99).unwrap();
            std::thread::scope(|scope| {
                for i in 0..k {
                    let port = net.port(i).unwrap();
                    scope.spawn(move || port.send(&99, i).unwrap());
                }
                let mut got = Vec::new();
                for _ in 0..k {
                    let arms: Vec<Arm<usize, usize>> =
                        (0..k).map(Arm::recv_from).collect();
                    match rx
                        .select_deadline(arms, Some(Instant::now() + Duration::from_secs(10)))
                        .unwrap()
                    {
                        Outcome::Received { from, msg, .. } => {
                            prop_assert_eq!(from, msg);
                            got.push(msg);
                        }
                        other => prop_assert!(false, "unexpected outcome {:?}", other),
                    }
                }
                got.sort_unstable();
                let expected: Vec<usize> = (0..k).collect();
                prop_assert_eq!(got, expected);
                Ok(())
            })?;
        }
    }
}

#[cfg(test)]
mod try_recv_tests {
    use super::*;

    #[test]
    fn try_recv_returns_none_when_empty() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.activate("b");
        let b = net.port("b").unwrap();
        assert_eq!(b.try_recv_from(&"a").unwrap(), None);
    }

    #[test]
    fn try_recv_takes_deposited_message() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.activate("b");
        let a = net.port("a").unwrap();
        let b = net.port("b").unwrap();
        let t = std::thread::spawn(move || a.send(&"b", 5));
        // Poll until the deposit lands.
        loop {
            match b.try_recv_from(&"a").unwrap() {
                Some(v) => {
                    assert_eq!(v, 5);
                    break;
                }
                None => std::thread::yield_now(),
            }
        }
        t.join().unwrap().unwrap();
    }

    #[test]
    fn try_recv_reports_termination() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.activate("b");
        let b = net.port("b").unwrap();
        net.finish("a");
        assert_eq!(b.try_recv_from(&"a"), Err(ChanError::Terminated("a")));
    }

    #[test]
    fn try_recv_rejects_self() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        let a = net.port("a").unwrap();
        assert_eq!(a.try_recv_from(&"a"), Err(ChanError::Myself));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use std::time::Duration;

    type ChaosPair = (
        Network<&'static str, u32>,
        Port<&'static str, u32>,
        Port<&'static str, u32>,
    );

    fn chaos_pair(plan: FaultPlan) -> ChaosPair {
        let net: Network<&'static str, u32> = Network::with_seed(7);
        net.set_fault_plan(plan);
        net.activate("a");
        net.activate("b");
        let a = net.port("a").unwrap();
        let b = net.port("b").unwrap();
        (net, a, b)
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let net: Network<&'static str, u32> = Network::new();
        net.activate("a");
        net.activate("b");
        let a = net.port("a").unwrap();
        let b = net.port("b").unwrap();
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 5).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 5);
        assert!(net.fault_log().is_empty());
    }

    #[test]
    fn certain_drop_starves_receiver() {
        let (net, a, b) = chaos_pair(FaultPlan::new(1).with_drop(1.0));
        // The sender believes the message went out...
        a.send(&"b", 5).unwrap();
        // ...but the receiver never sees it.
        assert_eq!(
            b.recv_from_deadline(&"a", Some(Instant::now() + Duration::from_millis(50))),
            Err(ChanError::Timeout)
        );
        let log = net.fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, FaultKind::Drop);
        assert_eq!(log[0].from, "a");
        assert_eq!(log[0].to, "b");
    }

    #[test]
    fn certain_duplicate_delivers_twice() {
        let (net, a, b) = chaos_pair(FaultPlan::new(2).with_duplicate(1.0));
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 9).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 9);
        // The duplicate copy is redelivered to b's inbox after the
        // original rendezvous completes.
        let b2 = net.port("b").unwrap();
        let dup = b2.recv_from_deadline(&"a", Some(Instant::now() + Duration::from_secs(2)));
        assert_eq!(dup.unwrap(), 9);
        assert!(net
            .fault_log()
            .iter()
            .any(|r| r.kind == FaultKind::Duplicate));
    }

    #[test]
    fn crash_marks_peer_done() {
        // Crash every peer on its second operation.
        let (net, a, b) = chaos_pair(FaultPlan::new(3).with_crash(1.0, 2));
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 1).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 1);
        // Second op for "a" crashes it.
        let err = a.send(&"b", 2);
        assert_eq!(err, Err(ChanError::Terminated("a")));
        assert_eq!(net.peer_state(&"a"), Some(PeerState::Done));
        let log = net.fault_log();
        assert!(log
            .iter()
            .any(|r| r.kind == FaultKind::Crash && r.from == "a"));
    }

    #[test]
    fn delay_still_delivers() {
        let (net, a, b) = chaos_pair(FaultPlan::new(4).with_delay(1.0, Duration::from_millis(20)));
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        let before = Instant::now();
        a.send(&"b", 6).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 6);
        assert!(before.elapsed() >= Duration::from_millis(20));
        assert!(net.fault_log().iter().any(|r| r.kind == FaultKind::Delay));
    }

    #[test]
    fn fault_log_is_deterministic_across_runs() {
        let run = || {
            let (net, a, b) = chaos_pair(FaultPlan::new(11).with_drop(0.3).with_duplicate(0.3));
            for i in 0..20u32 {
                let t = std::thread::spawn({
                    let b = net.port("b").unwrap();
                    move || {
                        let _ = b.recv_from_deadline(
                            &"a",
                            Some(Instant::now() + Duration::from_millis(200)),
                        );
                    }
                });
                let _ = a.send(&"b", i);
                t.join().unwrap();
                // Drain any duplicate redeliveries so runs line up.
                while b.try_recv_from(&"a").ok().flatten().is_some() {}
            }
            let mut log = net.take_fault_log();
            log.sort();
            log.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_fault_plan_restores_clean_network() {
        let (net, a, b) = chaos_pair(FaultPlan::new(5).with_drop(1.0));
        a.send(&"b", 1).unwrap(); // dropped
        net.clear_fault_plan();
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 2).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 2);
    }

    #[test]
    fn fault_observer_sees_records() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let (net, a, b) = chaos_pair(FaultPlan::new(6).with_drop(1.0));
        let seen2 = Arc::clone(&seen);
        net.set_fault_observer(move |_r| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        a.send(&"b", 1).unwrap();
        assert_eq!(
            b.recv_from_deadline(&"a", Some(Instant::now() + Duration::from_millis(30))),
            Err(ChanError::Timeout)
        );
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn activity_counter_advances_on_progress() {
        let (net, a, b) = chaos_pair(FaultPlan::new(0));
        let start = net.activity();
        let t = std::thread::spawn(move || b.recv_from(&"a"));
        a.send(&"b", 1).unwrap();
        t.join().unwrap().unwrap();
        assert!(net.activity() > start);
    }
}
