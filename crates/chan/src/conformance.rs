//! A reusable conformance suite for [`Transport`] implementations.
//!
//! The [`Transport`] trait documents a behavioral contract (rendezvous,
//! lifecycle, selection, deadlines, abort, fault determinism); this
//! module checks it mechanically, so a new backend — the socket
//! transport in `script-net`, an instrumented wrapper, a future shared
//! memory substrate — is tested against the *same* expectations as the
//! in-process [`ShardedTransport`](crate::ShardedTransport), not
//! against ad-hoc tests that drift.
//!
//! A suite run is parameterized by a **factory**: a closure producing a
//! fresh, independent, *closed* (non-implicitly-declaring) transport
//! for `String` ids and `u64` messages, seeded for reproducible
//! selection. Each check builds its own topology through the factory,
//! so checks are order-independent and a failure names the violated
//! clause.
//!
//! ```
//! use std::sync::Arc;
//! use script_chan::{conformance, ShardedTransport};
//!
//! conformance::run_all(&|seed| {
//!     Arc::new(ShardedTransport::new(false, Some(seed))) as _
//! });
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::fault::{FaultKind, FaultPlan};
use crate::network::{Network, PeerState};
use crate::select::{Arm, Outcome};
use crate::transport::{LatencyOp, Transport};
use crate::ChanError;

/// The concrete transport type the suite exercises.
pub type ConformanceTransport = Arc<dyn Transport<String, u64>>;

/// A factory producing a fresh closed transport seeded with the given
/// selection seed. Every check calls it at least once.
pub type TransportFactory<'a> = &'a dyn Fn(u64) -> ConformanceTransport;

fn net_of(t: ConformanceTransport) -> Network<String, u64> {
    Network::with_transport(t)
}

fn s(x: &str) -> String {
    x.to_string()
}

/// A deadline generous enough that only a contract violation hits it.
fn far() -> Option<Instant> {
    Some(Instant::now() + Duration::from_secs(10))
}

/// A deadline the check *expects* to expire.
fn soon() -> Option<Instant> {
    Some(Instant::now() + Duration::from_millis(60))
}

/// Spins until `cond` holds, panicking with `what` after 10 seconds.
fn await_cond(what: &str, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "conformance: timed out waiting for {what}"
        );
        thread::yield_now();
    }
}

/// Lifecycle: states progress `Expected → Active → Done`, `declare`
/// never downgrades, unknown peers are rejected on closed transports,
/// and the activity counter advances on transitions.
pub fn check_lifecycle(factory: TransportFactory<'_>) {
    let net = net_of(factory(1));
    assert_eq!(
        net.peer_state(&s("x")),
        None,
        "undeclared peer has no state"
    );
    net.declare(s("x"));
    assert_eq!(net.peer_state(&s("x")), Some(PeerState::Expected));
    net.activate(s("x"));
    assert_eq!(net.peer_state(&s("x")), Some(PeerState::Active));
    net.declare(s("x"));
    assert_eq!(
        net.peer_state(&s("x")),
        Some(PeerState::Active),
        "declare must not downgrade an active peer"
    );
    net.finish(s("x"));
    assert_eq!(net.peer_state(&s("x")), Some(PeerState::Done));
    assert!(
        net.port(s("nobody")).is_err(),
        "closed transports must reject undeclared participants"
    );
    let a0 = net.activity();
    net.declare(s("y"));
    assert!(
        net.activity() > a0,
        "lifecycle transitions advance activity"
    );
    let peers: Vec<String> = net.peers().into_iter().map(|(id, _)| id).collect();
    assert!(peers.contains(&s("x")) && peers.contains(&s("y")));
}

/// Rendezvous ordering: messages on one directed edge are delivered in
/// send order, and edges do not interfere.
pub fn check_edge_fifo_ordering(factory: TransportFactory<'_>) {
    let net = net_of(factory(7));
    for id in ["s0", "s1", "rx"] {
        net.activate(s(id));
    }
    let rx = net.port(s("rx")).unwrap();
    let mut handles = Vec::new();
    for (si, base) in [("s0", 0u64), ("s1", 100u64)] {
        let p = net.port(s(si)).unwrap();
        handles.push(thread::spawn(move || {
            for k in 0..20u64 {
                p.send_deadline(&s("rx"), base + k, far()).unwrap();
            }
        }));
    }
    let mut seen: HashMap<String, Vec<u64>> = HashMap::new();
    for _ in 0..40 {
        let (from, v) = rx.recv_any_deadline(far()).unwrap();
        seen.entry(from).or_default().push(v);
    }
    assert_eq!(
        seen[&s("s0")],
        (0..20).collect::<Vec<u64>>(),
        "edge s0→rx must be FIFO"
    );
    assert_eq!(
        seen[&s("s1")],
        (100..120).collect::<Vec<u64>>(),
        "edge s1→rx must be FIFO"
    );
    for h in handles {
        h.join().unwrap();
    }
}

/// Select fairness: with several senders simultaneously ready, seeded
/// selection picks each of them first in some round — no arm is
/// starved by position.
pub fn check_select_fairness(factory: TransportFactory<'_>) {
    const ROUNDS: u64 = 18;
    let senders = ["s0", "s1", "s2"];
    let mut first_counts: HashMap<String, u32> = HashMap::new();
    for round in 0..ROUNDS {
        let net = net_of(factory(round * 31 + 7));
        net.activate(s("rx"));
        for sx in senders {
            net.activate(s(sx));
        }
        let mut handles = Vec::new();
        for (i, sx) in senders.iter().enumerate() {
            let p = net.port(s(sx)).unwrap();
            handles.push(thread::spawn(move || {
                p.send_deadline(&s("rx"), i as u64, far()).unwrap();
            }));
        }
        await_cond("all three deposits to land", || {
            senders
                .iter()
                .all(|sx| net.has_pending_from(&s("rx"), &s(sx)))
        });
        let rx = net.port(s("rx")).unwrap();
        let (first, _) = rx.recv_any_deadline(far()).unwrap();
        *first_counts.entry(first).or_insert(0) += 1;
        for _ in 0..2 {
            rx.recv_any_deadline(far()).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
    }
    for sx in senders {
        assert!(
            first_counts.get(&s(sx)).copied().unwrap_or(0) >= 1,
            "selection never chose {sx} first across {ROUNDS} seeded rounds: {first_counts:?}"
        );
    }
}

/// Send-arm claiming: a send arm fires only against a peer already
/// committed to a matching receive (so firing proves delivery), and
/// times out when no such commitment exists.
pub fn check_send_claim(factory: TransportFactory<'_>) {
    let net = net_of(factory(3));
    net.activate(s("a"));
    net.activate(s("b"));
    let a = net.port(s("a")).unwrap();
    assert_eq!(
        a.select_deadline(vec![Arm::send(s("b"), 1)], soon()),
        Err(ChanError::Timeout),
        "a send arm must not fire without a committed receiver"
    );
    let b = net.port(s("b")).unwrap();
    let h = thread::spawn(move || b.recv_any_deadline(far()));
    let out = a
        .select_deadline(vec![Arm::send(s("b"), 21)], far())
        .unwrap();
    assert!(
        matches!(out, Outcome::Sent { arm: 0, ref to } if *to == s("b")),
        "committed receiver must be claimable: {out:?}"
    );
    assert_eq!(h.join().unwrap(), Ok((s("a"), 21)));
}

/// Deadlines: expiry surfaces `Timeout` and leaves no partial effect —
/// in particular a send that timed out awaiting pickup reclaims its
/// deposit.
pub fn check_deadlines(factory: TransportFactory<'_>) {
    let net = net_of(factory(5));
    net.activate(s("a"));
    net.activate(s("b"));
    net.declare(s("late"));
    let a = net.port(s("a")).unwrap();
    let b = net.port(s("b")).unwrap();
    assert_eq!(
        b.recv_from_deadline(&s("a"), soon()),
        Err(ChanError::Timeout),
        "recv deadline must expire"
    );
    assert_eq!(
        a.send_deadline(&s("late"), 1, soon()),
        Err(ChanError::Timeout),
        "send to a never-activating peer must time out"
    );
    assert_eq!(
        a.send_deadline(&s("b"), 7, soon()),
        Err(ChanError::Timeout),
        "send awaiting pickup must time out"
    );
    assert!(
        !net.has_pending_from(&s("b"), &s("a")),
        "a timed-out send must reclaim its deposit"
    );
    assert_eq!(b.try_recv_from(&s("a")), Ok(None));
    assert_eq!(
        a.select_deadline(vec![Arm::recv_from(s("b"))], soon()),
        Err(ChanError::Timeout)
    );
}

/// Termination surfacing: a done peer's already-deposited message is
/// drained first, then operations naming it fail with `Terminated`;
/// a selection whose arms are all dead reports `AllTerminated`.
pub fn check_termination_surfacing(factory: TransportFactory<'_>) {
    let net = net_of(factory(9));
    for id in ["a", "b", "c"] {
        net.activate(s(id));
    }
    let a = net.port(s("a")).unwrap();
    let h = thread::spawn(move || a.send_deadline(&s("b"), 3, far()));
    await_cond("the deposit from a to land", || {
        net.has_pending_from(&s("b"), &s("a"))
    });
    net.finish(s("a"));
    let b = net.port(s("b")).unwrap();
    assert_eq!(
        b.recv_from_deadline(&s("a"), far()),
        Ok(3),
        "a dead peer's pending message must be drained first"
    );
    let _ = h.join().unwrap();
    assert_eq!(
        b.recv_from_deadline(&s("a"), far()),
        Err(ChanError::Terminated(s("a"))),
        "after draining, a dead peer surfaces Terminated"
    );
    net.finish(s("c"));
    assert_eq!(
        b.select_deadline(vec![Arm::recv_from(s("a")), Arm::recv_from(s("c"))], far()),
        Err(ChanError::AllTerminated),
        "a selection with only dead arms surfaces AllTerminated"
    );
}

/// Watch arms fire only after everything from the watched peer has been
/// drained (the paper's `r.terminated` device).
pub fn check_watch_drains_before_firing(factory: TransportFactory<'_>) {
    let net = net_of(factory(11));
    net.activate(s("a"));
    net.activate(s("b"));
    let a = net.port(s("a")).unwrap();
    let h = thread::spawn(move || a.send_deadline(&s("b"), 4, far()));
    await_cond("the deposit from a to land", || {
        net.has_pending_from(&s("b"), &s("a"))
    });
    net.finish(s("a"));
    let b = net.port(s("b")).unwrap();
    let arms = || vec![Arm::recv_from(s("a")), Arm::watch(s("a"))];
    let out = b.select_deadline(arms(), far()).unwrap();
    assert!(
        matches!(out, Outcome::Received { arm: 0, msg: 4, .. }),
        "the pending message must win over the watch arm: {out:?}"
    );
    let out = b.select_deadline(arms(), far()).unwrap();
    assert!(
        matches!(out, Outcome::Terminated { arm: 1, ref peer } if *peer == s("a")),
        "once drained, the watch arm fires: {out:?}"
    );
    let _ = h.join().unwrap();
}

/// Sealing: still-expected peers become done and communication with
/// them fails with `Terminated`; active peers are untouched.
pub fn check_seal_bars_expected_peers(factory: TransportFactory<'_>) {
    let net = net_of(factory(13));
    net.declare(s("ghost"));
    net.activate(s("a"));
    net.seal();
    assert_eq!(net.peer_state(&s("ghost")), Some(PeerState::Done));
    assert_eq!(net.peer_state(&s("a")), Some(PeerState::Active));
    let a = net.port(s("a")).unwrap();
    assert_eq!(
        a.send_deadline(&s("ghost"), 1, far()),
        Err(ChanError::Terminated(s("ghost")))
    );
}

/// Abort: blocked operations unblock with `Aborted` and future
/// operations fail the same way.
pub fn check_abort_unblocks(factory: TransportFactory<'_>) {
    let net = net_of(factory(15));
    net.activate(s("a"));
    net.activate(s("b"));
    let b = net.port(s("b")).unwrap();
    let h = thread::spawn(move || b.recv_from_deadline(&s("a"), far()));
    thread::sleep(Duration::from_millis(30));
    net.abort();
    assert_eq!(h.join().unwrap(), Err(ChanError::Aborted));
    let a = net.port(s("a")).unwrap();
    assert_eq!(a.send_deadline(&s("b"), 1, far()), Err(ChanError::Aborted));
    assert!(net.is_aborted());
}

/// Crash surfacing: a plan-selected victim fails its own operation with
/// `Terminated(self)`, reads as `Done`, unblocks partners waiting on
/// it, and leaves a `Crash` record in the fault log.
pub fn check_crash_surfacing(factory: TransportFactory<'_>) {
    // Pick a seed whose victim set is exactly {a}. Decisions are pure
    // functions of (seed, peer), so this probe costs nothing.
    let probe = |seed: u64| FaultPlan::new(seed).with_crash(0.5, 2);
    let seed = (0..10_000u64)
        .find(|&sd| {
            let p = probe(sd);
            p.decide_crash(&s("a")) && !p.decide_crash(&s("b")) && !p.decide_crash(&s("w"))
        })
        .expect("a seed selecting exactly peer a exists");
    let net = net_of(factory(1));
    for id in ["a", "b", "w"] {
        net.activate(s(id));
    }
    net.set_fault_plan(probe(seed));
    let w = net.port(s("w")).unwrap();
    let wh = thread::spawn(move || w.recv_from_deadline(&s("a"), far()));
    let b = net.port(s("b")).unwrap();
    let bh = thread::spawn(move || b.recv_from_deadline(&s("a"), far()));
    let a = net.port(s("a")).unwrap();
    a.send_deadline(&s("b"), 1, far()).unwrap();
    assert_eq!(bh.join().unwrap(), Ok(1));
    assert_eq!(
        a.send_deadline(&s("b"), 2, far()),
        Err(ChanError::Terminated(s("a"))),
        "the victim's crash-step operation fails with Terminated(self)"
    );
    assert_eq!(net.peer_state(&s("a")), Some(PeerState::Done));
    assert_eq!(
        wh.join().unwrap(),
        Err(ChanError::Terminated(s("a"))),
        "a partner blocked on the victim must unblock with Terminated"
    );
    assert!(
        net.fault_log()
            .iter()
            .any(|r| r.kind == FaultKind::Crash && r.from == s("a")),
        "the crash must be recorded in the fault log"
    );
}

/// Fault-plan plumbing: an attached plan reads back equal (all fault
/// classes and probabilities survive the transport boundary), the log
/// starts empty, and clearing detaches it.
pub fn check_fault_plan_roundtrip(factory: TransportFactory<'_>) {
    let net = net_of(factory(17));
    net.activate(s("a"));
    net.activate(s("b"));
    assert_eq!(net.fault_plan(), None);
    let plan = FaultPlan::new(21)
        .with_drop(0.25)
        .with_delay(0.5, Duration::from_micros(300))
        .with_duplicate(0.1)
        .with_crash(0.4, 3);
    net.set_fault_plan(plan.clone());
    assert_eq!(
        net.fault_plan(),
        Some(plan),
        "an attached plan must read back unchanged"
    );
    assert!(net.fault_log().is_empty());
    net.clear_fault_plan();
    assert_eq!(net.fault_plan(), None);
}

/// Fault determinism: the same seed and communication schedule produce
/// byte-identical fault logs on two independent runs.
pub fn check_fault_determinism(factory: TransportFactory<'_>) {
    let one = chaos_schedule_log(factory);
    let two = chaos_schedule_log(factory);
    assert!(
        !one.is_empty(),
        "the reference chaos schedule injects at least one fault"
    );
    assert_eq!(
        one, two,
        "the same seed and schedule must replay the same fault log"
    );
}

/// Runs the reference chaos schedule — 24 sequential sends on one edge
/// under a fixed drop/delay/duplicate plan — and returns the rendered
/// fault log.
///
/// Because injection decisions are made at the sending edge as pure
/// functions of (seed, edge, sequence), the returned log is identical
/// for *any* conforming transport: callers compare it across backends
/// to prove chaos seeds replay across process boundaries.
pub fn chaos_schedule_log(factory: TransportFactory<'_>) -> Vec<String> {
    let net = net_of(factory(23));
    net.activate(s("a"));
    net.activate(s("b"));
    net.set_fault_plan(
        FaultPlan::new(29)
            .with_drop(0.35)
            .with_delay(0.2, Duration::from_micros(100))
            .with_duplicate(0.25),
    );
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || {
        let mut got = Vec::new();
        while let Ok(v) = b.recv_from_deadline(&s("a"), far()) {
            got.push(v);
        }
        got
    });
    let a = net.port(s("a")).unwrap();
    for k in 0..24u64 {
        a.send_deadline(&s("b"), k, far())
            .expect("receiver drains continuously");
    }
    net.finish(s("a"));
    let _ = rx.join().unwrap();
    net.fault_log().iter().map(|r| r.to_string()).collect()
}

/// Session resumption: under a seeded sever schedule — where a
/// connection-oriented transport's hub tears down the carrying
/// connection mid-run and the spoke must reconnect, resume its session
/// and replay un-acked requests — every message still arrives exactly
/// once and in order, and the fault log is a deterministic function of
/// the seed. On the in-process transport sever records are injected at
/// the same points but enacting them is a no-op, so the check holds the
/// two backends to the same observable contract.
pub fn check_session_resumption(factory: TransportFactory<'_>) {
    let run = || {
        let net = net_of(factory(53));
        net.activate(s("a"));
        net.activate(s("b"));
        net.set_fault_plan(FaultPlan::new(59).with_sever(0.25));
        let b = net.port(s("b")).unwrap();
        let rx = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = b.recv_from_deadline(&s("a"), far()) {
                got.push(v);
            }
            got
        });
        let a = net.port(s("a")).unwrap();
        for k in 0..24u64 {
            a.send_deadline(&s("b"), k, far())
                .expect("sever within the lease must not lose the send");
        }
        net.finish(s("a"));
        let got = rx.join().unwrap();
        let log: Vec<String> = net.fault_log().iter().map(|r| r.to_string()).collect();
        (got, log)
    };
    let (got, log) = run();
    assert_eq!(
        got,
        (0..24).collect::<Vec<u64>>(),
        "every message must arrive exactly once, in order, across severs"
    );
    assert!(
        log.iter().any(|r| r.contains("sever")),
        "the reference sever schedule must inject at least one sever: {log:?}"
    );
    let (got2, log2) = run();
    assert_eq!(got, got2, "sever/resume delivery must be deterministic");
    assert_eq!(log, log2, "the sever schedule must replay bit-for-bit");
}

/// Lease semantics must not mask real death: when the peer is already
/// `Done`, a send that draws a sever must still surface
/// [`ChanError::Terminated`] promptly — resumption recovers connections,
/// never finished peers.
pub fn check_lease_expiry(factory: TransportFactory<'_>) {
    let net = net_of(factory(61));
    net.activate(s("a"));
    net.activate(s("b"));
    net.set_fault_plan(FaultPlan::new(67).with_sever(1.0));
    net.finish(s("b"));
    let a = net.port(s("a")).unwrap();
    let start = Instant::now();
    let err = a
        .send_deadline(&s("b"), 7, far())
        .expect_err("the peer is finished; resumption must not revive it");
    assert_eq!(err, ChanError::Terminated(s("b")));
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "termination must surface promptly, not wait out a lease"
    );
    assert!(
        net.fault_log().iter().any(|r| r.kind == FaultKind::Sever),
        "a certain sever plan must record the sever"
    );
}

/// Runs the reference sever/resume schedule — 16 sequential sends on
/// one edge under a certain-delay + seeded-sever plan — and returns the
/// merged observer stream.
///
/// Unlike [`merged_event_stream`], the *full* interleaving of fault
/// records and send samples is **not** compared across transports: over
/// a socket a response write races the resumed session's event replay.
/// Callers instead compare the fault-record subsequence (which is
/// push-ordered and deduplicated by sequence number across resumes) and
/// the count of successful sends.
pub fn sever_resume_event_stream(factory: TransportFactory<'_>) -> Vec<String> {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let net = net_of(factory(71));
    net.activate(s("a"));
    net.activate(s("b"));
    {
        let log = Arc::clone(&log);
        net.set_fault_observer(move |rec| log.lock().unwrap().push(format!("fault {rec}")));
    }
    {
        let log = Arc::clone(&log);
        net.set_latency_observer(move |sample| {
            if sample.op == LatencyOp::Send {
                log.lock().unwrap().push(s("send ok"));
            }
        });
    }
    net.set_fault_plan(
        FaultPlan::new(73)
            .with_delay(1.0, Duration::from_micros(50))
            .with_sever(0.3),
    );
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || while b.recv_from_deadline(&s("a"), far()).is_ok() {});
    let a = net.port(s("a")).unwrap();
    for k in 0..16u64 {
        a.send_deadline(&s("b"), k, far())
            .expect("receiver drains continuously across severs");
    }
    net.finish(s("a"));
    rx.join().unwrap();
    let stream = log.lock().unwrap().clone();
    stream
}

/// Sever-stream parity: the fault-record subsequence of the reference
/// sever/resume schedule — the part a resumed session must deliver
/// gaplessly, exactly once — and the successful-send count are
/// identical across the two factories' transports.
pub fn check_sever_stream_parity(one: TransportFactory<'_>, two: TransportFactory<'_>) {
    let a = sever_resume_event_stream(one);
    let b = sever_resume_event_stream(two);
    let faults_of = |st: &[String]| -> Vec<String> {
        st.iter()
            .filter(|e| e.starts_with("fault"))
            .cloned()
            .collect()
    };
    let sends_of = |st: &[String]| st.iter().filter(|e| *e == "send ok").count();
    assert!(
        faults_of(&a).iter().any(|e| e.contains("sever")),
        "the reference sever schedule streams at least one sever record: {a:?}"
    );
    assert_eq!(
        faults_of(&a),
        faults_of(&b),
        "fault records must stream identically — gapless and exactly once — across resumes"
    );
    assert_eq!(
        sends_of(&a),
        sends_of(&b),
        "every send must succeed exactly once on both transports"
    );
    assert_eq!(sends_of(&a), 16, "all sixteen sends must complete");
}

/// The reference open-family churn schedule: a member that enrolls
/// mid-performance, rendezvouses once, and departs, under sever+delay
/// chaos. Returns the merged stream of lifecycle markers, fault
/// records, and successful-send samples. Every logged operation runs
/// on the calling thread, so the stream is a deterministic function of
/// the transport's seeded chaos schedule alone.
pub fn open_family_churn_stream(factory: TransportFactory<'_>) -> Vec<String> {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let net = net_of(factory(83));
    net.activate(s("seeder"));
    net.activate(s("member0"));
    net.declare(s("late"));
    {
        let log = Arc::clone(&log);
        net.set_fault_observer(move |rec| log.lock().unwrap().push(format!("fault {rec}")));
    }
    {
        let log = Arc::clone(&log);
        net.set_latency_observer(move |sample| {
            if sample.op == LatencyOp::Send {
                log.lock().unwrap().push(s("send ok"));
            }
        });
    }
    net.set_fault_plan(
        FaultPlan::new(89)
            .with_delay(1.0, Duration::from_micros(50))
            .with_sever(0.3),
    );
    let m0 = net.port(s("member0")).unwrap();
    let rx0 = thread::spawn(move || while m0.recv_from_deadline(&s("seeder"), far()).is_ok() {});
    let seeder = net.port(s("seeder")).unwrap();
    // The performance is under way before the late member enrolls.
    for k in 0..6u64 {
        seeder
            .send_deadline(&s("member0"), k, far())
            .expect("dissemination proceeds across severs");
    }
    log.lock().unwrap().push(s("late enrolls"));
    net.activate(s("late"));
    let late = net.port(s("late")).unwrap();
    let rx_late = thread::spawn(move || late.recv_from_deadline(&s("seeder"), far()));
    assert_eq!(
        seeder.send_deadline(&s("late"), 100, far()),
        Ok(()),
        "the late member rendezvouses exactly once"
    );
    assert_eq!(rx_late.join().unwrap(), Ok(100));
    log.lock().unwrap().push(s("late departs"));
    net.finish(s("late"));
    // A push to the departed member surfaces Terminated, and the watch
    // arm — the paper's r.terminated — fires.
    assert_eq!(
        seeder.send_deadline(&s("late"), 101, far()),
        Err(ChanError::Terminated(s("late"))),
        "a departed member must surface Terminated, not block"
    );
    log.lock().unwrap().push(s("push to departed: terminated"));
    match seeder.select_deadline(vec![Arm::watch(s("late"))], far()) {
        Ok(Outcome::Terminated { arm: 0, ref peer }) if *peer == s("late") => {
            log.lock().unwrap().push(s("r.terminated observed"));
        }
        other => panic!("watch on a departed member must fire: {other:?}"),
    }
    // Dissemination to the remaining live cast continues unharmed.
    for k in 6..12u64 {
        seeder
            .send_deadline(&s("member0"), k, far())
            .expect("survivors keep disseminating after the departure");
    }
    net.finish(s("seeder"));
    rx0.join().unwrap();
    let stream = log.lock().unwrap().clone();
    stream
}

/// Open-family churn parity: the reference enroll/rendezvous/depart
/// schedule leaves identical event streams on both factories'
/// transports — the chaos fault-record subsequence, the lifecycle
/// markers, and the successful-send count all match. (As in
/// [`check_sever_stream_parity`], the merged interleaving is not
/// compared: across a sever, a resumed session may deliver the severed
/// operation's latency sample after the next operation's fault
/// records.)
pub fn check_open_family_churn(one: TransportFactory<'_>, two: TransportFactory<'_>) {
    let a = open_family_churn_stream(one);
    let b = open_family_churn_stream(two);
    let faults_of = |st: &[String]| -> Vec<String> {
        st.iter()
            .filter(|e| e.starts_with("fault"))
            .cloned()
            .collect()
    };
    let markers_of = |st: &[String]| -> Vec<String> {
        st.iter()
            .filter(|e| !e.starts_with("fault") && *e != "send ok")
            .cloned()
            .collect()
    };
    assert!(
        faults_of(&a).iter().any(|e| e.contains("sever")),
        "the reference churn schedule streams at least one sever record: {a:?}"
    );
    assert_eq!(
        markers_of(&a),
        vec![
            s("late enrolls"),
            s("late departs"),
            s("push to departed: terminated"),
            s("r.terminated observed"),
        ],
        "the enroll/rendezvous/depart lifecycle must run to completion"
    );
    assert_eq!(
        faults_of(&a),
        faults_of(&b),
        "the churn schedule's fault records must stream identically on both transports"
    );
    assert_eq!(
        markers_of(&a),
        markers_of(&b),
        "the enroll/depart lifecycle must be identical on both transports"
    );
    let sends_of = |st: &[String]| st.iter().filter(|e| *e == "send ok").count();
    assert_eq!(
        sends_of(&a),
        sends_of(&b),
        "every push must land exactly once on both transports"
    );
    assert_eq!(
        sends_of(&a),
        13,
        "all twelve member0 pushes plus the late rendezvous must land exactly once"
    );
}

/// Latency reporting: a fresh transport has no samples; successful
/// rendezvous produce `Send` and `Select` samples; `take_latency_samples`
/// drains; and a plan-injected delay is visible in the recorded
/// elapsed times (the watchdog's adaptive-window contract).
pub fn check_latency_reporting(factory: TransportFactory<'_>) {
    let net = net_of(factory(19));
    net.activate(s("a"));
    net.activate(s("b"));
    assert!(
        net.latency_samples().is_empty(),
        "a fresh transport must report no latency samples"
    );
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || {
        for _ in 0..8u64 {
            b.select_deadline(vec![Arm::recv_from(s("a"))], far())
                .unwrap();
        }
    });
    let a = net.port(s("a")).unwrap();
    for k in 0..8u64 {
        a.send_deadline(&s("b"), k, far()).unwrap();
    }
    rx.join().unwrap();
    let samples = net.latency_samples();
    let sends = samples.iter().filter(|x| x.op == LatencyOp::Send).count();
    let selects = samples.iter().filter(|x| x.op == LatencyOp::Select).count();
    assert!(
        sends >= 8,
        "8 successful sends must each leave a Send sample, got {sends}"
    );
    assert!(
        selects >= 8,
        "8 successful selections must each leave a Select sample, got {selects}"
    );
    let drained = net.take_latency_samples();
    assert_eq!(drained.len(), samples.len(), "take must drain every sample");
    assert!(
        net.latency_samples().is_empty(),
        "after take, the sample log must be empty"
    );
    // A certain (probability-1) injected delay must show up in the
    // observed latency of the operation that paid for it.
    let delay = Duration::from_millis(20);
    net.set_fault_plan(FaultPlan::new(31).with_delay(1.0, delay));
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || b.recv_from_deadline(&s("a"), far()));
    a.send_deadline(&s("b"), 99, far()).unwrap();
    assert_eq!(rx.join().unwrap(), Ok(99));
    let slow = net
        .take_latency_samples()
        .into_iter()
        .map(|x| x.elapsed)
        .max()
        .expect("the delayed rendezvous leaves samples");
    assert!(
        slow >= delay,
        "an injected {delay:?} delay must be visible in latency samples, max was {slow:?}"
    );
}

/// Runs a fixed drop+delay chaos schedule — 16 sends on one edge, the
/// receiver draining until the sender finishes — and returns the
/// per-operation sample counts (sorted by op) plus the largest elapsed
/// time observed.
///
/// Drop and delay decisions are pure functions of (seed, edge,
/// sequence) and the schedule is fully sequential, so the *counts* are
/// identical for any conforming transport; callers compare them across
/// backends to prove both attribute latency to the same operations.
/// (Duplication is deliberately excluded: redelivery is best-effort and
/// timing-dependent, so it would make counts nondeterministic.)
pub fn latency_sample_profile(
    factory: TransportFactory<'_>,
) -> (Vec<(LatencyOp, usize)>, Duration) {
    let delay = Duration::from_millis(2);
    let net = net_of(factory(37));
    net.activate(s("a"));
    net.activate(s("b"));
    net.set_fault_plan(FaultPlan::new(41).with_drop(0.35).with_delay(1.0, delay));
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || {
        let mut got = 0u64;
        while b.recv_from_deadline(&s("a"), far()).is_ok() {
            got += 1;
        }
        got
    });
    let a = net.port(s("a")).unwrap();
    for k in 0..16u64 {
        a.send_deadline(&s("b"), k, far())
            .expect("receiver drains continuously");
    }
    net.finish(s("a"));
    let _ = rx.join().unwrap();
    let samples = net.latency_samples();
    let max = samples
        .iter()
        .map(|x| x.elapsed)
        .max()
        .unwrap_or(Duration::ZERO);
    let mut counts: HashMap<LatencyOp, usize> = HashMap::new();
    for sample in &samples {
        *counts.entry(sample.op).or_insert(0) += 1;
    }
    let mut counts: Vec<(LatencyOp, usize)> = counts.into_iter().collect();
    counts.sort();
    assert!(
        max >= delay,
        "the certain injected delay must dominate the slowest sample"
    );
    (counts, max)
}

/// Runs a fixed delay-only chaos schedule — 16 serial sends on one edge
/// with a 0.5-probability injected delay, the receiver draining until
/// the sender finishes — and returns the merged *push-delivered* event
/// stream: fault records and sender-side `Send` latency samples, in
/// arrival order, rendered with timestamps elided.
///
/// The schedule is deliberately drop-free (the protocol never stalls)
/// and fully serial on the sending side, and both the in-process
/// transport and the socket transport deliver an operation's fault
/// record *before* that operation's success sample (in process the same
/// thread emits both; over TCP the hub writes the event push frame
/// before the response, and the client's serial reader dispatches in
/// frame order). Receiver-side samples are excluded: they race with the
/// sender's. The stream is therefore identical for any conforming
/// transport.
pub fn merged_event_stream(factory: TransportFactory<'_>) -> Vec<String> {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let net = net_of(factory(43));
    net.activate(s("a"));
    net.activate(s("b"));
    {
        let log = Arc::clone(&log);
        net.set_fault_observer(move |rec| log.lock().unwrap().push(format!("fault {rec}")));
    }
    {
        let log = Arc::clone(&log);
        net.set_latency_observer(move |sample| {
            if sample.op == LatencyOp::Send {
                log.lock().unwrap().push(s("send ok"));
            }
        });
    }
    net.set_fault_plan(FaultPlan::new(47).with_delay(0.5, Duration::from_micros(200)));
    let b = net.port(s("b")).unwrap();
    let rx = thread::spawn(move || while b.recv_from_deadline(&s("a"), far()).is_ok() {});
    let a = net.port(s("a")).unwrap();
    for k in 0..16u64 {
        a.send_deadline(&s("b"), k, far())
            .expect("receiver drains continuously");
    }
    net.finish(s("a"));
    rx.join().unwrap();
    let stream = log.lock().unwrap().clone();
    stream
}

/// Event-stream parity: the merged observer-delivered event stream of
/// the reference delay schedule — fault records interleaved with send
/// samples — is identical (modulo timestamps, which the rendering
/// elides) across the two factories' transports.
pub fn check_event_stream_parity(one: TransportFactory<'_>, two: TransportFactory<'_>) {
    let a = merged_event_stream(one);
    let b = merged_event_stream(two);
    assert!(
        !a.is_empty(),
        "the reference delay schedule produces observer events"
    );
    assert!(
        a.iter().any(|e| e.starts_with("fault")),
        "the reference delay schedule streams at least one fault record: {a:?}"
    );
    assert!(
        a.iter().any(|e| e == "send ok"),
        "every successful send leaves a sample in the stream: {a:?}"
    );
    assert_eq!(
        a, b,
        "both transports must deliver the same merged event stream"
    );
}

/// Pipelining: one transport instance carries many concurrent blocking
/// operations at once — several sender roles each with a deep stream of
/// sends in flight, plus interleaved selections — and every rendezvous
/// completes exactly once. On a socket transport this is the
/// many-outstanding-requests-per-connection path: correlation ids must
/// route out-of-order hub answers back to the right callers.
pub fn check_pipelined_calls(factory: TransportFactory<'_>) {
    const SENDERS: u64 = 8;
    const PER_SENDER: u64 = 24;
    let t = factory(31);
    t.declare(s("sink"));
    t.activate(s("sink"));
    for i in 0..SENDERS {
        t.declare(s(&format!("p{i}")));
        t.activate(s(&format!("p{i}")));
    }
    thread::scope(|scope| {
        for i in 0..SENDERS {
            let t = Arc::clone(&t);
            scope.spawn(move || {
                let me = s(&format!("p{i}"));
                for k in 0..PER_SENDER {
                    // Alternate plain sends and send-arm selections so
                    // both blocking entry points pipeline.
                    if k % 2 == 0 {
                        t.send(&me, &s("sink"), i * PER_SENDER + k, far()).unwrap();
                    } else {
                        let got = t
                            .select(&me, vec![Arm::send(s("sink"), i * PER_SENDER + k)], far())
                            .unwrap();
                        assert!(matches!(got, Outcome::Sent { .. }));
                    }
                }
            });
        }
        let t = Arc::clone(&t);
        scope.spawn(move || {
            let mut seen: HashMap<String, Vec<u64>> = HashMap::new();
            for _ in 0..SENDERS * PER_SENDER {
                match t.select(&s("sink"), vec![Arm::recv_any()], far()).unwrap() {
                    Outcome::Received { from, msg, .. } => {
                        seen.entry(from).or_default().push(msg);
                    }
                    other => panic!("pipelined sink: unexpected outcome {other:?}"),
                }
            }
            for i in 0..SENDERS {
                let vals = &seen[&s(&format!("p{i}"))];
                let want: Vec<u64> = (0..PER_SENDER).map(|k| i * PER_SENDER + k).collect();
                assert_eq!(
                    vals, &want,
                    "pipelined sends from p{i} must arrive exactly once, in order"
                );
            }
        });
    });
}

/// The reference message labeler of the monitored-protocol schedule:
/// even payloads are `ping`s, odd payloads are `pong`s.
///
/// A plain `fn` so it crosses the transport seam; a hub-backed factory
/// must install the *same* labeler on its server
/// (`TransportServer::set_message_labeler`) — spokes forward opaque
/// messages, so labels are extracted where delivery happens.
pub fn reference_label(m: &u64) -> Option<String> {
    Some(if m.is_multiple_of(2) { "ping" } else { "pong" }.to_string())
}

/// How the reference monitored-protocol schedule deviates from its
/// protocol, if at all. Each variant is one of the classic misbehaving
/// roles a runtime conformance monitor must flag: a message to the
/// wrong peer, a mislabeled message, a message the protocol never
/// prescribed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misbehavior {
    /// Follow the protocol exactly.
    None,
    /// The final `ping` goes to `b` instead of `c`.
    WrongPeer,
    /// The final `ping` is sent with a `pong` payload.
    WrongLabel,
    /// A fifth exchange the protocol does not contain.
    ExtraSend,
}

/// The rendezvous trace the conforming reference schedule must
/// produce, in observation order, with per-edge delivery counters.
pub const REFERENCE_TRACE: [&str; 6] = [
    "rendezvous \"a\" -> \"b\" [ping] #0",
    "rendezvous \"b\" -> \"a\" [pong] #0",
    "rendezvous \"a\" -> \"b\" [ping] #1",
    "rendezvous \"b\" -> \"a\" [pong] #1",
    "rendezvous \"a\" -> \"c\" [ping] #0",
    "rendezvous \"c\" -> \"a\" [pong] #0",
];

/// Runs the reference monitored-protocol schedule — a strictly serial
/// ping/pong protocol (two rounds with `b`, one with `c`), optionally
/// deviating per `misbehavior` — and returns the rendered rendezvous
/// record stream in observation order.
///
/// The schedule is serial (role `a` never starts an exchange before
/// the previous one completed) and records are emitted at pickup,
/// under the receiving endpoint's lock, *before* the sender's blocked
/// operation returns — so the global observation order is a pure
/// function of the schedule: identical across runs and across
/// conforming transports. That is what lets a conformance monitor
/// report the same first-divergence position everywhere.
pub fn monitored_rendezvous_trace(
    factory: TransportFactory<'_>,
    misbehavior: Misbehavior,
) -> Vec<String> {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let net = net_of(factory(79));
    for id in ["a", "b", "c"] {
        net.activate(s(id));
    }
    {
        let log = Arc::clone(&log);
        net.set_rendezvous_observer(
            move |rec| log.lock().unwrap().push(rec.to_string()),
            reference_label,
        );
    }
    let responder = |who: &str| {
        let p = net.port(s(who)).unwrap();
        thread::spawn(move || {
            while let Ok(v) = p.recv_from_deadline(&s("a"), far()) {
                p.send_deadline(&s("a"), v + 1, far()).unwrap();
            }
        })
    };
    let hb = responder("b");
    let hc = responder("c");
    let a = net.port(s("a")).unwrap();
    let exchange = |peer: &str, msg: u64| {
        a.send_deadline(&s(peer), msg, far()).unwrap();
        a.recv_from_deadline(&s(peer), far()).unwrap();
    };
    exchange("b", 0);
    exchange("b", 2);
    match misbehavior {
        Misbehavior::None => exchange("c", 4),
        Misbehavior::WrongPeer => exchange("b", 4),
        Misbehavior::WrongLabel => exchange("c", 5),
        Misbehavior::ExtraSend => {
            exchange("c", 4);
            exchange("b", 6);
        }
    }
    net.finish(s("a"));
    hb.join().unwrap();
    hc.join().unwrap();
    let trace = log.lock().unwrap().clone();
    trace
}

/// Index of the first position where `got` deviates from the
/// conforming [`REFERENCE_TRACE`] — the chan-level analogue of a
/// conformance monitor's first-divergence verdict.
pub fn first_divergence(got: &[String]) -> Option<usize> {
    (0..got.len().max(REFERENCE_TRACE.len()))
        .find(|&i| got.get(i).map(String::as_str) != REFERENCE_TRACE.get(i).copied())
}

/// Protocol monitoring: the rendezvous observer reports every
/// completed rendezvous exactly once, in schedule order, with gapless
/// per-edge delivery counters and labeler-extracted labels — and each
/// reference misbehavior (wrong peer, wrong label, extra send)
/// diverges from the conforming trace at a fixed, reproducible
/// position. This is the contract `script-proto`'s runtime
/// `ConformanceMonitor` builds its verdicts on.
pub fn check_protocol_monitoring(factory: TransportFactory<'_>) {
    let conforming = monitored_rendezvous_trace(factory, Misbehavior::None);
    assert_eq!(
        conforming,
        REFERENCE_TRACE.map(str::to_string).to_vec(),
        "the conforming schedule must observe exactly the reference trace"
    );
    assert_eq!(first_divergence(&conforming), None);
    for (misbehavior, want) in [
        (Misbehavior::WrongPeer, 4),
        (Misbehavior::WrongLabel, 4),
        (Misbehavior::ExtraSend, 6),
    ] {
        let got = monitored_rendezvous_trace(factory, misbehavior);
        assert_eq!(
            first_divergence(&got),
            Some(want),
            "{misbehavior:?} must diverge first at position {want}: {got:?}"
        );
        let again = monitored_rendezvous_trace(factory, misbehavior);
        assert_eq!(
            got, again,
            "{misbehavior:?} must observe the same trace on every run"
        );
    }
}

/// Monitoring parity: for the conforming schedule and every reference
/// misbehavior, the two factories' transports observe byte-identical
/// rendezvous traces — so a conformance monitor reaches the same
/// verdict, at the same first-divergence position, wherever the
/// performance runs.
pub fn check_monitoring_parity(one: TransportFactory<'_>, two: TransportFactory<'_>) {
    for misbehavior in [
        Misbehavior::None,
        Misbehavior::WrongPeer,
        Misbehavior::WrongLabel,
        Misbehavior::ExtraSend,
    ] {
        let a = monitored_rendezvous_trace(one, misbehavior);
        let b = monitored_rendezvous_trace(two, misbehavior);
        assert_eq!(
            first_divergence(&a),
            first_divergence(&b),
            "{misbehavior:?}: both transports must diverge at the same position"
        );
        assert_eq!(
            a, b,
            "{misbehavior:?}: both transports must observe the same rendezvous trace"
        );
    }
}

/// Runs every check in the suite against the factory.
pub fn run_all(factory: TransportFactory<'_>) {
    check_lifecycle(factory);
    check_edge_fifo_ordering(factory);
    check_select_fairness(factory);
    check_send_claim(factory);
    check_deadlines(factory);
    check_termination_surfacing(factory);
    check_watch_drains_before_firing(factory);
    check_seal_bars_expected_peers(factory);
    check_abort_unblocks(factory);
    check_crash_surfacing(factory);
    check_fault_plan_roundtrip(factory);
    check_fault_determinism(factory);
    check_latency_reporting(factory);
    check_event_stream_parity(factory, factory);
    check_session_resumption(factory);
    check_lease_expiry(factory);
    check_sever_stream_parity(factory, factory);
    check_pipelined_calls(factory);
    check_protocol_monitoring(factory);
    check_open_family_churn(factory, factory);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ShardedTransport;

    fn sharded(seed: u64) -> ConformanceTransport {
        Arc::new(ShardedTransport::new(false, Some(seed)))
    }

    #[test]
    fn sharded_transport_conforms() {
        run_all(&sharded);
    }

    #[test]
    fn sharded_chaos_schedule_is_stable() {
        assert_eq!(chaos_schedule_log(&sharded), chaos_schedule_log(&sharded));
    }

    #[test]
    fn sharded_event_stream_is_stable() {
        check_event_stream_parity(&sharded, &sharded);
    }
}
