//! Deterministic fault injection for rendezvous networks.
//!
//! A [`FaultPlan`] describes *which* faults to inject — message drops,
//! per-hop delivery delays, duplications, and peer crashes — as pure
//! functions of a seed. Every decision is keyed by the communication
//! edge and that edge's own delivery sequence number (or, for crashes,
//! by the peer and its own operation count), **never** by wall-clock
//! time or global ordering. Two runs of the same protocol under the
//! same plan therefore inject the *same set* of faults regardless of
//! thread interleaving — the property the chaos soak harness asserts.
//!
//! A plan is attached to a network with
//! [`Network::set_fault_plan`](crate::Network::set_fault_plan); a
//! network without a plan pays one `Option` branch per operation and
//! nothing else.

use std::hash::{Hash, Hasher};
use std::time::Duration;

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A message was silently discarded after the sender observed a
    /// completed send (models loss on the wire after transmission).
    Drop,
    /// Delivery of a message was delayed by the plan's delay duration.
    Delay,
    /// A message was delivered a second time after the rendezvous
    /// completed.
    Duplicate,
    /// A peer was forcibly terminated at its configured operation step.
    Crash,
    /// The sender's *connection* was severed mid-operation. Recorded at
    /// the sending edge like every other decision; transports without
    /// connections (in-process) record it as a semantic no-op, while a
    /// connection-oriented transport enacts it by cutting the link the
    /// sender lives on. Session-layer recovery (resume within the
    /// lease) is expected to make the operation itself still succeed.
    Sever,
    /// Like [`FaultKind::Sever`], but the cut link additionally may not
    /// be re-established for the plan's partition duration — a
    /// short-lived network partition rather than a single dropped
    /// connection.
    Partition,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Delay => write!(f, "delay"),
            FaultKind::Duplicate => write!(f, "duplicate"),
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Sever => write!(f, "sever"),
            FaultKind::Partition => write!(f, "partition"),
        }
    }
}

/// One injected fault, as recorded in the network's fault log.
///
/// For message faults (`Drop`/`Delay`/`Duplicate`), `from`/`to` name
/// the communication edge and `seq` is the edge-local send index. For
/// `Crash`, `from` and `to` both name the victim and `seq` is the
/// victim's operation count at the moment it crashed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultRecord<I> {
    /// The kind of fault injected.
    pub kind: FaultKind,
    /// Sending side of the affected edge (the victim, for crashes).
    pub from: I,
    /// Receiving side of the affected edge (the victim, for crashes).
    pub to: I,
    /// Edge-local send index (operation count, for crashes).
    pub seq: u64,
}

impl<I: std::fmt::Debug> std::fmt::Display for FaultRecord<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {:?}->{:?} #{}",
            self.kind, self.from, self.to, self.seq
        )
    }
}

/// A seeded, deterministic schedule of faults.
///
/// All probabilities default to zero, so `FaultPlan::new(seed)` injects
/// nothing; enable individual fault classes with the builder methods.
///
/// # Example
///
/// ```
/// use script_chan::FaultPlan;
///
/// let plan = FaultPlan::new(7)
///     .with_drop(0.05)
///     .with_delay(0.2, std::time::Duration::from_micros(200))
///     .with_crash(0.5, 3);
/// assert_eq!(plan.seed(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    delay: Duration,
    duplicate_prob: f64,
    crash_prob: f64,
    crash_step: u64,
    sever_prob: f64,
    partition_prob: f64,
    partition: Duration,
}

impl FaultPlan {
    /// A plan injecting nothing, keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            duplicate_prob: 0.0,
            crash_prob: 0.0,
            crash_step: 0,
            sever_prob: 0.0,
            partition_prob: 0.0,
            partition: Duration::ZERO,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same fault classes and probabilities under a different seed
    /// (e.g. one derived per performance from an instance-level seed).
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        Self { seed, ..*self }
    }

    /// Drops each sent message with probability `p` (the sender still
    /// observes a successful send).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Delays each delivery with probability `p` by `delay` before the
    /// message is deposited.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_delay(mut self, p: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability out of range");
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Redelivers each successfully received message a second time with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability out of range"
        );
        self.duplicate_prob = p;
        self
    }

    /// Crashes each peer with probability `p` when that peer performs
    /// its `step`-th network operation (1-based: `step = 1` crashes the
    /// victim on its first operation). Crash selection is per-peer and
    /// seed-derived, so the victim set is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0` or `step` is zero.
    #[must_use]
    pub fn with_crash(mut self, p: f64, step: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "crash probability out of range");
        assert!(step > 0, "crash step is 1-based");
        self.crash_prob = p;
        self.crash_step = step;
        self
    }

    /// Severs the sender's connection with probability `p` as each
    /// message enters the sending edge. The decision is recorded like
    /// any other fault; only connection-oriented transports enact it
    /// (the in-process transport has no connection to cut), and a
    /// session layer with resumption makes the operation still succeed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_sever(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "sever probability out of range");
        self.sever_prob = p;
        self
    }

    /// Cuts the sender's connection with probability `p` and keeps it
    /// unreconnectable for `duration` (a transient network partition).
    /// When both a partition and a sever would fire on the same
    /// message, the partition wins and only it is recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_partition(mut self, p: f64, duration: Duration) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "partition probability out of range"
        );
        self.partition_prob = p;
        self.partition = duration;
        self
    }

    /// The configured per-hop delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// The configured drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_prob
    }

    /// The configured delay probability.
    pub fn delay_probability(&self) -> f64 {
        self.delay_prob
    }

    /// The configured duplicate probability.
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_prob
    }

    /// The configured crash probability.
    pub fn crash_probability(&self) -> f64 {
        self.crash_prob
    }

    /// The configured crash step (0 when crashes are disabled).
    pub fn crash_step(&self) -> u64 {
        self.crash_step
    }

    /// The configured sever probability.
    pub fn sever_probability(&self) -> f64 {
        self.sever_prob
    }

    /// The configured partition probability.
    pub fn partition_probability(&self) -> f64 {
        self.partition_prob
    }

    /// The configured partition duration.
    pub fn partition_duration(&self) -> Duration {
        self.partition
    }

    /// True if no fault class is enabled.
    pub fn is_noop(&self) -> bool {
        !self.has_message_faults() && !self.has_crashes() && !self.has_connection_faults()
    }

    /// True if any per-message fault class (drop, delay, duplicate) can
    /// fire.
    pub fn has_message_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0 || self.duplicate_prob > 0.0
    }

    /// True if peer crashes can fire.
    pub fn has_crashes(&self) -> bool {
        self.crash_prob > 0.0 && self.crash_step > 0
    }

    /// True if any connection-level fault class (sever, partition) can
    /// fire.
    pub fn has_connection_faults(&self) -> bool {
        self.sever_prob > 0.0 || self.partition_prob > 0.0
    }

    /// Should the `seq`-th message on edge `from → to` be dropped?
    pub fn decide_drop<I: Hash>(&self, from: &I, to: &I, seq: u64) -> bool {
        self.decide(b"drop", from, to, seq, self.drop_prob)
    }

    /// Should the `seq`-th message on edge `from → to` be delayed?
    pub fn decide_delay<I: Hash>(&self, from: &I, to: &I, seq: u64) -> bool {
        self.decide(b"delay", from, to, seq, self.delay_prob)
    }

    /// Should the `seq`-th message on edge `from → to` be duplicated?
    pub fn decide_duplicate<I: Hash>(&self, from: &I, to: &I, seq: u64) -> bool {
        self.decide(b"dup", from, to, seq, self.duplicate_prob)
    }

    /// Is `peer` a crash victim under this plan? (If so, it crashes at
    /// operation [`FaultPlan::crash_step`].)
    pub fn decide_crash<I: Hash>(&self, peer: &I) -> bool {
        self.crash_step > 0 && self.decide(b"crash", peer, peer, 0, self.crash_prob)
    }

    /// Should the `seq`-th message on edge `from → to` sever the
    /// sender's connection?
    pub fn decide_sever<I: Hash>(&self, from: &I, to: &I, seq: u64) -> bool {
        self.decide(b"sever", from, to, seq, self.sever_prob)
    }

    /// Should the `seq`-th message on edge `from → to` open a transient
    /// partition on the sender's connection?
    pub fn decide_partition<I: Hash>(&self, from: &I, to: &I, seq: u64) -> bool {
        self.decide(b"part", from, to, seq, self.partition_prob)
    }

    /// Seeded Bernoulli draw from the (tag, edge, seq) key. FNV-1a is
    /// stable across platforms and runs, which makes fault schedules
    /// replayable byte-for-byte.
    fn decide<I: Hash>(&self, tag: &[u8], from: &I, to: &I, seq: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut h = FnvHasher::new(self.seed);
        h.write(tag);
        from.hash(&mut h);
        to.hash(&mut h);
        h.write_u64(seq);
        // 53 uniform bits → [0, 1).
        let unit = (h.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// FNV-1a, seeded. `std::collections::hash_map::DefaultHasher` is not
/// stable across Rust releases; fault schedules must be.
struct FnvHasher(u64);

impl FnvHasher {
    fn new(seed: u64) -> Self {
        Self(0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // One final avalanche round so low bits are well mixed.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A fault log grouped by directed edge: each `(from, to)` pair with
/// that edge's records in their original (edge-local) order, edges
/// sorted.
pub type EdgeLog<I> = Vec<((I, I), Vec<FaultRecord<I>>)>;

/// Groups an ordered fault log by directed communication edge,
/// preserving each edge's own record order.
///
/// Because every [`FaultPlan`] decision is a pure function of
/// `(kind, from, to, seq)`, the per-edge sub-logs are the
/// interleaving-free view of a chaos run: two runs of the same
/// protocol under the same plan — even on different transports, or
/// with performances spread across federated data-plane nodes — must
/// produce identical groupings even when the *global* log order
/// differs. Edges are returned in sorted order so the result is
/// directly comparable across runs.
pub fn per_edge_log<I>(log: &[FaultRecord<I>]) -> EdgeLog<I>
where
    I: Clone + Ord,
{
    let mut edges: std::collections::BTreeMap<(I, I), Vec<FaultRecord<I>>> =
        std::collections::BTreeMap::new();
    for rec in log {
        edges
            .entry((rec.from.clone(), rec.to.clone()))
            .or_default()
            .push(rec.clone());
    }
    edges.into_iter().collect()
}

/// Renders a fault log as one stable fingerprint string per edge:
/// `"from->to: kind#seq kind#seq …"`, edges sorted, records in their
/// edge-local order.
///
/// Useful for asserting bit-identical fault schedules across
/// transports (the conformance and soak harnesses compare these
/// line-for-line between in-process, socket, and federated runs).
pub fn per_edge_fingerprints<I>(log: &[FaultRecord<I>]) -> Vec<String>
where
    I: Clone + Ord + std::fmt::Debug,
{
    per_edge_log(log)
        .into_iter()
        .map(|((from, to), recs)| {
            let mut line = format!("{from:?}->{to:?}:");
            for r in &recs {
                use std::fmt::Write as _;
                let _ = write!(line, " {}#{}", r.kind, r.seq);
            }
            line
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_decides_nothing() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_noop());
        for seq in 0..100 {
            assert!(!plan.decide_drop(&"a", &"b", seq));
            assert!(!plan.decide_delay(&"a", &"b", seq));
            assert!(!plan.decide_duplicate(&"a", &"b", seq));
        }
        assert!(!plan.decide_crash(&"a"));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).with_drop(0.5);
        let b = FaultPlan::new(1).with_drop(0.5);
        let c = FaultPlan::new(2).with_drop(0.5);
        let draws = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|s| p.decide_drop(&"x", &"y", s)).collect()
        };
        assert_eq!(draws(&a), draws(&b));
        assert_ne!(draws(&a), draws(&c));
    }

    #[test]
    fn decisions_are_edge_local() {
        let plan = FaultPlan::new(3).with_drop(0.5);
        let ab: Vec<bool> = (0..256).map(|s| plan.decide_drop(&"a", &"b", s)).collect();
        let ba: Vec<bool> = (0..256).map(|s| plan.decide_drop(&"b", &"a", s)).collect();
        // Directionality matters (overwhelmingly unlikely to collide).
        assert_ne!(ab, ba);
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let plan = FaultPlan::new(9).with_drop(0.25);
        let hits = (0..10_000)
            .filter(|&s| plan.decide_drop(&"a", &"b", s))
            .count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn crash_selection_is_per_peer() {
        let plan = FaultPlan::new(4).with_crash(0.5, 2);
        let victims: Vec<bool> = (0..64).map(|i| plan.decide_crash(&i)).collect();
        assert!(victims.iter().any(|&v| v), "some peer crashes");
        assert!(!victims.iter().all(|&v| v), "not every peer crashes");
        assert_eq!(
            victims,
            (0..64).map(|i| plan.decide_crash(&i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extreme_probabilities_short_circuit() {
        let plan = FaultPlan::new(5).with_drop(1.0).with_duplicate(0.0);
        assert!(plan.decide_drop(&"a", &"b", 0));
        assert!(!plan.decide_duplicate(&"a", &"b", 0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = FaultPlan::new(0).with_drop(1.5);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_crash_step_rejected() {
        let _ = FaultPlan::new(0).with_crash(0.5, 0);
    }

    #[test]
    fn connection_faults_are_deterministic_and_distinct() {
        let plan = FaultPlan::new(6)
            .with_sever(0.5)
            .with_partition(0.5, Duration::from_millis(40));
        assert!(plan.has_connection_faults());
        assert!(!plan.is_noop());
        assert_eq!(plan.partition_duration(), Duration::from_millis(40));
        let severs: Vec<bool> = (0..256).map(|s| plan.decide_sever(&"a", &"b", s)).collect();
        let parts: Vec<bool> = (0..256)
            .map(|s| plan.decide_partition(&"a", &"b", s))
            .collect();
        assert!(severs.iter().any(|&v| v) && !severs.iter().all(|&v| v));
        // The two classes draw from distinct hash tags.
        assert_ne!(severs, parts);
        assert_eq!(
            severs,
            (0..256)
                .map(|s| plan.decide_sever(&"a", &"b", s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_sever_probability_rejected() {
        let _ = FaultPlan::new(0).with_sever(-0.1);
    }

    #[test]
    fn per_edge_grouping_is_order_insensitive_across_edges() {
        let rec = |kind, from: &str, to: &str, seq| FaultRecord {
            kind,
            from: from.to_string(),
            to: to.to_string(),
            seq,
        };
        // Two logs with the same per-edge contents but different global
        // interleavings (as two transports would produce).
        let run_a = vec![
            rec(FaultKind::Drop, "a", "b", 0),
            rec(FaultKind::Sever, "b", "c", 1),
            rec(FaultKind::Drop, "a", "b", 4),
            rec(FaultKind::Delay, "b", "c", 2),
        ];
        let run_b = vec![
            rec(FaultKind::Sever, "b", "c", 1),
            rec(FaultKind::Delay, "b", "c", 2),
            rec(FaultKind::Drop, "a", "b", 0),
            rec(FaultKind::Drop, "a", "b", 4),
        ];
        assert_eq!(per_edge_log(&run_a), per_edge_log(&run_b));
        assert_eq!(per_edge_fingerprints(&run_a), per_edge_fingerprints(&run_b));
        assert_eq!(
            per_edge_fingerprints(&run_a),
            vec![
                "\"a\"->\"b\": drop#0 drop#4".to_string(),
                "\"b\"->\"c\": sever#1 delay#2".to_string(),
            ]
        );
    }

    #[test]
    fn per_edge_grouping_preserves_edge_local_order() {
        let rec = |seq| FaultRecord {
            kind: FaultKind::Drop,
            from: "a",
            to: "b",
            seq,
        };
        // Edge-local order is the log order, not sorted by seq.
        let log = vec![rec(9), rec(2), rec(5)];
        let grouped = per_edge_log(&log);
        assert_eq!(grouped.len(), 1);
        assert_eq!(
            grouped[0].1.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![9, 2, 5]
        );
        assert_eq!(
            per_edge_fingerprints(&log),
            vec!["\"a\"->\"b\": drop#9 drop#2 drop#5".to_string()]
        );
    }

    #[test]
    fn record_display_names_edge() {
        let r = FaultRecord {
            kind: FaultKind::Drop,
            from: "a",
            to: "b",
            seq: 3,
        };
        assert!(r.to_string().contains("drop"));
        assert!(r.to_string().contains('3'));
    }
}
