//! Error type for network operations.

use std::error::Error;
use std::fmt;

/// Error returned by [`Port`](crate::Port) operations.
///
/// `I` is the participant identifier type of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChanError<I> {
    /// The named peer has terminated (or will never be filled) and no
    /// message from it is pending.
    ///
    /// This is the paper's "distinguished value" returned by attempts to
    /// communicate with an unfilled role.
    Terminated(I),
    /// Every possible partner of the operation has terminated.
    AllTerminated,
    /// The network was aborted (for example because a participant
    /// panicked).
    Aborted,
    /// The operation's deadline expired.
    Timeout,
    /// The peer was never declared in this network.
    Unknown(I),
    /// A participant attempted to communicate with itself.
    Myself,
    /// The select call was given no arms.
    EmptySelect,
}

impl<I: fmt::Debug> fmt::Display for ChanError<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanError::Terminated(peer) => write!(f, "peer {peer:?} terminated"),
            ChanError::AllTerminated => write!(f, "all possible partners terminated"),
            ChanError::Aborted => write!(f, "network aborted"),
            ChanError::Timeout => write!(f, "operation timed out"),
            ChanError::Unknown(peer) => write!(f, "peer {peer:?} not declared in this network"),
            ChanError::Myself => write!(f, "self-communication is not allowed"),
            ChanError::EmptySelect => write!(f, "select requires at least one arm"),
        }
    }
}

impl<I: fmt::Debug> Error for ChanError<I> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e: ChanError<&str> = ChanError::Terminated("r1");
        assert!(e.to_string().contains("r1"));
        assert!(ChanError::<u8>::Aborted.to_string().contains("abort"));
        assert!(ChanError::<u8>::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn implements_error_trait() {
        fn is_error<E: Error>(_: &E) {}
        is_error(&ChanError::<u32>::AllTerminated);
    }

    #[test]
    fn equality() {
        assert_eq!(ChanError::Terminated(1), ChanError::Terminated(1));
        assert_ne!(ChanError::Terminated(1), ChanError::Terminated(2));
        assert_ne!(ChanError::<u8>::Aborted, ChanError::<u8>::Timeout);
    }
}
