//! Asynchronous submit_send/submit_select state machines.
//!
//! These drive `ShardedTransport` through the nonblocking submission
//! API directly (the socket hub is its main consumer) and check that
//! the callbacks observe exactly the results the blocking calls would
//! have returned — rendezvous completion at pickup, timeouts that
//! reclaim deposits, termination errors, chaos determinism, and the
//! one-scheduler-thread property the reactor refactor exists for.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use script_chan::{Arm, ChanError, FaultPlan, Outcome, ShardedTransport, Transport};

type T = Arc<ShardedTransport<&'static str, u32>>;

fn fresh() -> T {
    let t = Arc::new(ShardedTransport::new(false, Some(7)));
    for who in ["a", "b", "c"] {
        t.declare(who);
        t.activate(who);
    }
    t
}

fn far() -> Option<Instant> {
    Some(Instant::now() + Duration::from_secs(5))
}

/// Blocking receive of one message from `from`, via a select.
fn recv(
    t: &T,
    me: &'static str,
    from: &'static str,
    deadline: Option<Instant>,
) -> Result<u32, ChanError<&'static str>> {
    match t.select(&me, vec![Arm::recv_from(from)], deadline)? {
        Outcome::Received { msg, .. } => Ok(msg),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// A send submitted before any receiver is waiting completes only once
/// the message is picked up — rendezvous, not buffering.
#[test]
fn async_send_completes_at_pickup() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_send(
            &"a",
            &"b",
            42,
            far(),
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .ok()
        .expect("sharded transport supports async submission");
    // The deposit parks: nothing completes until the receiver takes it.
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    assert_eq!(recv(&t, "b", "a", far()).unwrap(), 42);
    rx.recv_timeout(Duration::from_secs(5))
        .expect("callback fires")
        .expect("send succeeds");
}

/// Many pipelined sends from one submitter all land, in order, with no
/// caller thread blocked.
#[test]
fn async_sends_pipeline_in_order() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    for v in 0..64u32 {
        let tx = tx.clone();
        Arc::clone(&t)
            .submit_send(
                &"a",
                &"b",
                v,
                far(),
                Box::new(move |r| tx.send((v, r)).unwrap()),
            )
            .ok()
            .expect("async submission");
    }
    for v in 0..64u32 {
        assert_eq!(recv(&t, "b", "a", far()).unwrap(), v);
    }
    let mut done: Vec<u32> = (0..64)
        .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
        .map(|(v, r)| {
            r.expect("send succeeds");
            v
        })
        .collect();
    done.sort_unstable();
    assert_eq!(done, (0..64).collect::<Vec<_>>());
}

/// An async select with a receive arm completes when a message shows up.
#[test]
fn async_select_receives() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_select(
            &"b",
            vec![Arm::recv_any()],
            far(),
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .ok()
        .expect("async submission");
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    t.send(&"a", &"b", 9, far()).unwrap();
    match rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap() {
        Outcome::Received { from, msg, .. } => {
            assert_eq!(from, "a");
            assert_eq!(msg, 9);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// An async select with a send arm fires by claiming a committed
/// receiver, same as the blocking path.
#[test]
fn async_select_send_arm_claims() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_select(
            &"a",
            vec![Arm::send("b", 5)],
            far(),
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .ok()
        .expect("async submission");
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    assert_eq!(recv(&t, "b", "a", far()).unwrap(), 5);
    match rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap() {
        Outcome::Sent { to, .. } => assert_eq!(to, "b"),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// Timeouts reclaim an un-picked-up deposit: after the async send times
/// out, a fresh blocking send can deposit for the same edge.
#[test]
fn async_send_timeout_reclaims_deposit() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_send(
            &"a",
            &"b",
            1,
            Some(Instant::now() + Duration::from_millis(50)),
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .ok()
        .expect("async submission");
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Err(ChanError::Timeout) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // The slot was reclaimed: a new rendezvous on the same edge works.
    let t2 = Arc::clone(&t);
    let h = std::thread::spawn(move || recv(&t2, "b", "a", far()));
    t.send(&"a", &"b", 2, far()).unwrap();
    assert_eq!(h.join().unwrap().unwrap(), 2);
}

/// Async select times out like the blocking one, withdrawing offers.
#[test]
fn async_select_timeout() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_select(
            &"b",
            vec![Arm::recv_any()],
            Some(Instant::now() + Duration::from_millis(50)),
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .ok()
        .expect("async submission");
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Err(ChanError::Timeout) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // The withdrawn offer must not strand a later sender.
    let t2 = Arc::clone(&t);
    let h = std::thread::spawn(move || recv(&t2, "b", "a", far()));
    t.send(&"a", &"b", 3, far()).unwrap();
    assert_eq!(h.join().unwrap().unwrap(), 3);
}

/// Sending to a finished peer fails with `Terminated`, to oneself with
/// `Myself`, and to an undeclared role with `Unknown` — all delivered
/// through the callback.
#[test]
fn async_send_error_paths() {
    let t = fresh();
    t.finish("c");

    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_send(&"a", &"c", 0, far(), {
            let tx = tx.clone();
            Box::new(move |r| tx.send(r).unwrap())
        })
        .ok()
        .unwrap();
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Err(ChanError::Terminated(who)) => assert_eq!(who, "c"),
        other => panic!("expected Terminated, got {other:?}"),
    }

    Arc::clone(&t)
        .submit_send(&"a", &"a", 0, far(), {
            let tx = tx.clone();
            Box::new(move |r| tx.send(r).unwrap())
        })
        .ok()
        .unwrap();
    assert!(matches!(
        rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        Err(ChanError::Myself)
    ));

    Arc::clone(&t)
        .submit_send(&"a", &"nobody", 0, far(), {
            let tx = tx.clone();
            Box::new(move |r| tx.send(r).unwrap())
        })
        .ok()
        .unwrap();
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Err(ChanError::Unknown(who)) => assert_eq!(who, "nobody"),
        other => panic!("expected Unknown, got {other:?}"),
    }
}

/// A peer finishing *after* the deposit but before pickup surfaces as
/// `Terminated` and reclaims the message.
#[test]
fn async_send_peer_finishes_mid_flight() {
    let t = fresh();
    let (tx, rx) = mpsc::channel();
    Arc::clone(&t)
        .submit_send(&"a", &"b", 7, far(), Box::new(move |r| tx.send(r).unwrap()))
        .ok()
        .unwrap();
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    t.finish("b");
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Err(ChanError::Terminated(who)) => assert_eq!(who, "b"),
        other => panic!("expected Terminated, got {other:?}"),
    }
}

/// The same seeded fault plan produces the same chaos log whether ops
/// go through the blocking or the asynchronous path — decisions are a
/// pure function of (seed, edge, sequence), not of scheduling.
#[test]
fn async_chaos_log_matches_blocking() {
    let logs: Vec<Vec<script_chan::FaultRecord<&'static str>>> = [false, true]
        .into_iter()
        .map(|use_async| {
            let t = fresh();
            t.set_fault_plan(
                FaultPlan::new(0xC0FFEE)
                    .with_drop(0.2)
                    .with_delay(0.2, Duration::from_millis(5))
                    .with_duplicate(0.2),
                Clone::clone,
            );
            for v in 0..32u32 {
                let (tx, rx) = mpsc::channel();
                if use_async {
                    Arc::clone(&t)
                        .submit_send(&"a", &"b", v, far(), Box::new(move |r| tx.send(r).unwrap()))
                        .ok()
                        .unwrap();
                } else {
                    let t2 = Arc::clone(&t);
                    std::thread::spawn(move || {
                        tx.send(t2.send(&"a", &"b", v, far())).unwrap();
                    });
                }
                // Drain whatever arrives; dropped sends deliver nothing.
                loop {
                    match rx.recv_timeout(Duration::from_millis(40)) {
                        Ok(r) => {
                            r.unwrap();
                            // Duplicates may have left an extra copy.
                            while recv(
                                &t,
                                "b",
                                "a",
                                Some(Instant::now() + Duration::from_millis(20)),
                            )
                            .is_ok()
                            {}
                            break;
                        }
                        Err(_) => {
                            if recv(
                                &t,
                                "b",
                                "a",
                                Some(Instant::now() + Duration::from_millis(20)),
                            )
                            .is_err()
                            {
                                break;
                            }
                        }
                    }
                }
            }
            t.fault_log()
        })
        .collect();
    assert_eq!(logs[0], logs[1], "chaos log must be schedule-independent");
}

/// All in-flight async ops ride one scheduler thread, not one thread
/// per op — the property that lets a hub serve 1k spokes with O(1)
/// threads.
#[test]
fn async_ops_share_one_scheduler_thread() {
    let t = fresh();
    let before = count_threads();
    let completions = Arc::new(AtomicUsize::new(0));
    let n = 128usize;
    for i in 0..n {
        let c = Arc::clone(&completions);
        Arc::clone(&t)
            .submit_send(
                &"a",
                &"b",
                i as u32,
                far(),
                Box::new(move |r| {
                    r.unwrap();
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .ok()
            .unwrap();
    }
    for j in 0..64 {
        let c = Arc::clone(&completions);
        Arc::clone(&t)
            .submit_select(
                &"c",
                vec![Arm::recv_from("b"), Arm::watch("b")],
                Some(Instant::now() + Duration::from_millis(200 + j)),
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .ok()
            .unwrap();
    }
    let during = count_threads();
    assert!(
        during <= before + 2,
        "192 parked ops must not spawn per-op threads ({before} -> {during})"
    );
    for _ in 0..n {
        recv(&t, "b", "a", far()).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while completions.load(Ordering::SeqCst) < n + 64 {
        assert!(Instant::now() < deadline, "ops never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Process thread count via /proc on Linux; generously assume 1
/// elsewhere (the assertion then only checks we don't explode later).
fn count_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(1)
}

/// Dropping the transport with ops still parked shuts the scheduler
/// down without firing bogus completions or leaking the thread.
#[test]
fn drop_with_parked_ops_is_clean() {
    let t = fresh();
    let (tx, rx) = mpsc::channel::<Result<(), ChanError<&'static str>>>();
    Arc::clone(&t)
        .submit_send(
            &"a",
            &"b",
            1,
            None,
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        )
        .ok()
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(t);
    // The callback is dropped unfired (caller sees a disconnect), which
    // the socket hub maps to a connection-level failure.
    match rx.recv_timeout(Duration::from_secs(2)) {
        Err(mpsc::RecvTimeoutError::Disconnected) => {}
        other => panic!("expected dropped callback, got {other:?}"),
    }
}
