//! A CSP-like host substrate, plus the paper's script-to-CSP translation.
//!
//! Section IV of *Script: A Communication Abstraction Mechanism* (Francez
//! & Hailpern, PODC 1983) adds scripts to CSP and proves, by translation,
//! that scripts "do not transcend the direct expressive power of CSP".
//! This crate provides both halves as runnable code:
//!
//! * [`Parallel`] — CSP parallel commands `[P₁ ‖ P₂ ‖ …]`: named
//!   processes (and process arrays) over synchronous `!`/`?`
//!   communication with guarded alternative commands, built on the
//!   `script-chan` rendezvous kernel;
//! * [`broadcast`] — Figure 6: the broadcast script written directly as a
//!   CSP process network, with the transmitter using output guards;
//! * [`translate`] — Figure 7: the mechanical translation of script
//!   enrollment into CSP, with a supervisor process `p_s` coordinating
//!   `start_s`/`end_s` messages and tagged inter-role communication.
//!
//! # Example
//!
//! ```
//! use script_csp::Parallel;
//!
//! let outputs = Parallel::<u32, u32>::new("pair")
//!     .process("p", |ctx| {
//!         ctx.send("q", 1)?;
//!         Ok(0)
//!     })
//!     .process("q", |ctx| ctx.recv("p"))
//!     .run()
//!     .unwrap();
//! assert_eq!(outputs["q"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod broadcast;
mod guards;
mod process;
pub mod translate;

pub use guards::{repetitive, Loop};
pub use process::{proc_name, CspError, Parallel, ProcCtx};
pub use script_chan::{Arm, Outcome, Source};
