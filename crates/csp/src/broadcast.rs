//! Figure 6: the broadcast script written directly in CSP.
//!
//! The transmitter uses a repetitive alternative command with *output
//! guards*, sending `x` to each recipient in whatever order the
//! recipients become ready:
//!
//! ```text
//! ROLE transmitter (x: item)::
//!   VAR sent: ARRAY[1..5] OF boolean := 5*false;
//!   *[ (k=1..5) ¬sent[k]; recipient[k]!x → sent[k] := true ]
//! ROLE (i=1..5) recipient(y_i):: transmitter?y_i
//! ```

use crate::process::{proc_name, CspError, Parallel};
use script_chan::{Arm, Outcome};

/// Name of the transmitter process.
pub const TRANSMITTER: &str = "transmitter";

/// Runs the Figure 6 CSP broadcast with `n` recipients, returning each
/// recipient's received value (indexed by recipient number).
///
/// # Errors
///
/// Propagates any [`CspError`] from the underlying processes (e.g.
/// [`CspError::Timeout`] if `timeout` is hit).
pub fn run<M>(n: usize, value: M, timeout: std::time::Duration) -> Result<Vec<M>, CspError>
where
    M: Send + Clone + 'static,
{
    let v = value.clone();
    let out = Parallel::<M, Option<M>>::new("csp_broadcast")
        .timeout(timeout)
        .process(TRANSMITTER, move |ctx| {
            let mut sent = vec![false; n];
            // *[ (k) ¬sent[k]; recipient[k]!x → sent[k] := true ]
            while sent.iter().any(|s| !s) {
                let arms: Vec<Arm<String, M>> = sent
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !**s)
                    .map(|(k, _)| Arm::send(proc_name("recipient", k), v.clone()))
                    .collect();
                match ctx.alternative(arms)? {
                    Outcome::Sent { to, .. } => {
                        let k: usize = to
                            .trim_start_matches("recipient[")
                            .trim_end_matches(']')
                            .parse()
                            .expect("recipient name");
                        sent[k] = true;
                    }
                    _ => unreachable!("only output guards offered"),
                }
            }
            Ok(None)
        })
        .process_array("recipient", n, |ctx, _i| ctx.recv(TRANSMITTER).map(Some))
        .run()?;
    Ok((0..n)
        .map(|i| {
            out[&proc_name("recipient", i)]
                .clone()
                .expect("recipient received")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn all_recipients_receive_the_value() {
        let got = run(5, 99u64, Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![99; 5]);
    }

    #[test]
    fn single_recipient() {
        let got = run(1, "x".to_string(), Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec!["x".to_string()]);
    }

    #[test]
    fn wide_fanout() {
        let got = run(32, 7u8, Duration::from_secs(10)).unwrap();
        assert_eq!(got.len(), 32);
        assert!(got.iter().all(|&v| v == 7));
    }
}
