//! CSP parallel commands: named processes over synchronous channels.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use script_chan::{Arm, ChanError, Network, Outcome, Port};

/// Error produced by CSP process operations.
///
/// Communication failures are reported in terms of the peer process name.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CspError {
    /// The named peer process has terminated with no pending message.
    Terminated(String),
    /// Every possible partner has terminated (distributed termination of
    /// a repetitive command).
    AllTerminated,
    /// The network was aborted because some process panicked.
    Aborted,
    /// A deadline expired.
    Timeout,
    /// The named process is not part of this parallel command.
    Unknown(String),
    /// Self-communication attempted.
    Myself,
    /// An alternative command was given no alternatives.
    EmptyAlternative,
    /// A process body failed with an application error.
    App(String),
}

impl CspError {
    /// Convenience constructor for application-level process errors.
    pub fn app(msg: impl Into<String>) -> Self {
        CspError::App(msg.into())
    }
}

impl fmt::Display for CspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspError::Terminated(p) => write!(f, "process {p} terminated"),
            CspError::AllTerminated => write!(f, "all partner processes terminated"),
            CspError::Aborted => write!(f, "parallel command aborted"),
            CspError::Timeout => write!(f, "operation timed out"),
            CspError::Unknown(p) => write!(f, "process {p} not in this parallel command"),
            CspError::Myself => write!(f, "self-communication is not allowed"),
            CspError::EmptyAlternative => write!(f, "alternative command has no alternatives"),
            CspError::App(m) => write!(f, "process error: {m}"),
        }
    }
}

impl std::error::Error for CspError {}

pub(crate) fn map_err(e: ChanError<String>) -> CspError {
    match e {
        ChanError::Terminated(p) => CspError::Terminated(p),
        ChanError::AllTerminated => CspError::AllTerminated,
        ChanError::Aborted => CspError::Aborted,
        ChanError::Timeout => CspError::Timeout,
        ChanError::Unknown(p) => CspError::Unknown(p),
        ChanError::Myself => CspError::Myself,
        ChanError::EmptySelect => CspError::EmptyAlternative,
    }
}

/// The canonical name of member `i` of process array `base`
/// (CSP's `recipient(3)` style, rendered `recipient[3]`).
pub fn proc_name(base: &str, i: usize) -> String {
    format!("{base}[{i}]")
}

/// The communication capability of one CSP process.
///
/// Provides the `!`/`?` primitives and the guarded alternative command.
pub struct ProcCtx<M> {
    pub(crate) port: Port<String, M>,
    deadline: Option<Instant>,
}

impl<M> fmt::Debug for ProcCtx<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcCtx").field("port", &self.port).finish()
    }
}

impl<M: Send + 'static> ProcCtx<M> {
    /// This process's name.
    pub fn name(&self) -> &String {
        self.port.id()
    }

    /// Synchronous output `to!msg`: blocks until the partner inputs it.
    ///
    /// # Errors
    ///
    /// [`CspError::Terminated`] if the partner has terminated, plus
    /// abort/timeout/addressing failures.
    pub fn send(&self, to: &str, msg: M) -> Result<(), CspError> {
        self.port
            .send_deadline(&to.to_string(), msg, self.deadline)
            .map_err(map_err)
    }

    /// Synchronous input `from?x`.
    ///
    /// # Errors
    ///
    /// As [`ProcCtx::send`].
    pub fn recv(&self, from: &str) -> Result<M, CspError> {
        self.port
            .recv_from_deadline(&from.to_string(), self.deadline)
            .map_err(map_err)
    }

    /// Input from any partner (the extended naming of Francez's CSP
    /// proposal, which the paper's supervisor translation relies on).
    ///
    /// # Errors
    ///
    /// [`CspError::AllTerminated`] once every partner is gone, plus the
    /// failures of [`ProcCtx::send`].
    pub fn recv_any(&self) -> Result<(String, M), CspError> {
        self.port.recv_any_deadline(self.deadline).map_err(map_err)
    }

    /// Guarded alternative command over the given arms; fires exactly one.
    ///
    /// Boolean guards are expressed by omitting disabled arms (the
    /// conventional embedding). Use [`Arm::recv_from`], [`Arm::recv_any`],
    /// [`Arm::send`] (output guards) and [`Arm::watch`].
    ///
    /// # Errors
    ///
    /// [`CspError::AllTerminated`] / [`CspError::Terminated`] when every
    /// arm is permanently unfireable — the CSP rule that a repetitive
    /// command terminates when all partners named in its guards have
    /// terminated — plus abort/timeout failures.
    pub fn alternative(&self, arms: Vec<Arm<String, M>>) -> Result<Outcome<String, M>, CspError> {
        self.port
            .select_deadline(arms, self.deadline)
            .map_err(map_err)
    }

    /// Has the named process terminated?
    pub fn terminated(&self, name: &str) -> bool {
        self.port.network().peer_state(&name.to_string()) == Some(script_chan::PeerState::Done)
    }
}

type ProcBody<M, O> = Box<dyn FnOnce(&ProcCtx<M>) -> Result<O, CspError> + Send>;

/// A CSP parallel command under construction: `[p ‖ q ‖ r(i=1..n)]`.
///
/// Each process runs on its own thread; [`Parallel::run`] blocks until
/// all of them terminate and returns their outputs by process name. A
/// panicking process aborts the whole command.
pub struct Parallel<M, O = ()> {
    name: String,
    deadline: Option<Instant>,
    bodies: Vec<(String, ProcBody<M, O>)>,
}

impl<M, O> fmt::Debug for Parallel<M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parallel")
            .field("name", &self.name)
            .field(
                "processes",
                &self.bodies.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<M, O> Parallel<M, O>
where
    M: Send + 'static,
    O: Send + 'static,
{
    /// Starts building a parallel command (the name is for diagnostics).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            deadline: None,
            bodies: Vec::new(),
        }
    }

    /// Fails every blocking operation after `timeout` (deadlock guard for
    /// tests and benchmarks).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds the named process.
    pub fn process<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: FnOnce(&ProcCtx<M>) -> Result<O, CspError> + Send + 'static,
    {
        self.bodies.push((name.into(), Box::new(body)));
        self
    }

    /// Adds `n` processes `base[0] … base[n-1]` sharing one body; each
    /// receives its index.
    pub fn process_array<F>(mut self, base: &str, n: usize, body: F) -> Self
    where
        F: Fn(&ProcCtx<M>, usize) -> Result<O, CspError> + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        for i in 0..n {
            let body = Arc::clone(&body);
            self.bodies
                .push((proc_name(base, i), Box::new(move |ctx| body(ctx, i))));
        }
        self
    }

    /// Runs the parallel command to completion.
    ///
    /// # Errors
    ///
    /// Returns the first process error encountered (by declaration
    /// order). A panicking process surfaces as [`CspError::Aborted`] for
    /// its peers and [`CspError::App`] for itself.
    pub fn run(self) -> Result<HashMap<String, O>, CspError> {
        let net: Network<String, M> = Network::new();
        for (name, _) in &self.bodies {
            net.activate(name.clone());
        }
        let deadline = self.deadline;
        let mut names = Vec::new();
        let mut handles = Vec::new();
        for (name, body) in self.bodies {
            let port = net.port(name.clone()).expect("declared above");
            let net2 = net.clone();
            names.push(name.clone());
            handles.push(std::thread::spawn(move || {
                let ctx = ProcCtx { port, deadline };
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                match out {
                    Ok(r) => {
                        net2.finish(name);
                        r
                    }
                    Err(_) => {
                        net2.abort();
                        Err(CspError::App(format!("process {name} panicked")))
                    }
                }
            }));
        }
        let mut outputs = HashMap::new();
        let mut first_err = None;
        for (name, h) in names.into_iter().zip(handles) {
            match h.join().expect("catch_unwind already caught panics") {
                Ok(o) => {
                    outputs.insert(name, o);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_name_format() {
        assert_eq!(proc_name("r", 3), "r[3]");
    }

    #[test]
    fn two_process_rendezvous() {
        let out = Parallel::<u32, u32>::new("pair")
            .process("p", |ctx| {
                ctx.send("q", 17)?;
                Ok(0)
            })
            .process("q", |ctx| ctx.recv("p"))
            .run()
            .unwrap();
        assert_eq!(out["q"], 17);
    }

    #[test]
    fn process_array_indices() {
        let out = Parallel::<u32, usize>::new("arr")
            .process_array("w", 4, |_ctx, i| Ok(i * 10))
            .run()
            .unwrap();
        for i in 0..4 {
            assert_eq!(out[&proc_name("w", i)], i * 10);
        }
    }

    #[test]
    fn alternative_with_output_guards() {
        // p offers output to whichever of q, r is ready first.
        let out = Parallel::<u32, u32>::new("alt")
            .process("p", |ctx| {
                let fired = ctx.alternative(vec![
                    Arm::send("q".to_string(), 1),
                    Arm::send("r".to_string(), 2),
                ])?;
                match fired {
                    Outcome::Sent { to, .. } if to == "q" => Ok(1),
                    Outcome::Sent { .. } => Ok(2),
                    _ => unreachable!(),
                }
            })
            .process("q", |ctx| match ctx.recv("p") {
                Ok(v) => Ok(v),
                Err(CspError::Terminated(_) | CspError::AllTerminated) => Ok(0),
                Err(e) => Err(e),
            })
            .process("r", |ctx| match ctx.recv("p") {
                Ok(v) => Ok(v),
                Err(CspError::Terminated(_) | CspError::AllTerminated) => Ok(0),
                Err(e) => Err(e),
            })
            .run()
            .unwrap();
        // Exactly one of q, r received; p reports which.
        let delivered = out["q"] + out["r"];
        assert_eq!(delivered, out["p"]);
    }

    #[test]
    fn repetitive_command_terminates_when_partners_do() {
        // Server loops until both clients terminate (CSP distributed
        // termination convention).
        let out = Parallel::<u32, u32>::new("server")
            .process("server", |ctx| {
                let mut sum = 0;
                loop {
                    match ctx.recv_any() {
                        Ok((_, v)) => sum += v,
                        Err(CspError::AllTerminated) => return Ok(sum),
                        Err(e) => return Err(e),
                    }
                }
            })
            .process("c1", |ctx| {
                ctx.send("server", 3)?;
                Ok(0)
            })
            .process("c2", |ctx| {
                ctx.send("server", 4)?;
                Ok(0)
            })
            .run()
            .unwrap();
        assert_eq!(out["server"], 7);
    }

    #[test]
    fn panicking_process_aborts_command() {
        let err = Parallel::<u32, ()>::new("boom")
            .process("p", |_ctx| panic!("test panic"))
            .process("q", |ctx| ctx.recv("p").map(|_| ()))
            .run()
            .unwrap_err();
        assert!(matches!(err, CspError::App(_) | CspError::Aborted));
    }

    #[test]
    fn timeout_guards_deadlock() {
        let err = Parallel::<u32, ()>::new("deadlock")
            .timeout(Duration::from_millis(50))
            .process("p", |ctx| ctx.recv("q").map(|_| ()))
            .process("q", |ctx| ctx.recv("p").map(|_| ()))
            .run()
            .unwrap_err();
        // Whichever process times out first terminates, so the other may
        // observe Terminated instead of its own timeout.
        assert!(
            matches!(err, CspError::Timeout | CspError::Terminated(_)),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn terminated_query() {
        let out = Parallel::<u32, bool>::new("term")
            .process("watcher", |ctx| {
                // Wait until fleeting is done.
                while !ctx.terminated("fleeting") {
                    std::thread::yield_now();
                }
                Ok(true)
            })
            .process("fleeting", |_ctx| Ok(false))
            .run()
            .unwrap();
        assert!(out["watcher"]);
    }
}
