//! The CSP repetitive command `*[ G₁ → C₁ □ G₂ → C₂ □ … ]`.
//!
//! A repetitive command retries its alternative until every guard is
//! permanently closed (all named partners terminated), which in CSP is
//! the normal way server loops end. [`repetitive`] packages that
//! convention over [`ProcCtx::alternative`].

use script_chan::{Arm, Outcome};

use crate::process::{CspError, ProcCtx};

/// What the loop body tells the driver after handling one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loop {
    /// Evaluate the guards again.
    Continue,
    /// Leave the repetitive command now.
    Break,
}

/// Runs a CSP repetitive command: on each iteration, `guards()` produces
/// the currently open arms (boolean guards are expressed by omission);
/// `handle` processes the fired outcome. The loop ends normally when
/// every arm is permanently unfireable (partner termination) or when the
/// handler returns [`Loop::Break`]; it returns the number of iterations
/// that fired.
///
/// # Errors
///
/// Propagates any [`CspError`] other than the loop-terminating
/// [`CspError::AllTerminated`] / [`CspError::Terminated`].
///
/// # Example
///
/// ```
/// use script_csp::{repetitive, Arm, Loop, Parallel};
///
/// let out = Parallel::<u32, u32>::new("sum_server")
///     .process("server", |ctx| {
///         let mut sum = 0;
///         repetitive(ctx, || vec![Arm::recv_any()], |outcome| {
///             if let script_csp::Outcome::Received { msg, .. } = outcome {
///                 sum += msg;
///             }
///             Ok(Loop::Continue)
///         })?;
///         Ok(sum)
///     })
///     .process("c1", |ctx| { ctx.send("server", 3)?; Ok(0) })
///     .process("c2", |ctx| { ctx.send("server", 4)?; Ok(0) })
///     .run()
///     .unwrap();
/// assert_eq!(out["server"], 7);
/// ```
pub fn repetitive<M, G, H>(ctx: &ProcCtx<M>, mut guards: G, mut handle: H) -> Result<u64, CspError>
where
    M: Send + 'static,
    G: FnMut() -> Vec<Arm<String, M>>,
    H: FnMut(Outcome<String, M>) -> Result<Loop, CspError>,
{
    let mut fired = 0;
    loop {
        let arms = guards();
        if arms.is_empty() {
            // All boolean guards false: the repetitive command exits.
            return Ok(fired);
        }
        match ctx.alternative(arms) {
            Ok(outcome) => {
                fired += 1;
                match handle(outcome)? {
                    Loop::Continue => {}
                    Loop::Break => return Ok(fired),
                }
            }
            Err(CspError::AllTerminated | CspError::Terminated(_)) => return Ok(fired),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Parallel;
    use std::time::Duration;

    #[test]
    fn server_drains_all_clients_then_exits() {
        let out = Parallel::<u32, u64>::new("drain")
            .timeout(Duration::from_secs(5))
            .process("server", |ctx| {
                repetitive(ctx, || vec![Arm::recv_any()], |_| Ok(Loop::Continue))
            })
            .process_array("c", 3, |ctx, i| {
                ctx.send("server", i as u32)?;
                ctx.send("server", i as u32)?;
                Ok(0)
            })
            .run()
            .unwrap();
        assert_eq!(out["server"], 6);
    }

    #[test]
    fn handler_can_break_early() {
        let out = Parallel::<u32, u64>::new("early")
            .timeout(Duration::from_secs(5))
            .process("server", |ctx| {
                repetitive(
                    ctx,
                    || vec![Arm::recv_any()],
                    |outcome| match outcome {
                        Outcome::Received { msg: 99, .. } => Ok(Loop::Break),
                        _ => Ok(Loop::Continue),
                    },
                )
            })
            .process("client", |ctx| {
                ctx.send("server", 1)?;
                ctx.send("server", 99)?;
                Ok(0)
            })
            .run()
            .unwrap();
        assert_eq!(out["server"], 2);
    }

    #[test]
    fn empty_guard_set_exits_immediately() {
        let out = Parallel::<u32, u64>::new("empty")
            .timeout(Duration::from_secs(5))
            .process("server", |ctx| {
                repetitive(ctx, Vec::new, |_| Ok(Loop::Continue))
            })
            .run()
            .unwrap();
        assert_eq!(out["server"], 0);
    }

    #[test]
    fn dynamic_guards_reflect_state() {
        // Accept at most 2 messages from each of two clients, using
        // boolean guards that close as counts fill up.
        let out = Parallel::<u32, u64>::new("bounded")
            .timeout(Duration::from_secs(5))
            .process("server", |ctx| {
                // Cells let the guard closure and the handler share the
                // counters (both closures are alive at once).
                let from_a = std::cell::Cell::new(0);
                let from_b = std::cell::Cell::new(0);
                repetitive(
                    ctx,
                    || {
                        let mut arms = Vec::new();
                        if from_a.get() < 2 {
                            arms.push(Arm::recv_from("a".to_string()));
                        }
                        if from_b.get() < 2 {
                            arms.push(Arm::recv_from("b".to_string()));
                        }
                        arms
                    },
                    |outcome| {
                        if let Outcome::Received { from, .. } = outcome {
                            if from == "a" {
                                from_a.set(from_a.get() + 1);
                            } else {
                                from_b.set(from_b.get() + 1);
                            }
                        }
                        Ok(Loop::Continue)
                    },
                )
            })
            .process("a", |ctx| {
                ctx.send("server", 1)?;
                ctx.send("server", 1)?;
                Ok(0)
            })
            .process("b", |ctx| {
                ctx.send("server", 2)?;
                ctx.send("server", 2)?;
                Ok(0)
            })
            .run()
            .unwrap();
        assert_eq!(out["server"], 4);
    }
}
