//! Figure 7: the mechanical translation of scripts into plain CSP.
//!
//! The paper proves scripts add no expressive power to CSP by exhibiting
//! a translation: each enrollment becomes (1) a `start_s` message to a
//! per-script supervisor process `p_s`, (2) the role body inlined into
//! the enrolling process with role names replaced by process names (the
//! `WITH` binding) and every communication tagged with the script
//! instance name, and (3) an `end_s` message. The supervisor's
//! `ready`/`done` arrays enforce the *successive activations* rule.
//! (The translation is deliberately more restrictive than the native
//! engine, which since the sharded refactor also runs *overlapping*
//! performances: Fig. 7's single supervisor serializes them, and the
//! equivalence tests compare against serially driven native runs.)
//!
//! The paper's supervisor uses a guarded receive (`ready[k]; p_j?start_s`)
//! to delay an enrollment for an occupied role. Message content cannot
//! gate a receive in this substrate, so the same blocking effect is
//! obtained by a two-message handshake: the supervisor accepts the
//! `start_s`, and replies `go_s` only once the role is free. The enroller
//! stays blocked exactly as under the guarded receive.
//!
//! Tagging (`TMsg::Data { script, .. }`) prevents the "unintended
//! matching between communication commands arising from the translation"
//! that the paper warns about; a tag mismatch is reported as an error
//! instead of being silently delivered.

use std::collections::HashMap;
use std::fmt;

use crate::process::{CspError, ProcCtx};

/// Message vocabulary of a translated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TMsg<M> {
    /// Enrollment request: "I wish to play `role`".
    Start {
        /// The role being claimed.
        role: String,
    },
    /// Supervisor's go-ahead (the accepted guarded receive).
    Go,
    /// Role completion notice.
    End {
        /// The role that finished.
        role: String,
    },
    /// An inter-role payload, tagged with the script instance name.
    Data {
        /// Tag: the script instance this payload belongs to.
        script: String,
        /// The actual message.
        payload: M,
    },
}

/// The canonical name of the supervisor process for script `s`
/// (the paper's `p_s`).
pub fn supervisor_name(script: &str) -> String {
    format!("p_{script}")
}

/// The view a translated role body has of the world: communication with
/// *roles*, transparently mapped to the bound *processes* and tagged with
/// the script name.
pub struct RoleEnv<'a, M> {
    ctx: &'a ProcCtx<TMsg<M>>,
    script: String,
    binding: HashMap<String, String>,
}

impl<M> fmt::Debug for RoleEnv<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoleEnv")
            .field("script", &self.script)
            .field("binding", &self.binding)
            .finish()
    }
}

impl<M: Send + 'static> RoleEnv<'_, M> {
    /// Sends `payload` to the process bound to `role` (translated
    /// `role!payload`).
    ///
    /// # Errors
    ///
    /// [`CspError::Unknown`] if the enrollment's binding does not name
    /// `role`, plus the communication failures of
    /// [`ProcCtx::send`].
    pub fn send_role(&self, role: &str, payload: M) -> Result<(), CspError> {
        let target = self
            .binding
            .get(role)
            .ok_or_else(|| CspError::Unknown(format!("role {role} not in binding")))?;
        self.ctx.send(
            target,
            TMsg::Data {
                script: self.script.clone(),
                payload,
            },
        )
    }

    /// Receives from the process bound to `role` (translated `role?x`),
    /// checking the script tag.
    ///
    /// # Errors
    ///
    /// [`CspError::App`] on a tag mismatch (a message from a different
    /// script instance), [`CspError::Unknown`] for an unbound role, plus
    /// communication failures.
    pub fn recv_role(&self, role: &str) -> Result<M, CspError> {
        let source = self
            .binding
            .get(role)
            .ok_or_else(|| CspError::Unknown(format!("role {role} not in binding")))?;
        match self.ctx.recv(source)? {
            TMsg::Data { script, payload } if script == self.script => Ok(payload),
            TMsg::Data { script, .. } => Err(CspError::App(format!(
                "tag mismatch: expected script '{}', got '{script}'",
                self.script
            ))),
            _ => Err(CspError::App(
                "protocol violation: expected tagged data".to_string(),
            )),
        }
    }

    /// The underlying process context (for name queries etc.).
    pub fn ctx(&self) -> &ProcCtx<TMsg<M>> {
        self.ctx
    }
}

/// Translated enrollment: `ENROLL IN script AS role(...) WITH binding`.
///
/// Performs the `start_s` handshake with the supervisor, runs `body` with
/// role-to-process communication mapped through `binding`, then reports
/// `end_s`.
///
/// # Errors
///
/// Any [`CspError`] from the handshake or the body.
pub fn enroll<M, F>(
    ctx: &ProcCtx<TMsg<M>>,
    script: &str,
    role: &str,
    binding: HashMap<String, String>,
    body: F,
) -> Result<(), CspError>
where
    M: Send + 'static,
    F: FnOnce(&RoleEnv<'_, M>) -> Result<(), CspError>,
{
    let sup = supervisor_name(script);
    ctx.send(
        &sup,
        TMsg::Start {
            role: role.to_string(),
        },
    )?;
    match ctx.recv(&sup)? {
        TMsg::Go => {}
        _ => return Err(CspError::App("protocol violation: expected go".to_string())),
    }
    let env = RoleEnv {
        ctx,
        script: script.to_string(),
        binding,
    };
    body(&env)?;
    ctx.send(
        &sup,
        TMsg::End {
            role: role.to_string(),
        },
    )
}

/// The supervisor process `p_s` of Figure 7: coordinates `performances`
/// consecutive performances of a script with the given roles, enforcing
/// that all roles of one performance finish before the next begins.
///
/// # Errors
///
/// [`CspError::App`] on protocol violations (duplicate starts for a role
/// within one performance, an end without a start), plus communication
/// failures.
pub fn supervisor<M>(
    ctx: &ProcCtx<TMsg<M>>,
    roles: &[String],
    performances: usize,
) -> Result<(), CspError>
where
    M: Send + 'static,
{
    // Queued enrollments for occupied roles: role -> waiting processes.
    let mut waitlist: HashMap<String, Vec<String>> = HashMap::new();
    for _ in 0..performances {
        let mut ready: HashMap<&String, bool> = roles.iter().map(|r| (r, true)).collect();
        let mut done: HashMap<&String, bool> = roles.iter().map(|r| (r, false)).collect();
        // Admit queued enrollments from the previous performance first.
        for role in roles {
            if let Some(queue) = waitlist.get_mut(role) {
                if !queue.is_empty() {
                    let proc = queue.remove(0);
                    ready.insert(role, false);
                    ctx.send(&proc, TMsg::Go)?;
                }
            }
        }
        while done.values().any(|d| !d) {
            let (from, msg) = ctx.recv_any()?;
            match msg {
                TMsg::Start { role } => {
                    let known = roles.iter().find(|r| **r == role).ok_or_else(|| {
                        CspError::App(format!("start for undeclared role {role}"))
                    })?;
                    if ready[known] {
                        ready.insert(known, false);
                        ctx.send(&from, TMsg::Go)?;
                    } else {
                        waitlist.entry(role).or_default().push(from);
                    }
                }
                TMsg::End { role } => {
                    let known = roles
                        .iter()
                        .find(|r| **r == role)
                        .ok_or_else(|| CspError::App(format!("end for undeclared role {role}")))?;
                    if ready[known] {
                        return Err(CspError::App(format!("end without start for {role}")));
                    }
                    done.insert(known, true);
                }
                _ => {
                    return Err(CspError::App(
                        "protocol violation at supervisor".to_string(),
                    ))
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{proc_name, Parallel};
    use std::time::Duration;

    const SCRIPT: &str = "bcast";

    fn roles(n: usize) -> Vec<String> {
        let mut v = vec!["transmitter".to_string()];
        v.extend((0..n).map(|i| format!("recipient[{i}]")));
        v
    }

    /// The full Figure 6+7 setup: a broadcast script, translated.
    fn run_translated(n: usize, performances: usize) -> HashMap<String, Vec<u64>> {
        let mut cmd = Parallel::<TMsg<u64>, Vec<u64>>::new("translated")
            .timeout(Duration::from_secs(10))
            .process(supervisor_name(SCRIPT), move |ctx| {
                supervisor(ctx, &roles(n), performances)?;
                Ok(Vec::new())
            })
            .process("T", move |ctx| {
                for p in 0..performances {
                    let binding: HashMap<String, String> = (0..n)
                        .map(|i| (format!("recipient[{i}]"), proc_name("q", i)))
                        .collect();
                    enroll(ctx, SCRIPT, "transmitter", binding, |env| {
                        for i in 0..n {
                            env.send_role(&format!("recipient[{i}]"), 100 + p as u64)?;
                        }
                        Ok(())
                    })?;
                }
                Ok(Vec::new())
            });
        cmd = cmd.process_array("q", n, move |ctx, i| {
            let mut got = Vec::new();
            for _ in 0..performances {
                let binding: HashMap<String, String> =
                    [("transmitter".to_string(), "T".to_string())].into();
                enroll(ctx, SCRIPT, &format!("recipient[{i}]"), binding, |env| {
                    got.push(env.recv_role("transmitter")?);
                    Ok(())
                })?;
            }
            Ok(got)
        });
        cmd.run().unwrap()
    }

    #[test]
    fn translated_broadcast_delivers() {
        let out = run_translated(3, 1);
        for i in 0..3 {
            assert_eq!(out[&proc_name("q", i)], vec![100]);
        }
    }

    #[test]
    fn successive_performances_serialized_by_supervisor() {
        let out = run_translated(4, 3);
        for i in 0..4 {
            assert_eq!(out[&proc_name("q", i)], vec![100, 101, 102]);
        }
    }

    #[test]
    fn supervisor_rejects_end_without_start() {
        let err = Parallel::<TMsg<u64>, ()>::new("bad")
            .timeout(Duration::from_secs(5))
            .process(supervisor_name("s"), |ctx| {
                supervisor(ctx, &["r".to_string()], 1)
            })
            .process("rogue", |ctx| {
                ctx.send(&supervisor_name("s"), TMsg::End { role: "r".into() })
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, CspError::App(_)));
    }

    #[test]
    fn tag_mismatch_detected() {
        let out = Parallel::<TMsg<u8>, Result<u8, CspError>>::new("tags")
            .timeout(Duration::from_secs(5))
            .process("sender", |ctx| {
                ctx.send(
                    "receiver",
                    TMsg::Data {
                        script: "other_script".into(),
                        payload: 1,
                    },
                )?;
                Ok(Ok(0))
            })
            .process("receiver", |ctx| {
                let env = RoleEnv {
                    ctx,
                    script: "my_script".into(),
                    binding: [("peer".to_string(), "sender".to_string())].into(),
                };
                Ok(env.recv_role("peer"))
            })
            .run()
            .unwrap();
        assert!(matches!(out["receiver"], Err(CspError::App(_))));
    }

    #[test]
    fn late_enroller_waits_for_next_performance() {
        // Two processes compete for the single role; the supervisor must
        // serialize them across two performances.
        let out = Parallel::<TMsg<u8>, u8>::new("compete")
            .timeout(Duration::from_secs(5))
            .process(supervisor_name("solo"), |ctx| {
                supervisor(ctx, &["only".to_string()], 2)?;
                Ok(0)
            })
            .process("a", |ctx| {
                enroll(ctx, "solo", "only", HashMap::new(), |_| Ok(()))?;
                Ok(1)
            })
            .process("b", |ctx| {
                enroll(ctx, "solo", "only", HashMap::new(), |_| Ok(()))?;
                Ok(2)
            })
            .run()
            .unwrap();
        assert_eq!(out["a"] + out["b"], 3);
    }
}
