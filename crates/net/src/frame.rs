//! Length-prefixed framing over a byte stream.
//!
//! Every message on a socket is one *frame*: a 4-byte big-endian length
//! followed by that many payload bytes, capped at
//! [`MAX_FRAME`]. The reader distinguishes a
//! clean close (EOF on a frame boundary, `Ok(None)`) from a truncated
//! frame (EOF mid-frame, `UnexpectedEof`) so peer loss can be told
//! apart from protocol corruption.
//!
//! Two APIs share the format:
//!
//! * [`read_frame`]/[`write_frame`] — blocking, one frame per call, for
//!   code that owns a dedicated thread per stream;
//! * [`FrameDecoder`]/[`WriteBuf`] — incremental state machines for
//!   nonblocking sockets: a decoder accumulates whatever bytes a
//!   readiness wakeup delivered and yields every complete frame, a
//!   write buffer coalesces any number of queued frames into one
//!   contiguous flush (the reactor's writev-style single write per
//!   wakeup).

use std::io::{self, Read, Write};

use crate::wire::MAX_FRAME;

/// Writes one frame: length prefix, payload, flush.
///
/// # Errors
///
/// `InvalidInput` if the payload exceeds `MAX_FRAME`; otherwise any
/// underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// `UnexpectedEof` if the stream ends mid-frame, `InvalidData` if the
/// length prefix exceeds `MAX_FRAME`, otherwise any underlying I/O
/// error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !fill_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Fills `buf` completely, or returns `Ok(false)` if the stream was
/// already at EOF. EOF after a partial fill is `UnexpectedEof`.
fn fill_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Incremental frame decoder for nonblocking streams.
///
/// Feed it bytes with [`FrameDecoder::read_from`] (which loops until
/// the socket would block) or [`FrameDecoder::extend`], then drain
/// complete frames with [`FrameDecoder::next_frame`]. Partial frames —
/// even a split length prefix — persist across calls, so a readiness
/// loop can hand it arbitrary byte fragments.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    pos: usize,
}

/// What one [`FrameDecoder::read_from`] pass observed on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// The socket has no more bytes for now (`WouldBlock`).
    Blocked,
    /// The peer closed the stream (EOF).
    Eof,
}

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reads from `r` until it would block or closes, buffering
    /// everything received.
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock`/`Interrupted`.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match r.read(&mut chunk) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadStatus::Blocked);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One read call from `r`, buffering whatever arrives. For
    /// *blocking* sockets with a read timeout: unlike
    /// [`FrameDecoder::read_from`], this returns as soon as any bytes
    /// land instead of issuing another read that would sleep out the
    /// rest of the timeout.
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock`/`TimedOut`/`Interrupted`.
    pub fn read_once_from(&mut self, r: &mut impl Read) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match r.read(&mut chunk) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(ReadStatus::Blocked);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadStatus::Blocked);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` if a length prefix exceeds [`MAX_FRAME`] (protocol
    /// corruption: the caller severs the connection).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME"),
            ));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Whether a partial frame is buffered — an EOF here is a
    /// truncation, not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.pos
    }

    fn compact(&mut self) {
        if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// An outbound frame buffer: any number of frames queued by any number
/// of producers, flushed as one contiguous byte range per wakeup.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    /// Flushed prefix of `buf` (a partial nonblocking write stops
    /// mid-range; the next flush resumes here).
    start: usize,
}

impl WriteBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one frame (length prefix + payload).
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the payload exceeds [`MAX_FRAME`].
    pub fn push_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
            ));
        }
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Whether any unflushed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start >= self.buf.len()
    }

    /// Writes as much of the queued bytes as `w` accepts right now —
    /// every queued frame goes out in a single coalesced write when the
    /// socket cooperates. Returns whether the buffer fully drained
    /// (`false` = the socket blocked mid-buffer; keep write interest).
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock`/`Interrupted`.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream refused queued frames",
                    ));
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.compact();
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }

    fn compact(&mut self) {
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            let err = read_frame(&mut c).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_is_refused_at_write_time() {
        let big = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }

    #[test]
    fn decoder_reassembles_one_byte_fragments() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        write_frame(&mut bytes, b"").unwrap();
        write_frame(&mut bytes, &vec![7u8; 1000]).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &bytes {
            dec.extend(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"hello");
        assert_eq!(got[1], b"");
        assert_eq!(got[2], vec![7u8; 1000]);
        assert!(!dec.mid_frame(), "no residue after complete frames");
    }

    #[test]
    fn decoder_rejects_oversized_prefix() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_be_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_tracks_mid_frame_residue() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"abcdef").unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..bytes.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.mid_frame(), "truncated frame leaves residue");
    }

    #[test]
    fn write_buf_coalesces_and_resumes_partial_writes() {
        let mut wb = WriteBuf::new();
        wb.push_frame(b"one").unwrap();
        wb.push_frame(b"two-longer").unwrap();
        assert!(!wb.is_empty());

        // A writer that accepts 5 bytes then blocks, alternating.
        struct Dribble {
            out: Vec<u8>,
            open: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.open {
                    self.open = false;
                    let n = buf.len().min(5);
                    self.out.extend_from_slice(&buf[..n]);
                    Ok(n)
                } else {
                    self.open = true;
                    Err(io::Error::from(io::ErrorKind::WouldBlock))
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = Dribble {
            out: Vec::new(),
            open: true,
        };
        let mut rounds = 0;
        while !wb.flush_to(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 32, "flush must make progress");
        }
        assert!(wb.is_empty());
        let mut c = Cursor::new(w.out);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"two-longer");
        assert!(read_frame(&mut c).unwrap().is_none());
    }
}
