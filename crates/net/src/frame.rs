//! Length-prefixed framing over a byte stream.
//!
//! Every message on a socket is one *frame*: a 4-byte big-endian length
//! followed by that many payload bytes, capped at
//! [`MAX_FRAME`]. The reader distinguishes a
//! clean close (EOF on a frame boundary, `Ok(None)`) from a truncated
//! frame (EOF mid-frame, `UnexpectedEof`) so peer loss can be told
//! apart from protocol corruption.

use std::io::{self, Read, Write};

use crate::wire::MAX_FRAME;

/// Writes one frame: length prefix, payload, flush.
///
/// # Errors
///
/// `InvalidInput` if the payload exceeds `MAX_FRAME`; otherwise any
/// underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// `UnexpectedEof` if the stream ends mid-frame, `InvalidData` if the
/// length prefix exceeds `MAX_FRAME`, otherwise any underlying I/O
/// error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !fill_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Fills `buf` completely, or returns `Ok(false)` if the stream was
/// already at EOF. EOF after a partial fill is `UnexpectedEof`.
fn fill_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            let err = read_frame(&mut c).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_is_refused_at_write_time() {
        let big = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }
}
