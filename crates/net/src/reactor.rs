//! A minimal readiness reactor: `poll(2)` + a cross-thread waker.
//!
//! The hub's event loop ([`TransportServer`](crate::TransportServer))
//! multiplexes every spoke connection onto one thread. This module
//! supplies the two primitives that requires and nothing more:
//!
//! * [`Poller`] — a reusable wrapper over the OS readiness syscall.
//!   On Unix it is a direct, hand-written FFI binding to `poll(2)`
//!   (std already links libc; no external crate is needed). Elsewhere
//!   it degrades to a bounded sleep with every registered socket
//!   reported ready — a sleep-scan: correctness is unchanged because
//!   all sockets are nonblocking, only wakeup latency suffers (≤ 5 ms).
//! * [`Waker`] — a self-pipe (a `UnixStream` pair on Unix, an atomic
//!   flag on the fallback) that lets completion callbacks running on
//!   other threads interrupt a parked `poll` so freshly queued output
//!   is flushed immediately.
//!
//! The interest set is **persistent**: descriptors are registered once
//! ([`Poller::register`]), their interests patched in place when they
//! change ([`Poller::set_interest`]), and tombstoned on teardown
//! ([`Poller::deregister`] — the slot's fd becomes -1, which POSIX
//! `poll(2)` ignores, and the slot is recycled for the next
//! registration). Earlier revisions rebuilt the whole pollfd vec every
//! wakeup; caching it drops the per-wake work from O(n) pushes to O(1)
//! patches, which is the cheap half of the known 10k-spoke epoll
//! follow-on (the syscall itself stays O(n) until then).

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub use unix_impl::{fd_of, Fd, Poller, Waker};

#[cfg(not(unix))]
pub use fallback_impl::{fd_of, Fd, Poller, Waker};

/// Readiness observed for one registered descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Bytes (or an accept) are waiting.
    pub readable: bool,
    /// The socket will accept more output.
    pub writable: bool,
    /// Error or hangup: the connection is dead either way — reads
    /// drain whatever remains, then observe EOF.
    pub hangup: bool,
}

/// The poll timeout in whole milliseconds, rounded *up* so a timer due
/// in 300 µs does not spin at timeout 0. `None` (block forever) maps to
/// -1 as `poll(2)` specifies.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

#[cfg(unix)]
mod unix_impl {
    use super::{io, Duration, Readiness};
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    /// A raw OS file descriptor.
    pub type Fd = std::os::unix::io::RawFd;

    /// The descriptor behind any socket-like std type.
    pub fn fd_of<T: AsRawFd>(x: &T) -> Fd {
        x.as_raw_fd()
    }

    // The one unsafe item in the crate: the FFI declaration of
    // poll(2). std offers no public readiness API, and the workspace
    // vendors no libc crate, so the prototype is written out by hand.
    // It is the canonical POSIX signature; the flag constants below
    // have the same values on every supported Unix.
    #[allow(unsafe_code)]
    mod sys {
        #[repr(C)]
        pub struct PollFd {
            pub fd: super::Fd,
            pub events: i16,
            pub revents: i16,
        }

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;

        extern "C" {
            fn poll(
                fds: *mut PollFd,
                nfds: std::ffi::c_ulong,
                timeout: std::ffi::c_int,
            ) -> std::ffi::c_int;
        }

        /// Safe wrapper: the slice is exclusively borrowed for the
        /// call, its length is passed alongside, and poll writes only
        /// `revents` within it.
        pub fn poll_fds(fds: &mut [PollFd], timeout: std::ffi::c_int) -> std::ffi::c_int {
            #[allow(unsafe_code)]
            unsafe {
                poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout)
            }
        }
    }

    /// A persistent `poll(2)` interest set (see the module docs):
    /// register once, patch interests in place, tombstone on teardown.
    #[derive(Debug, Default)]
    pub struct Poller {
        fds: Vec<sys::PollFd>,
        /// Tombstoned slots (fd = -1) available for reuse.
        free: Vec<usize>,
    }

    impl std::fmt::Debug for sys::PollFd {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PollFd").field("fd", &self.fd).finish()
        }
    }

    fn events_of(read: bool, write: bool) -> i16 {
        let mut events = 0i16;
        if read {
            events |= sys::POLLIN;
        }
        if write {
            events |= sys::POLLOUT;
        }
        events
    }

    impl Poller {
        /// An empty interest set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Registers `fd` with the given interests; returns a stable
        /// token for [`Poller::readiness`], [`Poller::set_interest`]
        /// and [`Poller::deregister`]. Tombstoned slots are recycled
        /// before the vec grows.
        pub fn register(&mut self, fd: Fd, read: bool, write: bool) -> usize {
            let entry = sys::PollFd {
                fd,
                events: events_of(read, write),
                revents: 0,
            };
            match self.free.pop() {
                Some(tok) => {
                    self.fds[tok] = entry;
                    tok
                }
                None => {
                    self.fds.push(entry);
                    self.fds.len() - 1
                }
            }
        }

        /// Patches the interest bits of a registered slot in place.
        pub fn set_interest(&mut self, tok: usize, read: bool, write: bool) {
            self.fds[tok].events = events_of(read, write);
        }

        /// Tombstones a slot: `poll(2)` ignores negative fds, so the
        /// slot goes quiet immediately and is recycled by the next
        /// [`Poller::register`].
        pub fn deregister(&mut self, tok: usize) {
            self.fds[tok].fd = -1;
            self.fds[tok].events = 0;
            self.fds[tok].revents = 0;
            self.free.push(tok);
        }

        /// Blocks until a registered descriptor is ready or `timeout`
        /// elapses (`None` = forever). A signal interruption reports
        /// as zero descriptors ready, never as an error.
        ///
        /// # Errors
        ///
        /// The underlying syscall's failure, `EINTR` excepted.
        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            let rc = sys::poll_fds(&mut self.fds, super::timeout_ms(timeout));
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    for f in &mut self.fds {
                        f.revents = 0;
                    }
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        /// The readiness the last [`Poller::wait`] observed for the
        /// slot behind `tok`. A tombstoned slot reports nothing ready.
        pub fn readiness(&self, tok: usize) -> Readiness {
            let r = self.fds[tok].revents;
            Readiness {
                readable: r & sys::POLLIN != 0,
                writable: r & sys::POLLOUT != 0,
                hangup: r & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            }
        }
    }

    /// A self-pipe waker: other threads call [`Waker::wake`] to
    /// interrupt a reactor parked in [`Poller::wait`].
    #[derive(Debug)]
    pub struct Waker {
        rx: UnixStream,
        tx: UnixStream,
    }

    impl Waker {
        /// A fresh waker pair.
        ///
        /// # Errors
        ///
        /// Socketpair creation failure.
        pub fn new() -> io::Result<Self> {
            let (tx, rx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            Ok(Self { rx, tx })
        }

        /// The descriptor the reactor registers for read interest.
        pub fn read_fd(&self) -> Fd {
            self.rx.as_raw_fd()
        }

        /// Interrupts the reactor. A full pipe means a wakeup is
        /// already pending, which is all a wake needs to guarantee.
        pub fn wake(&self) {
            let _ = (&self.tx).write(&[1u8]);
        }

        /// Drains pending wake tokens (reactor side).
        pub fn drain(&self) {
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
mod fallback_impl {
    use super::{io, Duration, Readiness};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Descriptors are opaque on the fallback; registration only
    /// counts slots.
    pub type Fd = i32;

    /// No real descriptors on the fallback; every registration is the
    /// same opaque slot.
    pub fn fd_of<T>(_x: &T) -> Fd {
        -1
    }

    /// Sleep-scan poller: every *live* registered slot reports ready
    /// and nonblocking I/O sorts out which actually are (see module
    /// docs).
    #[derive(Debug, Default)]
    pub struct Poller {
        /// Slot liveness; tombstoned slots report nothing ready.
        live: Vec<bool>,
        free: Vec<usize>,
    }

    impl Poller {
        /// An empty interest set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Registers a slot; interests are ignored. Tombstoned slots
        /// are recycled before the vec grows.
        pub fn register(&mut self, _fd: Fd, _read: bool, _write: bool) -> usize {
            match self.free.pop() {
                Some(tok) => {
                    self.live[tok] = true;
                    tok
                }
                None => {
                    self.live.push(true);
                    self.live.len() - 1
                }
            }
        }

        /// Interests are ignored on the fallback.
        pub fn set_interest(&mut self, _tok: usize, _read: bool, _write: bool) {}

        /// Tombstones a slot; it reports nothing ready until reused.
        pub fn deregister(&mut self, tok: usize) {
            self.live[tok] = false;
            self.free.push(tok);
        }

        /// Sleeps out (a bounded slice of) the timeout.
        ///
        /// # Errors
        ///
        /// None on this implementation.
        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            let cap = Duration::from_millis(5);
            std::thread::sleep(timeout.map_or(cap, |t| t.min(cap)));
            Ok(())
        }

        /// Every live slot is (optimistically) ready.
        pub fn readiness(&self, tok: usize) -> Readiness {
            let live = self.live.get(tok).copied().unwrap_or(false);
            Readiness {
                readable: live,
                writable: live,
                hangup: false,
            }
        }
    }

    /// Flag waker: the bounded poll timeout guarantees the reactor
    /// observes it within one slice.
    #[derive(Debug, Default)]
    pub struct Waker {
        flagged: AtomicBool,
    }

    impl Waker {
        /// A fresh waker.
        ///
        /// # Errors
        ///
        /// None on this implementation.
        pub fn new() -> io::Result<Self> {
            Ok(Self::default())
        }

        /// A placeholder descriptor; never registered meaningfully.
        pub fn read_fd(&self) -> Fd {
            -1
        }

        /// Flags a pending wakeup.
        pub fn wake(&self) {
            self.flagged.store(true, Ordering::SeqCst);
        }

        /// Clears the flag.
        pub fn drain(&self) {
            self.flagged.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_interrupts_wait() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new();
        let w2 = std::sync::Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
        });
        let tok = poller.register(waker.read_fd(), true, false);
        let start = Instant::now();
        poller.wait(Some(Duration::from_secs(10))).unwrap();
        // Unix: the wake lands well before the 10 s timeout. Fallback:
        // the bounded slice returns immediately anyway.
        assert!(start.elapsed() < Duration::from_secs(5));
        let _ = poller.readiness(tok);
        waker.drain();
        h.join().unwrap();
    }

    #[test]
    fn poll_sees_readable_tcp_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.write_all(b"ping").unwrap();

        #[cfg(unix)]
        let fd = fd_of(&rx);
        #[cfg(not(unix))]
        let fd = 0;

        let mut poller = Poller::new();
        let tok = poller.register(fd, true, false);
        poller.wait(Some(Duration::from_secs(5))).unwrap();
        assert!(poller.readiness(tok).readable);
    }

    #[test]
    fn deregistered_slots_go_quiet_and_are_recycled() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.write_all(b"ping").unwrap();

        #[cfg(unix)]
        let fd = fd_of(&rx);
        #[cfg(not(unix))]
        let fd = 0;

        let mut poller = Poller::new();
        let tok = poller.register(fd, true, false);
        poller.wait(Some(Duration::from_millis(50))).unwrap();
        assert!(poller.readiness(tok).readable);

        // Tombstoned: the readable socket no longer reports.
        poller.deregister(tok);
        poller.wait(Some(Duration::from_millis(10))).unwrap();
        assert!(!poller.readiness(tok).readable);

        // The tombstone is recycled, not leaked: re-registering hands
        // back the same slot, live again.
        let tok2 = poller.register(fd, true, false);
        assert_eq!(tok2, tok, "free list reuses tombstoned slots");
        poller.wait(Some(Duration::from_millis(50))).unwrap();
        assert!(poller.readiness(tok2).readable);
    }

    #[test]
    fn set_interest_patches_in_place() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        drop(tx); // No bytes in flight: only write interest can fire.

        #[cfg(unix)]
        let fd = fd_of(&rx);
        #[cfg(not(unix))]
        let fd = 0;

        let mut poller = Poller::new();
        let tok = poller.register(fd, false, false);
        poller.set_interest(tok, false, true);
        poller.wait(Some(Duration::from_millis(100))).unwrap();
        assert!(poller.readiness(tok).writable || poller.readiness(tok).hangup);
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        #[cfg(unix)]
        {
            assert_eq!(super::timeout_ms(None), -1);
            assert_eq!(super::timeout_ms(Some(Duration::from_micros(300))), 1);
            assert_eq!(super::timeout_ms(Some(Duration::from_millis(7))), 7);
        }
    }
}
