//! `script-net` — a socket-backed [`Transport`](script_chan::Transport)
//! so one performance can span OS processes.
//!
//! # Architecture: hub and spokes
//!
//! One process hosts the **hub**: a [`TransportServer`] wrapping an
//! ordinary in-process transport (a seeded
//! [`ShardedTransport`](script_chan::ShardedTransport)). Every other
//! process holds a [`SocketTransport`] **spoke** that forwards each
//! [`Transport`](script_chan::Transport) operation to the hub as a
//! framed RPC. All rendezvous, selection, termination, and
//! fault-injection *semantics* therefore live in exactly one place —
//! the hub's inner transport — which is what makes a chaos seed replay
//! identically whether the participants share an address space or not:
//! the [`FaultPlan`](script_chan::FaultPlan) decisions are pure
//! functions of `(seed, edge, sequence)` evaluated at the hub's sending
//! edge, and the schedule of operations is all that reaches it.
//!
//! # Wire format
//!
//! Frames are a 4-byte big-endian length prefix plus payload, capped at
//! [`MAX_FRAME`]. Payloads are encoded by the [`Wire`] codec — a small
//! hand-rolled, total decoder: malformed input yields
//! [`WireError`], never a panic, and length fields are validated before
//! any allocation proportional to them. Requests carry an id
//! (`(req_id, Req)`); responses echo it (`(req_id, Resp)`); id 0
//! ([`EVENT_REQ_ID`]) marks unsolicited telemetry
//! frames pushed to subscribed clients, each carrying a tagged
//! [`Event`](proto::Event) envelope whose unknown tags are skipped (so
//! newer hubs can stream richer events to older clients). Deadlines
//! cross the wire as *remaining milliseconds*, so processes need no
//! shared clock.
//!
//! # Peer loss
//!
//! The ids a connection activates are bound to it. When the connection
//! drops — crash, kill, network partition — the hub finishes those ids,
//! and every other participant observes the exact error a crashed
//! in-process peer produces: pending messages drain first, then
//! [`ChanError::Terminated`](script_chan::ChanError::Terminated).
//! Spokes dial lazily and redial under a
//! [`RetryPolicy`](script_core::RetryPolicy); a spoke whose retry
//! budget is exhausted degrades the same way (sends report the target
//! terminated, `activity()` freezes so watchdogs fire).
//!
//! # Federation: control plane and data plane
//!
//! A single hub caps total throughput, so the transport also federates
//! into two planes. The **control plane** is a [`HubFleet`] of matcher
//! hubs sharded by role-family hash: spokes dial any shard and are
//! redirected to the owning one, which registers data nodes, places
//! each performance on a *home node*, and mints a signed
//! [`PerfDescriptor`] (performance id, epoch, chaos seed, home-node
//! address, per-role peer table). The **data plane** is the ordinary
//! hub/spoke machinery above, hosted on the home node: participants
//! dial the descriptor's address directly — peer-to-peer with respect
//! to the matcher — under a [`client::DialPlan`] that falls back to a
//! byte-splicing relay through a fleet shard ([`fleet::relay_connect`])
//! when the direct dial fails. Because each performance's semantics
//! still live in exactly one inner transport, every conformance
//! invariant and chaos-replay guarantee carries over unchanged.

// `deny`, not `forbid`: the reactor's `sys` module carries the one
// scoped `#[allow(unsafe_code)]` in the crate — the hand-written FFI
// prototype of poll(2).
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod descriptor;
pub mod fleet;
pub mod frame;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{DialPlan, SocketTransport};
pub use descriptor::PerfDescriptor;
pub use fleet::{FleetClient, HubFleet};
pub use frame::{read_frame, write_frame, FrameDecoder, WriteBuf};
pub use proto::EVENT_REQ_ID;
pub use server::TransportServer;
pub use wire::{Reader, Wire, WireError, MAX_FRAME};
