//! The socket-backed [`Transport`]: a framed RPC client.
//!
//! A [`SocketTransport`] implements the full [`Transport`] contract by
//! forwarding every operation to a [`TransportServer`](crate::TransportServer)
//! hub over one multiplexed TCP connection. Connection establishment is
//! **lazy** — the first operation dials, with reconnect attempts paced
//! by a [`RetryPolicy`] (exponential backoff + decorrelated jitter), so
//! a client may be constructed before its hub is listening.
//!
//! Blocking semantics cross the wire unchanged: a `send` or `select`
//! RPC simply does not answer until the rendezvous fires server-side,
//! and deadlines travel as remaining-millisecond budgets so the two
//! processes need no shared clock.
//!
//! **Peer loss** is surfaced as the contract requires — with the same
//! errors a crashed peer produces. If the hub becomes unreachable and
//! redialing exhausts the retry budget, a send reports
//! [`ChanError::Terminated`] for its target, a selection reports
//! `Terminated`/`AllTerminated` for its arms, lifecycle queries degrade
//! to "gone" answers (`is_aborted` → true, `peers` → empty), and
//! [`Transport::activity`] freezes at its last observed value so an
//! engine watchdog sampling it sees a wedged performance and raises
//! `Stalled`. Conversely the ids this client *activated* are bound to
//! its connection hub-side, so this process dying surfaces as
//! `Terminated` to everyone else.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use script_chan::{
    Arm, ChanError, FaultObserver, FaultPlan, FaultRecord, LatencyHooks, LatencyObserver,
    LatencyOp, LatencySample, Outcome, PeerState, Transport,
};
use script_core::RetryPolicy;

use crate::frame::{read_frame, write_frame};
use crate::proto::{timeout_ms_of, Event, Req, Resp, EVENT_REQ_ID};
use crate::wire::{Reader, Wire};

/// Response slot for one in-flight request.
struct Slot<I, M> {
    state: Mutex<SlotState<I, M>>,
    cond: Condvar,
}

enum SlotState<I, M> {
    Waiting,
    Filled(Resp<I, M>),
    /// The connection died before the response arrived.
    Lost,
}

impl<I, M> Slot<I, M> {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Waiting),
            cond: Condvar::new(),
        }
    }

    fn fill(&self, value: SlotState<I, M>) {
        let mut st = self.state.lock();
        if matches!(*st, SlotState::Waiting) {
            *st = value;
            self.cond.notify_all();
        }
    }

    /// Blocks until filled; `None` means the connection was lost.
    fn wait(&self) -> Option<Resp<I, M>> {
        let mut st = self.state.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Waiting) {
                SlotState::Waiting => self.cond.wait(&mut st),
                SlotState::Filled(resp) => return Some(resp),
                SlotState::Lost => return None,
            }
        }
    }
}

/// One live connection: writer half plus the in-flight request table.
struct ConnShared<I, M> {
    writer: Mutex<TcpStream>,
    /// Kept to sever the socket on close/drop.
    stream: TcpStream,
    pending: Mutex<HashMap<u64, Arc<Slot<I, M>>>>,
    alive: AtomicBool,
}

impl<I, M> ConnShared<I, M> {
    /// Marks the connection dead and fails every in-flight request.
    fn fail(&self) {
        self.alive.store(false, Ordering::SeqCst);
        let drained: Vec<Arc<Slot<I, M>>> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in drained {
            slot.fill(SlotState::Lost);
        }
    }
}

/// A [`Transport`] speaking framed RPC to a remote hub (see the module
/// docs).
pub struct SocketTransport<I, M> {
    addr: SocketAddr,
    retry: RetryPolicy,
    state: Mutex<Option<Arc<ConnShared<I, M>>>>,
    /// Set when (re)dialing has definitively failed; cleared by a
    /// successful reconnect.
    lost: AtomicBool,
    /// Last activity counter observed from the hub: frozen on loss so
    /// watchdogs detect the wedge.
    last_activity: AtomicU64,
    /// Request ids start at 1; 0 is the event-frame marker.
    next_req: AtomicU64,
    observer: Arc<Mutex<Option<FaultObserver<I>>>>,
    /// Ids to re-bind when a fresh connection is established.
    bound: Mutex<Vec<I>>,
    subscribed: AtomicBool,
    /// Client-side latency measurement: the RPC round trip *includes*
    /// the hub-side rendezvous wait, so hub time is attributed to the
    /// performance whose operation paid for it — no wire changes.
    latency: LatencyHooks,
}

impl<I, M> fmt::Debug for SocketTransport<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketTransport")
            .field("addr", &self.addr)
            .field("lost", &self.lost.load(Ordering::Relaxed))
            .finish()
    }
}

impl<I, M> SocketTransport<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Send + Sync + 'static,
{
    /// A client for the hub at `addr`. No I/O happens here: the first
    /// operation dials, retrying under `retry`.
    pub fn new(addr: SocketAddr, retry: RetryPolicy) -> Self {
        Self {
            addr,
            retry,
            state: Mutex::new(None),
            lost: AtomicBool::new(false),
            last_activity: AtomicU64::new(0),
            next_req: AtomicU64::new(EVENT_REQ_ID + 1),
            observer: Arc::new(Mutex::new(None)),
            bound: Mutex::new(Vec::new()),
            subscribed: AtomicBool::new(false),
            latency: LatencyHooks::default(),
        }
    }

    /// [`SocketTransport::new`] with address resolution and a default
    /// retry policy (6 attempts, 25 ms base, 500 ms cap).
    ///
    /// # Errors
    ///
    /// Address resolution errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(Self::new(
            addr,
            RetryPolicy::new(6)
                .with_base(Duration::from_millis(25))
                .with_cap(Duration::from_millis(500)),
        ))
    }

    /// The hub address this client dials.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the hub is currently unreachable (the last dial attempt
    /// exhausted its retry budget, or the connection dropped mid-call).
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::SeqCst)
    }

    /// Severs the connection without telling the hub — exactly what a
    /// process crash looks like from the other side. The hub finishes
    /// every id this client activated; other participants observe
    /// [`ChanError::Terminated`] for them.
    pub fn close(&self) {
        self.lost.store(true, Ordering::SeqCst);
        if let Some(conn) = self.state.lock().take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.fail();
        }
    }

    /// Returns the live connection, (re)dialing if necessary.
    fn conn(&self) -> Option<Arc<ConnShared<I, M>>> {
        let mut guard = self.state.lock();
        if let Some(c) = guard.as_ref() {
            if c.alive.load(Ordering::SeqCst) {
                return Some(Arc::clone(c));
            }
        }
        match self.dial() {
            Some(conn) => {
                self.lost.store(false, Ordering::SeqCst);
                *guard = Some(Arc::clone(&conn));
                Some(conn)
            }
            None => {
                self.lost.store(true, Ordering::SeqCst);
                *guard = None;
                None
            }
        }
    }

    /// Dials the hub under the retry policy and replays the
    /// connection-scoped handshake (binds + subscription).
    fn dial(&self) -> Option<Arc<ConnShared<I, M>>> {
        let stream = self
            .retry
            .run_if(|_: &io::Error| true, |_| TcpStream::connect(self.addr))
            .ok()?;
        let _ = stream.set_nodelay(true);
        let (reader, writer) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(w)) => (r, w),
            _ => return None,
        };
        let conn = Arc::new(ConnShared {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        Self::spawn_reader(Arc::clone(&conn), reader, Arc::clone(&self.observer));
        // Replay connection-scoped state. A hub that saw the previous
        // connection die has already finished these ids — re-binding is
        // bookkeeping for *this* connection's eventual death, not a
        // resurrection.
        let binds: Vec<I> = self.bound.lock().clone();
        for id in binds {
            let _ = self.rpc_on(&conn, &Req::Bind(id));
        }
        if self.subscribed.load(Ordering::SeqCst) {
            let _ = self.rpc_on(&conn, &Req::Subscribe);
        }
        Some(conn)
    }

    fn spawn_reader(
        conn: Arc<ConnShared<I, M>>,
        mut stream: TcpStream,
        observer: Arc<Mutex<Option<FaultObserver<I>>>>,
    ) {
        thread::spawn(move || {
            while let Ok(Some(frame)) = read_frame(&mut stream) {
                let mut r = Reader::new(&frame);
                let Ok(req_id) = u64::decode(&mut r) else {
                    break;
                };
                if req_id == EVENT_REQ_ID {
                    // Unsolicited push: a tagged telemetry event. Frames
                    // with a tag this build does not understand are
                    // skipped so newer hubs can stream richer events to
                    // older clients.
                    if let Ok(Event::Fault(rec)) = Event::<I>::decode(&mut r) {
                        let obs = observer.lock().clone();
                        if let Some(obs) = obs {
                            obs(&rec);
                        }
                    }
                    continue;
                }
                let Ok(resp) = Resp::<I, M>::decode(&mut r) else {
                    break;
                };
                let slot = conn.pending.lock().remove(&req_id);
                if let Some(slot) = slot {
                    slot.fill(SlotState::Filled(resp));
                }
            }
            conn.fail();
        });
    }

    /// One RPC on a specific connection (used during the handshake,
    /// where re-entering [`SocketTransport::conn`] would deadlock).
    fn rpc_on(&self, conn: &Arc<ConnShared<I, M>>, req: &Req<I, M>) -> Option<Resp<I, M>> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new());
        conn.pending.lock().insert(req_id, Arc::clone(&slot));
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        req.encode(&mut payload);
        let write_ok = write_frame(&mut *conn.writer.lock(), &payload).is_ok();
        if !write_ok {
            conn.pending.lock().remove(&req_id);
            conn.fail();
            return None;
        }
        slot.wait()
    }

    /// One RPC with reconnect: a failed *write* retries on a fresh
    /// connection (the hub never saw the request), but once the request
    /// is on the wire a lost connection surfaces as loss — the
    /// operation is not idempotent.
    fn call(&self, req: &Req<I, M>) -> Option<Resp<I, M>> {
        for _ in 0..2 {
            let conn = self.conn()?;
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(Slot::new());
            conn.pending.lock().insert(req_id, Arc::clone(&slot));
            let mut payload = Vec::new();
            req_id.encode(&mut payload);
            req.encode(&mut payload);
            let write_ok = write_frame(&mut *conn.writer.lock(), &payload).is_ok();
            if !write_ok {
                conn.pending.lock().remove(&req_id);
                conn.fail();
                continue;
            }
            match slot.wait() {
                Some(resp) => return Some(resp),
                None => break,
            }
        }
        self.lost.store(true, Ordering::SeqCst);
        None
    }
}

/// The peer a single-arm selection's loss should be pinned on,
/// mirroring the in-process all-arms-dead rule.
fn single_named_peer<I: Clone, M>(arms: &[Arm<I, M>]) -> Option<I> {
    match arms {
        [Arm::Recv(script_chan::Source::Of(p))] | [Arm::Send { to: p, .. }] => Some(p.clone()),
        _ => None,
    }
}

impl<I, M> Transport<I, M> for SocketTransport<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Send + Sync + 'static,
{
    fn declare(&self, id: I) {
        let _ = self.call(&Req::Declare(id));
    }

    fn activate(&self, id: I) {
        {
            let mut b = self.bound.lock();
            if !b.contains(&id) {
                b.push(id.clone());
            }
        }
        let _ = self.call(&Req::Activate(id));
    }

    fn finish(&self, id: I) {
        self.bound.lock().retain(|b| b != &id);
        let _ = self.call(&Req::Finish(id));
    }

    fn seal(&self) {
        let _ = self.call(&Req::Seal);
    }

    fn abort(&self) {
        let _ = self.call(&Req::Abort);
    }

    fn is_aborted(&self) -> bool {
        match self.call(&Req::IsAborted) {
            Some(Resp::Bool(b)) => b,
            // An unreachable hub cannot host any further operation.
            _ => true,
        }
    }

    fn peer_state(&self, id: &I) -> Option<PeerState> {
        match self.call(&Req::PeerStateOf(id.clone())) {
            Some(Resp::State(s)) => s,
            _ => None,
        }
    }

    fn peers(&self) -> Vec<(I, PeerState)> {
        match self.call(&Req::Peers) {
            Some(Resp::PeerList(ps)) => ps,
            _ => Vec::new(),
        }
    }

    fn activity(&self) -> u64 {
        match self.call(&Req::Activity) {
            Some(Resp::Counter(c)) => {
                self.last_activity.store(c, Ordering::Relaxed);
                c
            }
            // Frozen on loss: a sampling watchdog sees no progress.
            _ => self.last_activity.load(Ordering::Relaxed),
        }
    }

    fn reseed(&self, seed: u64) {
        let _ = self.call(&Req::Reseed(seed));
    }

    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>> {
        match self.call(&Req::EnsurePeer(id.clone())) {
            Some(Resp::Unit) => Ok(()),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(ChanError::Terminated(id.clone())),
        }
    }

    fn has_pending_from(&self, to: &I, from: &I) -> bool {
        match self.call(&Req::HasPendingFrom {
            to: to.clone(),
            from: from.clone(),
        }) {
            Some(Resp::Bool(b)) => b,
            _ => false,
        }
    }

    fn set_fault_plan(&self, plan: FaultPlan, _clone_fn: fn(&M) -> M) {
        // Duplicates are materialized hub-side with the hub's clone.
        let _ = self.call(&Req::SetFaultPlan(plan));
    }

    fn clear_fault_plan(&self) {
        let _ = self.call(&Req::ClearFaultPlan);
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        match self.call(&Req::GetFaultPlan) {
            Some(Resp::Plan(p)) => p,
            _ => None,
        }
    }

    fn set_fault_observer(&self, observer: FaultObserver<I>) {
        *self.observer.lock() = Some(observer);
        self.subscribed.store(true, Ordering::SeqCst);
        let _ = self.call(&Req::Subscribe);
    }

    fn fault_log(&self) -> Vec<FaultRecord<I>> {
        match self.call(&Req::FaultLog) {
            Some(Resp::Log(l)) => l,
            _ => Vec::new(),
        }
    }

    fn take_fault_log(&self) -> Vec<FaultRecord<I>> {
        match self.call(&Req::TakeFaultLog) {
            Some(Resp::Log(l)) => l,
            _ => Vec::new(),
        }
    }

    fn set_latency_observer(&self, observer: LatencyObserver) {
        self.latency.set_observer(observer);
    }

    fn latency_samples(&self) -> Vec<LatencySample> {
        self.latency.samples()
    }

    fn take_latency_samples(&self) -> Vec<LatencySample> {
        self.latency.take_samples()
    }

    fn send(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        let req = Req::Send {
            from: from.clone(),
            to: to.clone(),
            msg,
            timeout_ms: timeout_ms_of(deadline),
        };
        let start = Instant::now();
        let result = match self.call(&req) {
            Some(Resp::Unit) => Ok(()),
            Some(Resp::ChanErr(e)) => Err(e),
            // Hub loss = the receiving side is gone, the same error a
            // crashed peer produces.
            _ => Err(ChanError::Terminated(to.clone())),
        };
        if result.is_ok() {
            self.latency.record(LatencyOp::Send, start.elapsed());
        }
        result
    }

    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        let start = Instant::now();
        let result = match self.call(&Req::TryRecv {
            me: me.clone(),
            from: from.clone(),
        }) {
            Some(Resp::Msg(m)) => Ok(m),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(ChanError::Terminated(from.clone())),
        };
        if matches!(result, Ok(Some(_))) {
            self.latency.record(LatencyOp::TryRecv, start.elapsed());
        }
        result
    }

    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        if arms.is_empty() {
            return Err(ChanError::EmptySelect);
        }
        let loss = match single_named_peer(&arms) {
            Some(p) => ChanError::Terminated(p),
            None => ChanError::AllTerminated,
        };
        let req = Req::Select {
            me: me.clone(),
            arms,
            timeout_ms: timeout_ms_of(deadline),
        };
        let start = Instant::now();
        let result = match self.call(&req) {
            Some(Resp::Selected(outcome)) => Ok(outcome),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(loss),
        };
        if matches!(
            result,
            Ok(Outcome::Received { .. }) | Ok(Outcome::Sent { .. })
        ) {
            self.latency.record(LatencyOp::Select, start.elapsed());
        }
        result
    }
}

impl<I, M> Drop for SocketTransport<I, M> {
    fn drop(&mut self) {
        if let Some(conn) = self.state.lock().take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.fail();
        }
    }
}
