//! The socket-backed [`Transport`]: a pipelined framed-RPC client with
//! sessions.
//!
//! A [`SocketTransport`] implements the full [`Transport`] contract by
//! forwarding every operation to a [`TransportServer`](crate::TransportServer)
//! hub over one multiplexed TCP connection. Connection establishment is
//! **lazy** — the first operation dials, with reconnect attempts paced
//! by a [`RetryPolicy`] (exponential backoff + decorrelated jitter), so
//! a client may be constructed before its hub is listening.
//!
//! **Pipelining.** Every request carries a correlation id and parks in
//! a `pending` map; any number of requests ride the connection
//! concurrently and the hub answers them in whatever order its
//! rendezvous fire. The write path coalesces: producers append frames
//! to one shared [`WriteBuf`] and whoever flushes writes *everything*
//! queued since the last flush as a single syscall, so N threads
//! pipelining N requests cost far fewer writes than N.
//!
//! **One background thread.** A single *driver* thread per transport
//! owns the read side: it decodes answer frames through a
//! [`FrameDecoder`] (partial frames survive across read timeouts),
//! emits the quarter-lease heartbeat whenever its read timeout lapses,
//! and — when the connection dies — redials, resumes, and replays
//! itself, so parked callers never have to. The keeper thread of the
//! previous design is gone; its duties folded into the reader loop.
//!
//! Blocking semantics cross the wire unchanged: a `send` or `select`
//! RPC simply does not answer until the rendezvous fires server-side,
//! and deadlines travel as remaining-millisecond budgets so the two
//! processes need no shared clock.
//!
//! **Sessions.** The first dial opens a hub session ([`Req::HelloNew`])
//! and records its id + lease. From then on a dropped connection is a
//! *blip*, not a death: every durable request stays queued, the driver
//! redials, presents [`Req::HelloResume`], and replays the queue in
//! request-id order. The hub answers anything it already applied from
//! its replay cache, so a write whose ack was lost to the sever is
//! **never applied twice** — the retry path and the reconnect path are
//! one mechanism. A subscribed client resumes the sequenced event
//! stream gaplessly from the last delivered sequence number
//! ([`Req::SubscribeFrom`]); the missed tail arrives as one batched
//! [`Event::SeqStream`] frame (the superseded [`Event::SeqFaults`]
//! batch form is still *decoded* for compatibility with older hubs,
//! but no longer emitted), with exactly-once dispatch enforced
//! client-side by a monotonic high-water mark. Heartbeats flow both
//! ways: the driver pings ([`Req::Heartbeat`]) every quarter-lease —
//! which also prunes the hub's replay cache — and every hub answer
//! carrying [`Resp::Session`] renews the client's view of the lease.
//!
//! During a blip, *fast* queries (lifecycle reads the engine's watchdog
//! polls) do not queue: they answer degraded-but-live values, and
//! [`Transport::activity`] returns a synthetic strictly-changing
//! counter so a watchdog sampling it sees progress, not a stall.
//!
//! **Peer loss** is still surfaced exactly as the contract requires —
//! but only when the session truly dies: the hub declares it expired
//! ([`Resp::SessionExpired`]), announces its own shutdown
//! ([`Event::Closing`] — the spoke fails fast instead of burning its
//! redial budget against a dead address), the redial budget is
//! exhausted, or the client is closed. Then a send reports
//! [`ChanError::Terminated`] for its target, a selection reports
//! `Terminated`/`AllTerminated` for its arms, lifecycle queries degrade
//! to "gone" answers (`is_aborted` → true, `peers` → empty), and
//! `activity` freezes at its last observed value so an engine watchdog
//! raises `Stalled`. Conversely the ids this client *activated* live in
//! its hub-side session, so this process dying surfaces as `Terminated`
//! to everyone else once the lease lapses.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use script_chan::{
    Arm, ChanError, FaultObserver, FaultPlan, FaultRecord, LabelFn, LatencyHooks, LatencyObserver,
    LatencyOp, LatencySample, Outcome, PeerState, RendezvousObserver, RendezvousRecord,
    SessionEvent, SessionObserver, Transport,
};
use script_core::RetryPolicy;

use crate::frame::{read_frame, FrameDecoder, ReadStatus, WriteBuf};
use crate::proto::{timeout_ms_of, Event, Req, Resp, StreamItem, EVENT_REQ_ID};
use crate::wire::{Reader, Wire};

/// How a spoke reaches its hub: a direct address plus an optional
/// relay fallback through a control-fleet shard.
///
/// Federation hands each participant a
/// [`PerfDescriptor`](crate::PerfDescriptor) naming the performance's
/// home node; the spoke dials that address **directly** and, when the
/// direct dial fails (NAT, firewall, injected fault), falls back to a
/// byte-splicing relay through the fleet ([`crate::fleet::relay_connect`]).
/// The plan applies to *every* dial, including session-resume redials,
/// so a spoke can heal onto the relay path mid-performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DialPlan {
    /// The hub (home node) to reach.
    pub direct: SocketAddr,
    /// A fleet shard to relay through when the direct dial fails.
    pub relay_via: Option<SocketAddr>,
    /// Skip the direct dial entirely and go straight to the relay —
    /// the NAT-less test environment's stand-in for an unreachable
    /// peer (fault injection).
    pub force_relay: bool,
}

impl DialPlan {
    /// A plan that only dials `direct` (the classic hub/spoke path).
    pub fn direct(direct: SocketAddr) -> Self {
        Self {
            direct,
            relay_via: None,
            force_relay: false,
        }
    }

    /// Adds a relay fallback through the fleet shard at `via`.
    #[must_use]
    pub fn with_relay(mut self, via: SocketAddr) -> Self {
        self.relay_via = Some(via);
        self
    }

    /// Forces every dial through the relay (fault injection).
    #[must_use]
    pub fn with_forced_relay(mut self) -> Self {
        self.force_relay = true;
        self
    }
}

/// Response slot for one in-flight request.
struct Slot<I, M> {
    state: Mutex<SlotState<I, M>>,
    cond: Condvar,
}

enum SlotState<I, M> {
    Waiting,
    Filled(Resp<I, M>),
    /// The request will never be answered (session death, or a fast
    /// query's connection dropped).
    Lost,
}

impl<I, M> Slot<I, M> {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Waiting),
            cond: Condvar::new(),
        }
    }

    fn fill(&self, value: SlotState<I, M>) {
        let mut st = self.state.lock();
        if matches!(*st, SlotState::Waiting) {
            *st = value;
            self.cond.notify_all();
        }
    }

    /// Blocks until filled; `None` means the request is lost.
    fn wait(&self) -> Option<Resp<I, M>> {
        let mut st = self.state.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Waiting) {
                SlotState::Waiting => self.cond.wait(&mut st),
                SlotState::Filled(resp) => return Some(resp),
                SlotState::Lost => return None,
            }
        }
    }
}

/// One queued request: the encoded frame is retained so a reconnect can
/// replay it verbatim (same request id → hub-side replay cache dedups).
struct PendingEntry<I, M> {
    payload: Vec<u8>,
    slot: Arc<Slot<I, M>>,
    /// Fast queries are failed on connection loss instead of queued for
    /// replay — their callers want a degraded answer *now*.
    fast: bool,
}

/// The coalescing write side of one connection: producers append frames
/// under the buffer lock, and whoever wins the flush lock writes
/// *everything* accumulated — theirs and every other producer's — in
/// one syscall. Losers of the flush race find the buffer already empty
/// and return without writing at all.
struct ConnTx {
    /// Write handle (blocking mode); reads use a separate clone.
    stream: TcpStream,
    buf: Mutex<WriteBuf>,
    /// Serializes actual socket writes; deliberately distinct from
    /// `buf` so producers can keep queueing while a flush is on the
    /// wire.
    flush: Mutex<()>,
    /// The transport's outbound byte counter (frame bytes including
    /// the length prefix) — the data-plane evidence federation tests
    /// audit.
    bytes_out: Arc<AtomicU64>,
}

impl ConnTx {
    /// Queues one encoded `(req_id, req)` frame and flushes whatever
    /// the buffer holds. Returns `false` on write failure — the
    /// connection is done for.
    fn send_payload(&self, payload: &[u8]) -> bool {
        if self.buf.lock().push_frame(payload).is_err() {
            return false;
        }
        self.bytes_out
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        let _g = self.flush.lock();
        loop {
            let mut local = {
                let mut b = self.buf.lock();
                if b.is_empty() {
                    // A racing producer flushed our frame along with
                    // its own: one combined write covered both.
                    return true;
                }
                std::mem::take(&mut *b)
            };
            let mut w = &self.stream;
            loop {
                match local.flush_to(&mut w) {
                    Ok(true) => break,
                    // Blocking socket: a spurious WouldBlock just means
                    // go around again; bytes stay queued in `local`.
                    Ok(false) => {}
                    Err(_) => return false,
                }
            }
        }
    }
}

/// One live connection; all durable state lives in [`Shared`].
struct ConnShared {
    tx: ConnTx,
    /// Kept to sever the socket on close/drop (and to kick the driver
    /// out of its read when a writer discovers the death first).
    stream: TcpStream,
    alive: AtomicBool,
}

/// What a fast (non-queued) query observed.
enum FastReply<I, M> {
    Resp(Resp<I, M>),
    /// Connection down or mid-redial: answer degraded-but-live.
    Blip,
    /// The session is dead: answer with crashed-hub semantics.
    Dead,
}

/// State shared between the transport facade and its driver thread.
struct Shared<I, M> {
    plan: DialPlan,
    retry: RetryPolicy,
    /// Frame bytes written to the hub (including length prefixes).
    bytes_out: Arc<AtomicU64>,
    /// Frame bytes read from the hub (including length prefixes).
    bytes_in: AtomicU64,
    /// Connections that had to fall back to the relay path.
    relay_dials: AtomicU64,
    state: Mutex<Option<Arc<ConnShared>>>,
    /// Mirror of `dead` for the cheap public `is_lost` probe.
    lost: AtomicBool,
    /// Terminal: session expired, redial budget exhausted, or closed.
    dead: AtomicBool,
    /// Set by `close`/drop so the driver stops redialing.
    closed: AtomicBool,
    /// The hub announced shutdown ([`Event::Closing`]): terminal once
    /// the connection drains — no redial storm against a dead address.
    closing: AtomicBool,
    /// Last activity counter observed from the hub: frozen on death so
    /// watchdogs detect the wedge; advanced synthetically during blips
    /// so they do not.
    last_activity: AtomicU64,
    /// Synthetic activity ticks handed out while reconnecting.
    blip_ticks: AtomicU64,
    /// Last `is_aborted` answer, served during blips.
    cached_aborted: AtomicBool,
    /// Request ids start at 1; 0 is the event-frame marker.
    next_req: AtomicU64,
    /// Every un-acked request, keyed by id, replayed on reconnect.
    pending: Mutex<HashMap<u64, PendingEntry<I, M>>>,
    /// Hub-issued session id; 0 until the first handshake completes.
    session: AtomicU64,
    /// Hub-granted lease in milliseconds; paces the heartbeat.
    lease_ms: AtomicU64,
    /// High-water mark of delivered sequenced events: resume point for
    /// `SubscribeFrom` and exactly-once dispatch guard.
    last_event_seq: AtomicU64,
    observer: Mutex<Option<FaultObserver<I>>>,
    rendezvous_observer: Mutex<Option<RendezvousObserver<I>>>,
    session_observer: Mutex<Option<SessionObserver<I>>>,
    /// Ids to re-bind if the session (not just the connection) is new.
    bound: Mutex<Vec<I>>,
    /// Snapshot of `bound` taken when the connection died, so the
    /// matching `PeerResumed`/`LeaseExpired` events announce exactly
    /// the ids whose `PeerDisconnected` was announced — even if roles
    /// finish (or activate) while severed.
    severed: Mutex<Vec<I>>,
    subscribed: AtomicBool,
    driver_started: AtomicBool,
    /// A fresh handshake deposits the connection + its read stream
    /// here; the driver picks them up and serves the connection.
    reader_slot: Mutex<Option<(Arc<ConnShared>, TcpStream)>>,
}

/// How a handshake attempt ended.
enum Handshake {
    Ready(Arc<ConnShared>),
    /// The hub no longer knows our session: terminal.
    Expired,
    /// Resume refused while a partition embargo holds: stand off.
    Partitioned(Duration),
    /// I/O failure mid-handshake: retriable.
    Failed,
}

impl<I, M> Shared<I, M> {
    /// Terminal transition: marks the session dead and fails every
    /// queued request. Idempotent — close racing reconnect racing drop
    /// resolves to exactly one death.
    fn die(&self) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        self.lost.store(true, Ordering::SeqCst);
        let drained: Vec<PendingEntry<I, M>> =
            self.pending.lock().drain().map(|(_, e)| e).collect();
        for e in drained {
            e.slot.fill(SlotState::Lost);
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn dispatch_fault(&self, rec: &FaultRecord<I>) {
        let obs = self.observer.lock().clone();
        if let Some(obs) = obs {
            obs(rec);
        }
    }

    fn dispatch_rendezvous(&self, rec: &RendezvousRecord<I>) {
        let obs = self.rendezvous_observer.lock().clone();
        if let Some(obs) = obs {
            obs(rec);
        }
    }

    /// Snapshots the bound set as severed and emits
    /// [`SessionEvent::PeerDisconnected`] for every id in it.
    fn emit_severed(&self)
    where
        I: Clone,
    {
        let snapshot = self.bound.lock().clone();
        *self.severed.lock() = snapshot.clone();
        let obs = self.session_observer.lock().clone();
        let Some(obs) = obs else { return };
        for id in snapshot {
            obs(&SessionEvent::PeerDisconnected(id));
        }
    }

    /// Takes the severed snapshot and emits `make(id)` for every id in
    /// it — pairing each announced disconnect with exactly one resume
    /// or expiry, regardless of how `bound` changed in between.
    fn emit_healed(&self, make: fn(I) -> SessionEvent<I>)
    where
        I: Clone,
    {
        let snapshot = std::mem::take(&mut *self.severed.lock());
        let obs = self.session_observer.lock().clone();
        let Some(obs) = obs else { return };
        for id in snapshot {
            obs(&make(id));
        }
    }

    /// Terminal transition caused by lease expiry specifically: also
    /// surfaces [`SessionEvent::LeaseExpired`] for every severed id.
    fn die_expired(&self)
    where
        I: Clone,
    {
        self.die();
        self.emit_healed(SessionEvent::LeaseExpired);
    }
}

impl<I, M> Shared<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Send + Sync + 'static,
{
    /// Handles one unsolicited event frame. Sequenced events advance
    /// the high-water mark and dispatch **exactly once** even when a
    /// resume replay races a stale delivery.
    fn process_event(&self, ev: &Event<I>) {
        match ev {
            Event::Fault(rec) => self.dispatch_fault(rec),
            Event::SeqFault { seq, record } => {
                let prev = self.last_event_seq.fetch_max(*seq, Ordering::SeqCst);
                if *seq > prev {
                    self.dispatch_fault(record);
                }
            }
            Event::SeqFaults { first_seq, records } => {
                // A batched resume-replay tail: record `i` sits at
                // stream position `first_seq + i`. Each record passes
                // the same high-water dedup as a live push would.
                for (i, record) in records.iter().enumerate() {
                    let seq = first_seq + i as u64;
                    let prev = self.last_event_seq.fetch_max(seq, Ordering::SeqCst);
                    if seq > prev {
                        self.dispatch_fault(record);
                    }
                }
            }
            Event::SeqRendezvous { seq, record } => {
                let prev = self.last_event_seq.fetch_max(*seq, Ordering::SeqCst);
                if *seq > prev {
                    self.dispatch_rendezvous(record);
                }
            }
            Event::SeqStream { first_seq, items } => {
                // The mixed-kind resume-replay tail: item `i` sits at
                // stream position `first_seq + i`, same dedup as live.
                for (i, item) in items.iter().enumerate() {
                    let seq = first_seq + i as u64;
                    let prev = self.last_event_seq.fetch_max(seq, Ordering::SeqCst);
                    if seq > prev {
                        match item {
                            StreamItem::Fault(record) => self.dispatch_fault(record),
                            StreamItem::Rendezvous(record) => self.dispatch_rendezvous(record),
                        }
                    }
                }
            }
            Event::Closing => {
                // Fail fast: the hub is gone for good, so once the
                // connection drains the driver dies instead of
                // redialing.
                self.closing.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Allocates a request id and encodes one `(req_id, req)` frame.
    fn encode_req(&self, req: &Req<I, M>) -> (u64, Vec<u8>) {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        req.encode(&mut payload);
        (req_id, payload)
    }

    /// Writes one `(req_id, req)` frame directly to a handshake-time
    /// stream (no connection object exists yet).
    fn write_req(&self, w: &mut TcpStream, req: &Req<I, M>) -> Option<u64> {
        let (req_id, payload) = self.encode_req(req);
        crate::frame::write_frame(w, &payload).ok()?;
        self.bytes_out
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        Some(req_id)
    }

    /// Reads frames until the answer for `want` arrives (used during
    /// the handshake, before the driver owns the stream). Events and
    /// answers to replayed requests that completed hub-side during the
    /// outage are delivered along the way.
    fn await_resp(&self, rd: &mut TcpStream, want: u64) -> Option<Resp<I, M>> {
        loop {
            let frame = read_frame(rd).ok()??;
            self.bytes_in
                .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
            let mut r = Reader::new(&frame);
            let req_id = u64::decode(&mut r).ok()?;
            if req_id == EVENT_REQ_ID {
                if let Ok(ev) = Event::<I>::decode(&mut r) {
                    self.process_event(&ev);
                }
                continue;
            }
            let resp = Resp::<I, M>::decode(&mut r).ok()?;
            if let Resp::Session { lease_ms, .. } = &resp {
                if *lease_ms > 0 {
                    self.lease_ms.store(*lease_ms, Ordering::SeqCst);
                }
            }
            if req_id == want {
                return Some(resp);
            }
            let entry = self.pending.lock().remove(&req_id);
            if let Some(e) = entry {
                e.slot.fill(SlotState::Filled(resp));
            }
        }
    }

    /// One queued ("durable") RPC. The request survives connection loss:
    /// it is replayed on reconnect and answered at most once by the hub
    /// (replay-cache idempotence), so there is no separate retry loop —
    /// session replay *is* the retry path. `None` only on session death.
    fn call(self: &Arc<Self>, req: &Req<I, M>) -> Option<Resp<I, M>> {
        if self.is_dead() {
            return None;
        }
        let (req_id, payload) = self.encode_req(req);
        let slot = Arc::new(Slot::new());
        self.pending.lock().insert(
            req_id,
            PendingEntry {
                payload: payload.clone(),
                slot: Arc::clone(&slot),
                fast: false,
            },
        );
        // Death may have drained `pending` between the check above and
        // the insert; re-checking after the insert closes the race.
        if self.is_dead() {
            self.pending.lock().remove(&req_id);
            return None;
        }
        match self.ensure_conn() {
            Some(conn) => {
                // A failed write is not a failed request: the entry
                // stays queued, and shutting the socket kicks the
                // driver into its redial-and-replay path.
                if !conn.tx.send_payload(&payload) {
                    conn.alive.store(false, Ordering::SeqCst);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
            None => {
                self.pending.lock().remove(&req_id);
                return None;
            }
        }
        slot.wait()
    }

    /// One non-queued RPC for cheap lifecycle reads: never blocks on a
    /// redial (a locked dial = [`FastReply::Blip`]) and never replays.
    fn fast_call(self: &Arc<Self>, req: &Req<I, M>) -> FastReply<I, M> {
        if self.is_dead() {
            return FastReply::Dead;
        }
        let conn = {
            let Some(guard) = self.state.try_lock() else {
                return FastReply::Blip;
            };
            match guard.as_ref() {
                Some(c) if c.alive.load(Ordering::SeqCst) => Arc::clone(c),
                _ => return FastReply::Blip,
            }
        };
        let (req_id, payload) = self.encode_req(req);
        let slot = Arc::new(Slot::new());
        self.pending.lock().insert(
            req_id,
            PendingEntry {
                payload: payload.clone(),
                slot: Arc::clone(&slot),
                fast: true,
            },
        );
        // The driver drains fast entries *after* flipping `alive`;
        // re-checking after the insert guarantees ours is seen.
        if !conn.alive.load(Ordering::SeqCst) || self.is_dead() {
            self.pending.lock().remove(&req_id);
            return if self.is_dead() {
                FastReply::Dead
            } else {
                FastReply::Blip
            };
        }
        if !conn.tx.send_payload(&payload) {
            self.pending.lock().remove(&req_id);
            conn.alive.store(false, Ordering::SeqCst);
            let _ = conn.stream.shutdown(Shutdown::Both);
            return FastReply::Blip;
        }
        match slot.wait() {
            Some(resp) => FastReply::Resp(resp),
            None if self.is_dead() => FastReply::Dead,
            None => FastReply::Blip,
        }
    }

    /// Returns the live connection, (re)dialing + resuming if needed.
    /// `None` means the session is dead.
    fn ensure_conn(self: &Arc<Self>) -> Option<Arc<ConnShared>> {
        if self.is_dead() {
            return None;
        }
        let mut guard = self.state.lock();
        if let Some(c) = guard.as_ref() {
            if c.alive.load(Ordering::SeqCst) {
                return Some(Arc::clone(c));
            }
        }
        if self.is_dead() {
            return None;
        }
        match self.dial_and_handshake() {
            Some(conn) => {
                self.lost.store(false, Ordering::SeqCst);
                *guard = Some(Arc::clone(&conn));
                self.start_driver();
                Some(conn)
            }
            None => {
                *guard = None;
                drop(guard);
                self.die();
                None
            }
        }
    }

    /// One dial attempt under the [`DialPlan`]: direct first, then —
    /// when a relay hub is configured — the relay fallback. A forced
    /// plan skips the direct attempt entirely.
    fn dial_once(&self) -> io::Result<TcpStream> {
        if !self.plan.force_relay {
            match TcpStream::connect(self.plan.direct) {
                Ok(s) => return Ok(s),
                Err(e) => {
                    if self.plan.relay_via.is_none() {
                        return Err(e);
                    }
                }
            }
        }
        let Some(via) = self.plan.relay_via else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "forced relay without a relay hub in the dial plan",
            ));
        };
        let stream = crate::fleet::relay_connect(&via.to_string(), &self.plan.direct.to_string())?;
        self.relay_dials.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }

    /// Dials under the retry policy and completes the session
    /// handshake, standing off and retrying while the hub reports a
    /// partition embargo. Called with the `state` lock held — fast
    /// queries observe the held lock as a blip.
    fn dial_and_handshake(self: &Arc<Self>) -> Option<Arc<ConnShared>> {
        for _ in 0..64 {
            if self.closed.load(Ordering::SeqCst)
                || self.closing.load(Ordering::SeqCst)
                || self.is_dead()
            {
                return None;
            }
            let stream = self
                .retry
                .run_if(|_: &io::Error| true, |_| self.dial_once())
                .ok()?;
            let _ = stream.set_nodelay(true);
            match self.handshake(stream) {
                Handshake::Ready(conn) => return Some(conn),
                Handshake::Expired => {
                    self.die_expired();
                    return None;
                }
                Handshake::Partitioned(remaining) => {
                    thread::sleep(
                        remaining.clamp(Duration::from_millis(5), Duration::from_secs(1)),
                    );
                }
                // The dial succeeded but the hub vanished mid-handshake:
                // brief pause, then re-enter the dial loop.
                Handshake::Failed => thread::sleep(Duration::from_millis(25)),
            }
        }
        None
    }

    /// Runs the hello exchange on a fresh stream: new session or
    /// resume, connection-scoped re-setup, and the pending replay. On
    /// success the read stream is deposited for the driver to serve.
    fn handshake(self: &Arc<Self>, stream: TcpStream) -> Handshake {
        let (mut rd, mut w) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(w)) => (r, w),
            _ => return Handshake::Failed,
        };
        // Bounded handshake: a hub that accepts but never answers must
        // not wedge the dial loop. The driver sets its own timeout once
        // it takes over.
        let _ = rd.set_read_timeout(Some(Duration::from_secs(5)));
        let sid = self.session.load(Ordering::SeqCst);
        let hello = if sid == 0 {
            Req::HelloNew
        } else {
            Req::HelloResume(sid)
        };
        let Some(hello_id) = self.write_req(&mut w, &hello) else {
            return Handshake::Failed;
        };
        match self.await_resp(&mut rd, hello_id) {
            Some(Resp::Session { session, lease_ms }) => {
                self.session.store(session, Ordering::SeqCst);
                if lease_ms > 0 {
                    self.lease_ms.store(lease_ms, Ordering::SeqCst);
                }
                if sid == 0 {
                    // Event sequences are per-session: a fresh session
                    // restarts them at 1.
                    self.last_event_seq.store(0, Ordering::SeqCst);
                }
            }
            Some(Resp::SessionExpired) => return Handshake::Expired,
            Some(Resp::Partitioned { remaining_ms }) => {
                return Handshake::Partitioned(Duration::from_millis(remaining_ms));
            }
            _ => return Handshake::Failed,
        }
        // A resumed session already holds its binds hub-side; only a
        // brand-new session needs them installed.
        if sid == 0 {
            for id in self.bound.lock().clone() {
                let Some(bind_id) = self.write_req(&mut w, &Req::Bind(id)) else {
                    return Handshake::Failed;
                };
                if self.await_resp(&mut rd, bind_id).is_none() {
                    return Handshake::Failed;
                }
            }
        }
        if self.subscribed.load(Ordering::SeqCst) {
            // Resume the sequenced event stream from the last delivered
            // seq; the hub replays the missed tail before acking, and
            // `process_event`'s high-water mark dedups any overlap.
            let sub = Req::SubscribeFrom {
                seq: self.last_event_seq.load(Ordering::SeqCst),
            };
            let Some(sub_id) = self.write_req(&mut w, &sub) else {
                return Handshake::Failed;
            };
            if self.await_resp(&mut rd, sub_id).is_none() {
                return Handshake::Failed;
            }
        }
        // Replay every queued request in id order. The hub answers
        // anything it already applied from its replay cache, so a write
        // whose ack was severed is never applied twice.
        let replay: Vec<Vec<u8>> = {
            let p = self.pending.lock();
            let mut items: Vec<(u64, Vec<u8>)> = p
                .iter()
                .filter(|(_, e)| !e.fast)
                .map(|(id, e)| (*id, e.payload.clone()))
                .collect();
            items.sort_unstable_by_key(|(id, _)| *id);
            items.into_iter().map(|(_, payload)| payload).collect()
        };
        for payload in &replay {
            if crate::frame::write_frame(&mut w, payload).is_err() {
                return Handshake::Failed;
            }
            self.bytes_out
                .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        }
        let conn = Arc::new(ConnShared {
            tx: ConnTx {
                stream: w,
                buf: Mutex::new(WriteBuf::new()),
                flush: Mutex::new(()),
                bytes_out: Arc::clone(&self.bytes_out),
            },
            stream,
            alive: AtomicBool::new(true),
        });
        *self.reader_slot.lock() = Some((Arc::clone(&conn), rd));
        if sid != 0 {
            self.emit_healed(SessionEvent::PeerResumed);
        }
        Handshake::Ready(conn)
    }

    /// Spawns the driver: the transport's one background thread. It
    /// serves the current connection's read side (decoding answers,
    /// heartbeating every quarter-lease) and, when the connection dies,
    /// redials + resumes + replays itself — parked durable callers
    /// never have to. Holds only a weak reference between connections
    /// so it cannot outlive the transport's death.
    fn start_driver(self: &Arc<Self>) {
        if self.driver_started.swap(true, Ordering::SeqCst) {
            return;
        }
        let weak: Weak<Self> = Arc::downgrade(self);
        let spawned = thread::Builder::new()
            .name("script-net-spoke".into())
            .spawn(move || loop {
                let Some(shared) = weak.upgrade() else { return };
                if shared.is_dead() || shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                let taken = shared.reader_slot.lock().take();
                match taken {
                    Some((conn, rd)) => shared.run_conn(&conn, rd),
                    None => {
                        if shared.closing.load(Ordering::SeqCst) {
                            shared.die();
                            return;
                        }
                        // Redial on behalf of parked callers; a fresh
                        // handshake deposits the next reader for the
                        // loop to take. `None` = die() already ran.
                        if shared.ensure_conn().is_none() {
                            return;
                        }
                    }
                }
            });
        spawned.expect("spawn spoke driver");
    }

    /// Serves one connection until it dies: decodes frames, routes
    /// answers to their slots, dispatches event pushes, and emits the
    /// quarter-lease heartbeat whenever the read timeout lapses. The
    /// [`FrameDecoder`] keeps partial frames across timeouts, so the
    /// heartbeat clock cannot corrupt the stream.
    fn run_conn(self: &Arc<Self>, conn: &Arc<ConnShared>, mut rd: TcpStream) {
        let mut dec = FrameDecoder::new();
        let quarter =
            |s: &Self| Duration::from_millis((s.lease_ms.load(Ordering::SeqCst) / 4).max(25));
        let mut next_hb = Instant::now() + quarter(self);
        'conn: loop {
            if self.is_dead() || self.closed.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            if now >= next_hb {
                self.blip_ticks.fetch_add(1, Ordering::Relaxed);
                // Fire-and-forget: the ack arrives as an unmatched
                // `Resp::Session` and renews the lease; `acked` lets
                // the hub prune replay answers below our lowest
                // still-pending request.
                let acked = {
                    let p = self.pending.lock();
                    p.keys()
                        .min()
                        .copied()
                        .unwrap_or_else(|| self.next_req.load(Ordering::Relaxed))
                };
                let (_, payload) = self.encode_req(&Req::Heartbeat { acked });
                if !conn.tx.send_payload(&payload) {
                    break;
                }
                next_hb = now + quarter(self);
            }
            let wait = next_hb
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(5));
            let _ = rd.set_read_timeout(Some(wait));
            let status = match dec.read_once_from(&mut rd) {
                Ok(s) => s,
                Err(_) => break,
            };
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => {
                        if !self.on_frame(&frame) {
                            break 'conn;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break 'conn,
                }
            }
            if status == ReadStatus::Eof {
                break;
            }
        }
        // Connection over. Fast queries parked on it get a degraded
        // answer now; durable requests stay queued for the replay.
        conn.alive.store(false, Ordering::SeqCst);
        let _ = conn.stream.shutdown(Shutdown::Both);
        let drained: Vec<PendingEntry<I, M>> = {
            let mut p = self.pending.lock();
            let ids: Vec<u64> = p
                .iter()
                .filter(|(_, e)| e.fast)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter().filter_map(|id| p.remove(&id)).collect()
        };
        for e in drained {
            e.slot.fill(SlotState::Lost);
        }
        if !self.is_dead() && !self.closed.load(Ordering::SeqCst) {
            // Only the *current* connection's server announces the
            // disconnect: a stale connection outliving a completed
            // resume must not emit out of order after PeerResumed.
            let is_current = self
                .state
                .lock()
                .as_ref()
                .is_some_and(|c| Arc::ptr_eq(c, conn));
            if is_current {
                self.emit_severed();
            }
        }
        if self.closing.load(Ordering::SeqCst) {
            // The hub said goodbye before the socket closed: terminal.
            self.die();
        }
    }

    /// Routes one inbound frame: an event push or a pending answer.
    /// Returns `false` on protocol corruption (the connection is torn
    /// down).
    fn on_frame(&self, frame: &[u8]) -> bool {
        self.bytes_in
            .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
        let mut r = Reader::new(frame);
        let Ok(req_id) = u64::decode(&mut r) else {
            return false;
        };
        if req_id == EVENT_REQ_ID {
            // Unsolicited push: a tagged telemetry event. Frames with a
            // tag this build does not understand are skipped so newer
            // hubs can stream richer events to older clients.
            if let Ok(ev) = Event::<I>::decode(&mut r) {
                self.process_event(&ev);
            }
            return true;
        }
        let Ok(resp) = Resp::<I, M>::decode(&mut r) else {
            return false;
        };
        // Any session answer — including the driver's unmatched
        // heartbeat acks — renews the lease view.
        if let Resp::Session { lease_ms, .. } = &resp {
            if *lease_ms > 0 {
                self.lease_ms.store(*lease_ms, Ordering::SeqCst);
            }
        }
        let entry = self.pending.lock().remove(&req_id);
        if let Some(e) = entry {
            e.slot.fill(SlotState::Filled(resp));
        }
        true
    }
}

/// A [`Transport`] speaking framed RPC to a remote hub (see the module
/// docs).
pub struct SocketTransport<I, M> {
    shared: Arc<Shared<I, M>>,
    /// Client-side latency measurement: the RPC round trip *includes*
    /// the hub-side rendezvous wait, so hub time is attributed to the
    /// performance whose operation paid for it — no wire changes.
    latency: LatencyHooks,
}

impl<I, M> fmt::Debug for SocketTransport<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketTransport")
            .field("addr", &self.shared.plan.direct)
            .field("session", &self.shared.session.load(Ordering::Relaxed))
            .field("lost", &self.shared.lost.load(Ordering::Relaxed))
            .finish()
    }
}

impl<I, M> SocketTransport<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Send + Sync + 'static,
{
    /// A client for the hub at `addr`. No I/O happens here: the first
    /// operation dials, retrying under `retry`.
    pub fn new(addr: SocketAddr, retry: RetryPolicy) -> Self {
        Self::with_plan(DialPlan::direct(addr), retry)
    }

    /// A client dialing under `plan` — the federated entry point: the
    /// plan's direct address is a descriptor's home node, its relay a
    /// fleet shard. No I/O happens here.
    pub fn with_plan(plan: DialPlan, retry: RetryPolicy) -> Self {
        Self {
            shared: Arc::new(Shared {
                plan,
                retry,
                bytes_out: Arc::new(AtomicU64::new(0)),
                bytes_in: AtomicU64::new(0),
                relay_dials: AtomicU64::new(0),
                state: Mutex::new(None),
                lost: AtomicBool::new(false),
                dead: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                closing: AtomicBool::new(false),
                last_activity: AtomicU64::new(0),
                blip_ticks: AtomicU64::new(0),
                cached_aborted: AtomicBool::new(false),
                next_req: AtomicU64::new(EVENT_REQ_ID + 1),
                pending: Mutex::new(HashMap::new()),
                session: AtomicU64::new(0),
                lease_ms: AtomicU64::new(1000),
                last_event_seq: AtomicU64::new(0),
                observer: Mutex::new(None),
                rendezvous_observer: Mutex::new(None),
                session_observer: Mutex::new(None),
                bound: Mutex::new(Vec::new()),
                severed: Mutex::new(Vec::new()),
                subscribed: AtomicBool::new(false),
                driver_started: AtomicBool::new(false),
                reader_slot: Mutex::new(None),
            }),
            latency: LatencyHooks::default(),
        }
    }

    /// [`SocketTransport::new`] with address resolution and a default
    /// retry policy (6 attempts, 25 ms base, 500 ms cap).
    ///
    /// # Errors
    ///
    /// Address resolution errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(Self::new(
            addr,
            RetryPolicy::new(6)
                .with_base(Duration::from_millis(25))
                .with_cap(Duration::from_millis(500)),
        ))
    }

    /// The hub address this client dials.
    pub fn peer_addr(&self) -> SocketAddr {
        self.shared.plan.direct
    }

    /// The dial plan this client follows.
    pub fn dial_plan(&self) -> DialPlan {
        self.shared.plan
    }

    /// Frame bytes written to the hub so far (length prefixes
    /// included). With a direct [`DialPlan`] these bytes never touch
    /// the control fleet — the per-process evidence the federation
    /// example audits.
    pub fn bytes_sent(&self) -> u64 {
        self.shared.bytes_out.load(Ordering::Relaxed)
    }

    /// Frame bytes read from the hub so far (length prefixes
    /// included).
    pub fn bytes_received(&self) -> u64 {
        self.shared.bytes_in.load(Ordering::Relaxed)
    }

    /// How many connections fell back to (or were forced through) the
    /// relay path.
    pub fn relay_dials(&self) -> u64 {
        self.shared.relay_dials.load(Ordering::Relaxed)
    }

    /// Whether the session is dead (expired, redial budget exhausted,
    /// hub shut down, or closed). A mere connection blip mid-resume
    /// does not count.
    pub fn is_lost(&self) -> bool {
        self.shared.lost.load(Ordering::SeqCst)
    }

    /// Severs the connection without telling the hub — exactly what a
    /// process crash looks like from the other side. The hub keeps this
    /// session's ids alive until the lease lapses, then finishes them;
    /// other participants observe [`ChanError::Terminated`] for them.
    /// Idempotent: double-close (or close racing drop or racing a
    /// background reconnect) is a no-op the second time.
    pub fn close(&self) {
        close_shared(&self.shared);
    }
}

/// The shared close path (also the drop path, which has no trait
/// bounds in scope).
fn close_shared<I, M>(shared: &Arc<Shared<I, M>>) {
    shared.closed.store(true, Ordering::SeqCst);
    shared.die();
    if let Some(conn) = shared.state.lock().take() {
        conn.alive.store(false, Ordering::SeqCst);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    // A handshake that deposited its reader before anyone served it
    // still owns a socket; release it.
    if let Some((conn, rd)) = shared.reader_slot.lock().take() {
        conn.alive.store(false, Ordering::SeqCst);
        let _ = rd.shutdown(Shutdown::Both);
    }
}

/// The peer a single-arm selection's loss should be pinned on,
/// mirroring the in-process all-arms-dead rule.
fn single_named_peer<I: Clone, M>(arms: &[Arm<I, M>]) -> Option<I> {
    match arms {
        [Arm::Recv(script_chan::Source::Of(p))] | [Arm::Send { to: p, .. }] => Some(p.clone()),
        _ => None,
    }
}

impl<I, M> Transport<I, M> for SocketTransport<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Send + Sync + 'static,
{
    fn declare(&self, id: I) {
        let _ = self.shared.call(&Req::Declare(id));
    }

    fn activate(&self, id: I) {
        {
            let mut b = self.shared.bound.lock();
            if !b.contains(&id) {
                b.push(id.clone());
            }
        }
        let _ = self.shared.call(&Req::Activate(id));
    }

    fn finish(&self, id: I) {
        self.shared.bound.lock().retain(|b| b != &id);
        let _ = self.shared.call(&Req::Finish(id));
    }

    fn seal(&self) {
        let _ = self.shared.call(&Req::Seal);
    }

    fn abort(&self) {
        let _ = self.shared.call(&Req::Abort);
    }

    fn is_aborted(&self) -> bool {
        match self.shared.fast_call(&Req::IsAborted) {
            FastReply::Resp(Resp::Bool(b)) => {
                self.shared.cached_aborted.store(b, Ordering::Relaxed);
                b
            }
            FastReply::Resp(_) => true,
            // Mid-blip: the last confirmed answer, not a false alarm.
            FastReply::Blip => self.shared.cached_aborted.load(Ordering::Relaxed),
            // An unreachable hub cannot host any further operation.
            FastReply::Dead => true,
        }
    }

    fn peer_state(&self, id: &I) -> Option<PeerState> {
        match self.shared.fast_call(&Req::PeerStateOf(id.clone())) {
            FastReply::Resp(Resp::State(s)) => s,
            _ => None,
        }
    }

    fn peers(&self) -> Vec<(I, PeerState)> {
        match self.shared.fast_call(&Req::Peers) {
            FastReply::Resp(Resp::PeerList(ps)) => ps,
            _ => Vec::new(),
        }
    }

    fn activity(&self) -> u64 {
        match self.shared.fast_call(&Req::Activity) {
            FastReply::Resp(Resp::Counter(c)) => {
                self.shared.last_activity.store(c, Ordering::Relaxed);
                c
            }
            // Mid-blip: a synthetic, strictly-changing counter — a
            // sampling watchdog must see a *reconnecting* client as
            // live, because the session still holds its lease.
            FastReply::Blip | FastReply::Resp(_) => {
                let ticks = self.shared.blip_ticks.fetch_add(1, Ordering::Relaxed) + 1;
                self.shared
                    .last_activity
                    .load(Ordering::Relaxed)
                    .wrapping_add(ticks)
            }
            // Frozen on death: a sampling watchdog sees no progress.
            FastReply::Dead => self.shared.last_activity.load(Ordering::Relaxed),
        }
    }

    fn reseed(&self, seed: u64) {
        let _ = self.shared.call(&Req::Reseed(seed));
    }

    fn ensure_peer(&self, id: &I) -> Result<(), ChanError<I>> {
        match self.shared.call(&Req::EnsurePeer(id.clone())) {
            Some(Resp::Unit) => Ok(()),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(ChanError::Terminated(id.clone())),
        }
    }

    fn has_pending_from(&self, to: &I, from: &I) -> bool {
        match self.shared.fast_call(&Req::HasPendingFrom {
            to: to.clone(),
            from: from.clone(),
        }) {
            FastReply::Resp(Resp::Bool(b)) => b,
            _ => false,
        }
    }

    fn set_fault_plan(&self, plan: FaultPlan, _clone_fn: fn(&M) -> M) {
        // Duplicates are materialized hub-side with the hub's clone.
        let _ = self.shared.call(&Req::SetFaultPlan(plan));
    }

    fn clear_fault_plan(&self) {
        let _ = self.shared.call(&Req::ClearFaultPlan);
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        match self.shared.call(&Req::GetFaultPlan) {
            Some(Resp::Plan(p)) => p,
            _ => None,
        }
    }

    fn set_fault_observer(&self, observer: FaultObserver<I>) {
        *self.shared.observer.lock() = Some(observer);
        self.shared.subscribed.store(true, Ordering::SeqCst);
        let seq = self.shared.last_event_seq.load(Ordering::SeqCst);
        let _ = self.shared.call(&Req::SubscribeFrom { seq });
    }

    fn set_rendezvous_observer(&self, observer: RendezvousObserver<I>, label_of: LabelFn<M>) {
        // Labels are extracted hub-side, where rendezvous complete (see
        // [`TransportServer::set_message_labeler`](crate::TransportServer::set_message_labeler));
        // a spoke-supplied labeler has nothing local to label.
        let _ = label_of;
        *self.shared.rendezvous_observer.lock() = Some(observer);
        self.shared.subscribed.store(true, Ordering::SeqCst);
        let seq = self.shared.last_event_seq.load(Ordering::SeqCst);
        let _ = self.shared.call(&Req::SubscribeFrom { seq });
    }

    fn set_session_observer(&self, observer: SessionObserver<I>) {
        *self.shared.session_observer.lock() = Some(observer);
    }

    fn note_session_event(&self, event: &SessionEvent<I>) {
        let obs = self.shared.session_observer.lock().clone();
        if let Some(obs) = obs {
            obs(event);
        }
    }

    fn fault_log(&self) -> Vec<FaultRecord<I>> {
        match self.shared.call(&Req::FaultLog) {
            Some(Resp::Log(l)) => l,
            _ => Vec::new(),
        }
    }

    fn take_fault_log(&self) -> Vec<FaultRecord<I>> {
        match self.shared.call(&Req::TakeFaultLog) {
            Some(Resp::Log(l)) => l,
            _ => Vec::new(),
        }
    }

    fn set_latency_observer(&self, observer: LatencyObserver) {
        self.latency.set_observer(observer);
    }

    fn latency_samples(&self) -> Vec<LatencySample> {
        self.latency.samples()
    }

    fn take_latency_samples(&self) -> Vec<LatencySample> {
        self.latency.take_samples()
    }

    fn send(
        &self,
        from: &I,
        to: &I,
        msg: M,
        deadline: Option<Instant>,
    ) -> Result<(), ChanError<I>> {
        let req = Req::Send {
            from: from.clone(),
            to: to.clone(),
            msg,
            // The budget is computed once; a replay reuses the original
            // frame, so hub-side the clock restarts on reconnect.
            timeout_ms: timeout_ms_of(deadline),
        };
        let start = Instant::now();
        let result = match self.shared.call(&req) {
            Some(Resp::Unit) => Ok(()),
            Some(Resp::ChanErr(e)) => Err(e),
            // Session death = the receiving side is gone, the same
            // error a crashed peer produces.
            _ => Err(ChanError::Terminated(to.clone())),
        };
        if result.is_ok() {
            self.latency.record(LatencyOp::Send, start.elapsed());
        }
        result
    }

    fn try_recv(&self, me: &I, from: &I) -> Result<Option<M>, ChanError<I>> {
        let start = Instant::now();
        let result = match self.shared.call(&Req::TryRecv {
            me: me.clone(),
            from: from.clone(),
        }) {
            Some(Resp::Msg(m)) => Ok(m),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(ChanError::Terminated(from.clone())),
        };
        if matches!(result, Ok(Some(_))) {
            self.latency.record(LatencyOp::TryRecv, start.elapsed());
        }
        result
    }

    fn select(
        &self,
        me: &I,
        arms: Vec<Arm<I, M>>,
        deadline: Option<Instant>,
    ) -> Result<Outcome<I, M>, ChanError<I>> {
        if arms.is_empty() {
            return Err(ChanError::EmptySelect);
        }
        let loss = match single_named_peer(&arms) {
            Some(p) => ChanError::Terminated(p),
            None => ChanError::AllTerminated,
        };
        let req = Req::Select {
            me: me.clone(),
            arms,
            timeout_ms: timeout_ms_of(deadline),
        };
        let start = Instant::now();
        let result = match self.shared.call(&req) {
            Some(Resp::Selected(outcome)) => Ok(outcome),
            Some(Resp::ChanErr(e)) => Err(e),
            _ => Err(loss),
        };
        if matches!(
            result,
            Ok(Outcome::Received { .. }) | Ok(Outcome::Sent { .. })
        ) {
            self.latency.record(LatencyOp::Select, start.elapsed());
        }
        result
    }
}

impl<I, M> Drop for SocketTransport<I, M> {
    fn drop(&mut self) {
        close_shared(&self.shared);
    }
}
