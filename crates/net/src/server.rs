//! The transport hub: serves an in-process [`Transport`] over TCP.
//!
//! A [`TransportServer`] owns no rendezvous logic of its own — it wraps
//! an *inner* transport (normally a seeded
//! [`ShardedTransport`](script_chan::ShardedTransport)) and executes
//! decoded [`Req`]s against it, one hub per endpoint address. All
//! semantics — matching, selection fairness, lifecycle, and in
//! particular **fault injection at the sending edge** — happen in the
//! inner transport exactly as they do in-process, which is what makes a
//! chaos seed replay the identical fault log whether the participants
//! are threads or processes.
//!
//! # The reactor
//!
//! The hub is a single **event loop** ([`reactor`](crate::reactor)):
//! one thread owns the nonblocking listener, every spoke connection's
//! read buffer ([`FrameDecoder`]), every connection's coalescing output
//! buffer ([`WriteBuf`] behind a `ConnTx`), and the lease-sweep
//! timer. Accepts, request decoding, and response flushing all happen
//! on that one thread — the hub's thread count is O(1) in the number
//! of connected spokes, where the previous design spent a thread per
//! connection plus a thread per parked rendezvous plus a sweeper.
//!
//! Blocking operations (`Send`, `Select`) are **submitted, not
//! awaited**: the reactor hands them to the inner transport's
//! asynchronous entry points ([`Transport::submit_send`] /
//! [`Transport::submit_select`]) with a completion callback that
//! encodes the response into the owning connection's output buffer and
//! wakes the reactor to flush it — the hub answers out of order, as
//! many requests deep as the spokes care to pipeline. An inner
//! transport that does not support submission (the default trait
//! methods decline) falls back to one worker thread per operation,
//! counted in [`TransportServer::worker_threads`].
//!
//! **Sessions.** A spoke that opens with [`Req::HelloNew`] gets a
//! session id and a lease. The session — its bound ids, its replay
//! answer cache, its sequenced event buffer — outlives any one TCP
//! connection: when the connection drops, the hub parks the session
//! and keeps every bound performance alive until the lease lapses. A
//! reconnect presenting [`Req::HelloResume`] re-attaches, answers
//! replayed requests from the cache (a request the hub already applied
//! is **never** applied twice; its recorded answer is rewritten
//! verbatim), and resumes the sequenced event stream from wherever the
//! spoke left off — the missed tail travels as one batched
//! [`Event::SeqStream`] frame (the older [`Event::SeqFaults`] batch is
//! decode-only legacy; no hub emits it since rendezvous records joined
//! the stream). [`Req::Heartbeat`] renews the lease and
//! prunes the cache; only lease expiry degrades to crashed-peer
//! semantics: the reactor's sweep timer finishes every bound id, so
//! remaining participants observe the standard
//! [`Terminated`](script_chan::ChanError::Terminated) error exactly as
//! before sessions existed.
//!
//! **Connection faults.** The hub registers itself as the inner
//! transport's fault observer. Chaos-injected
//! [`Sever`](script_chan::FaultKind::Sever) and
//! [`Partition`](script_chan::FaultKind::Partition) records — decided
//! deterministically at the sending edge like every other fault class —
//! are *enacted* here: the session carrying the faulted edge has its
//! connection torn down, and a partition additionally embargoes resume
//! attempts until the configured duration elapses. Because decision and
//! log live in the inner transport, the fault log still replays
//! bit-for-bit on any transport; only the enactment is hub-specific.
//!
//! **Peer loss (legacy connections).** A connection that never opens a
//! session keeps the pre-session contract: the ids it bound are
//! finished the moment the connection drops.
//!
//! **Shutdown** pushes [`Event::Closing`] to every connection before
//! the sockets close, so spokes fail fast instead of burning their
//! redial budget against a dead address.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use script_chan::{FaultKind, FaultRecord, RendezvousRecord, SessionEvent, Transport};

use crate::frame::{FrameDecoder, ReadStatus, WriteBuf};
use crate::proto::{deadline_of, Event, Req, Resp, StreamItem, EVENT_REQ_ID};
use crate::reactor::{fd_of, Poller, Waker};
use crate::wire::{Reader, Wire};

/// Default session lease: how long a severed session's bound
/// performances stay alive awaiting a resume.
pub const DEFAULT_LEASE: Duration = Duration::from_secs(1);

/// Cap on buffered sequenced events retained per session for resume
/// replay; beyond it the oldest events are dropped (a resume that far
/// behind would gap anyway).
const EVENT_BUFFER_CAP: usize = 8192;

/// A connection's shared output side: any thread — the reactor, an
/// inner-transport completion callback, the fault observer — queues
/// frames here; the reactor coalesces everything queued since its last
/// wakeup into one flush.
struct ConnTx {
    buf: Mutex<WriteBuf>,
    waker: Arc<Waker>,
}

impl ConnTx {
    /// Queues one already-encoded `(req_id, payload)` frame and wakes
    /// the reactor to flush it. Oversized payloads cannot occur (every
    /// response is hub-built) and are dropped defensively.
    fn push(&self, payload: &[u8]) {
        let _ = self.buf.lock().push_frame(payload);
        self.waker.wake();
    }
}

/// Cross-thread view of one registered client connection (the fault
/// observer streams legacy events through it; shutdown pushes
/// [`Event::Closing`]).
struct ConnEntry {
    id: u64,
    tx: Arc<ConnTx>,
    /// Legacy (non-session) event subscription flag.
    subscribed: Arc<AtomicBool>,
}

/// One spoke session: state that must survive connection loss.
struct Session<I> {
    id: u64,
    state: Mutex<SessionState<I>>,
}

struct SessionState<I> {
    /// Ids this session animates; finished only at lease expiry or hub
    /// shutdown, never on mere connection loss.
    bound: Vec<I>,
    /// Whether the spoke subscribed to the sequenced event stream.
    subscribed: bool,
    /// Set while a resumed subscriber has not yet re-synced with
    /// `SubscribeFrom`: live event pushes are sequenced and buffered
    /// but **not written**, so the replay is always the first event
    /// traffic on a fresh connection. Without this, a live push can
    /// carry a seq past the un-replayed tail, and the spoke's
    /// high-water dedup would then skip the tail as already-seen —
    /// a permanent gap.
    event_resync: bool,
    /// Output buffer of the currently attached connection; `None`
    /// while severed (answers are cached instead of written).
    writer: Option<Arc<ConnTx>>,
    /// Raw stream of the attached connection, kept to force-sever it
    /// when a chaos fault or a stale-resume demands it.
    stream: Option<TcpStream>,
    /// Bumped on every attach so a stale connection's teardown cannot
    /// detach a newer one.
    epoch: u64,
    /// Lease clock: any traffic (or a rejected-but-alive resume
    /// attempt) refreshes it.
    last_seen: Instant,
    /// While set in the future, resume attempts are refused with
    /// [`Resp::Partitioned`].
    partitioned_until: Option<Instant>,
    /// Replay answer cache: request id → fully encoded response frame.
    /// A replayed request is answered from here, never re-applied.
    done: HashMap<u64, Vec<u8>>,
    /// Blocking requests currently submitted to the inner transport; a
    /// replayed duplicate is ignored rather than double-submitted.
    in_flight: HashSet<u64>,
    /// Sequence number of the last event pushed to this session.
    next_event_seq: u64,
    /// Buffered `(seq, item)` events for gapless resume replay. Faults
    /// and rendezvous share this one stream (and its sequence space),
    /// so a spoke's single high-water mark dedups both.
    events: VecDeque<(u64, StreamItem<I>)>,
}

struct ServerShared<I, M> {
    inner: Arc<dyn Transport<I, M>>,
    conns: Mutex<Vec<ConnEntry>>,
    sessions: Mutex<HashMap<u64, Arc<Session<I>>>>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    next_session: AtomicU64,
    lease: Duration,
    waker: Arc<Waker>,
    /// Live fallback worker threads (inner transports without
    /// submission support only).
    workers: AtomicU64,
}

/// A TCP hub exposing an inner [`Transport`] to remote
/// [`SocketTransport`](crate::SocketTransport) clients (see the module
/// docs).
pub struct TransportServer<I, M> {
    shared: Arc<ServerShared<I, M>>,
    addr: SocketAddr,
}

impl<I, M> fmt::Debug for TransportServer<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransportServer")
            .field("addr", &self.addr)
            .field("connections", &self.shared.conns.lock().len())
            .field("sessions", &self.shared.sessions.lock().len())
            .finish()
    }
}

impl<I, M> TransportServer<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `inner` with the [`DEFAULT_LEASE`]. The hub registers
    /// itself as `inner`'s fault observer to stream fault events to
    /// subscribed clients and to enact connection faults.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(addr: A, inner: Arc<dyn Transport<I, M>>) -> io::Result<Self> {
        Self::bind_with_lease(addr, inner, DEFAULT_LEASE)
    }

    /// [`TransportServer::bind`] with an explicit session lease: how
    /// long a severed session's bound performances survive awaiting a
    /// resume before degrading to crashed-peer semantics.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind_with_lease<A: ToSocketAddrs>(
        addr: A,
        inner: Arc<dyn Transport<I, M>>,
        lease: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let waker = Arc::new(Waker::new()?);
        let shared = Arc::new(ServerShared {
            inner,
            conns: Mutex::new(Vec::new()),
            sessions: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            lease,
            waker,
            workers: AtomicU64::new(0),
        });
        // Weak: the inner transport must not keep the hub alive through
        // its own observer slot.
        let weak: Weak<ServerShared<I, M>> = Arc::downgrade(&shared);
        shared.inner.set_fault_observer(Arc::new(move |rec| {
            if let Some(sh) = weak.upgrade() {
                sh.handle_fault(rec);
            }
        }));
        // Rendezvous observation: the hub-side labeler is authoritative
        // (spokes forward opaque messages), starting label-less until
        // [`TransportServer::set_message_labeler`] installs one.
        let weak: Weak<ServerShared<I, M>> = Arc::downgrade(&shared);
        shared.inner.set_rendezvous_observer(
            Arc::new(move |rec| {
                if let Some(sh) = weak.upgrade() {
                    sh.handle_rendezvous(rec);
                }
            }),
            no_label::<M>,
        );
        let reactor_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("script-net-hub".into())
            .spawn(move || Reactor::new(reactor_shared, listener).run())
            .expect("spawn hub reactor");
        Ok(Self { shared, addr })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session lease this hub grants.
    pub fn lease(&self) -> Duration {
        self.shared.lease
    }

    /// The transport the hub serves — hub-local participants use it
    /// directly, with zero socket hops.
    pub fn inner(&self) -> Arc<dyn Transport<I, M>> {
        Arc::clone(&self.shared.inner)
    }

    /// Installs the hub-side message labeler: every rendezvous record
    /// streamed to spokes (and observed hub-locally) carries the label
    /// `label_of` extracts from the delivered message. The hub is the
    /// one place the plaintext message is guaranteed to exist, so its
    /// labeler is authoritative for the whole performance.
    pub fn set_message_labeler(&self, label_of: script_chan::LabelFn<M>) {
        let weak: Weak<ServerShared<I, M>> = Arc::downgrade(&self.shared);
        self.shared.inner.set_rendezvous_observer(
            Arc::new(move |rec| {
                if let Some(sh) = weak.upgrade() {
                    sh.handle_rendezvous(rec);
                }
            }),
            label_of,
        );
    }

    /// Live fallback worker threads: zero whenever the inner transport
    /// supports asynchronous submission (as
    /// [`ShardedTransport`](script_chan::ShardedTransport) does), in
    /// which case the hub's only thread is its reactor.
    pub fn worker_threads(&self) -> u64 {
        self.shared.workers.load(Ordering::SeqCst)
    }

    /// Stops accepting, notifies every spoke with [`Event::Closing`],
    /// severs every client connection and discards every session,
    /// finishing its bound participants on the inner transport exactly
    /// as if their processes had died. Idempotent: repeated calls (or
    /// a close racing a drop) are no-ops.
    pub fn shutdown(&self) {
        self.shared.shutdown_hub();
    }
}

impl<I, M> Drop for TransportServer<I, M> {
    fn drop(&mut self) {
        self.shared.shutdown_hub();
    }
}

impl<I, M> ServerShared<I, M> {
    fn lease_ms(&self) -> u64 {
        self.lease.as_millis().min(u64::MAX as u128) as u64
    }

    fn shutdown_hub(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Best-effort shutdown notice: the reactor flushes these before
        // it closes the sockets, so spokes fail fast instead of
        // entering their redial loops.
        let mut closing = Vec::new();
        EVENT_REQ_ID.encode(&mut closing);
        Event::<u64>::Closing.encode(&mut closing);
        for conn in self.conns.lock().iter() {
            conn.tx.push(&closing);
        }
        self.waker.wake();
        // Hub death is final for every session: finish the bound ids so
        // hub-local participants observe crashed peers, not a hang.
        let sessions: Vec<Arc<Session<I>>> = self.sessions.lock().drain().map(|(_, s)| s).collect();
        for sess in sessions {
            let bound = {
                let mut st = sess.state.lock();
                st.writer = None;
                st.stream = None;
                std::mem::take(&mut st.bound)
            };
            for id in bound {
                self.inner.finish(id);
            }
        }
    }
}

/// Per-connection routing state on the reactor.
enum ConnMode<I> {
    /// No frame seen yet: the first one routes to a session handshake
    /// or the legacy contract.
    Fresh,
    /// Pre-session contract: `bound` dies with the connection.
    Legacy { bound: Vec<I> },
    /// Attached to a session at a given epoch.
    Session { sess: Arc<Session<I>>, epoch: u64 },
}

/// One connection owned by the reactor.
struct Conn<I> {
    stream: TcpStream,
    dec: FrameDecoder,
    tx: Arc<ConnTx>,
    subscribed: Arc<AtomicBool>,
    mode: ConnMode<I>,
    /// Close once the output buffer drains (rejected handshakes answer
    /// before the socket goes).
    closing: bool,
    /// This connection's slot in the persistent poll set.
    tok: usize,
    /// The write-interest bit currently registered for `tok`; the loop
    /// patches the poller only when the desired bit differs.
    want_write: bool,
}

/// The hub's event loop (see the module docs).
struct Reactor<I, M> {
    shared: Arc<ServerShared<I, M>>,
    listener: TcpListener,
    conns: HashMap<u64, Conn<I>>,
    poller: Poller,
    /// The listener's permanent slot in the poll set.
    listener_tok: usize,
    /// The waker's permanent slot in the poll set.
    waker_tok: usize,
    next_sweep: Instant,
    sweep_tick: Duration,
}

impl<I, M> Reactor<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    fn new(shared: Arc<ServerShared<I, M>>, listener: TcpListener) -> Self {
        let sweep_tick =
            (shared.lease / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        // The poll set is persistent: the listener and waker register
        // once here, connections register on accept and tombstone on
        // teardown — no per-wake rebuild.
        let mut poller = Poller::new();
        let listener_tok = poller.register(fd_of(&listener), true, false);
        let waker_tok = poller.register(shared.waker.read_fd(), true, false);
        Self {
            shared,
            listener,
            conns: HashMap::new(),
            poller,
            listener_tok,
            waker_tok,
            next_sweep: Instant::now() + sweep_tick,
            sweep_tick,
        }
    }

    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_and_close();
                return;
            }
            // Patch each connection's write interest in place, only
            // when it changed since the last wake (read interest is
            // constant for a connection's whole life).
            for conn in self.conns.values_mut() {
                let want_write = !conn.tx.buf.lock().is_empty();
                if want_write != conn.want_write {
                    self.poller.set_interest(conn.tok, true, want_write);
                    conn.want_write = want_write;
                }
            }
            let timeout = self.next_sweep.saturating_duration_since(Instant::now());
            if self.poller.wait(Some(timeout)).is_err() {
                // A torn-down fd raced into the set; retry next turn
                // (poll reports it as POLLNVAL readiness, not an error,
                // on every supported platform).
                thread::yield_now();
            }
            if self.poller.readiness(self.waker_tok).readable {
                self.shared.waker.drain();
            }
            if Instant::now() >= self.next_sweep {
                self.shared.sweep_expired();
                self.next_sweep = Instant::now() + self.sweep_tick;
            }
            if self.poller.readiness(self.listener_tok).readable {
                self.accept_ready();
            }
            // Reads: drain every readable connection and route its
            // complete frames.
            let slots: Vec<(u64, usize)> = self.conns.iter().map(|(id, c)| (*id, c.tok)).collect();
            let mut dead: Vec<u64> = Vec::new();
            for &(id, tok) in &slots {
                let r = self.poller.readiness(tok);
                if !(r.readable || r.hangup) {
                    continue;
                }
                if !self.service_read(id) {
                    dead.push(id);
                }
            }
            // Writes: one coalesced flush per connection with queued
            // output (readiness is rechecked implicitly — a nonblocking
            // partial write just leaves the rest for the next wakeup).
            let flush_ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in flush_ids {
                if !self.flush_conn(id) {
                    dead.push(id);
                }
            }
            for id in dead {
                self.teardown(id);
            }
        }
    }

    /// Accepts every pending connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    let tx = Arc::new(ConnTx {
                        buf: Mutex::new(WriteBuf::new()),
                        waker: Arc::clone(&self.shared.waker),
                    });
                    let subscribed = Arc::new(AtomicBool::new(false));
                    self.shared.conns.lock().push(ConnEntry {
                        id,
                        tx: Arc::clone(&tx),
                        subscribed: Arc::clone(&subscribed),
                    });
                    let tok = self.poller.register(fd_of(&stream), true, false);
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            dec: FrameDecoder::new(),
                            tx,
                            subscribed,
                            mode: ConnMode::Fresh,
                            closing: false,
                            tok,
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Reads whatever the socket has and routes every complete frame.
    /// Returns `false` once the connection is finished (EOF, I/O error,
    /// or protocol corruption).
    fn service_read(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        let status = match conn.dec.read_from(&mut conn.stream) {
            Ok(s) => s,
            Err(_) => ReadStatus::Eof,
        };
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return true;
                };
                match conn.dec.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(_) => return false, // oversized prefix: corruption
                }
            };
            if !self.handle_frame(id, &frame) {
                return false;
            }
        }
        status == ReadStatus::Blocked
    }

    /// Flushes a connection's queued output. Returns `false` if the
    /// connection should be torn down (write failure, or a drained
    /// close-after-flush).
    fn flush_conn(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        let mut buf = conn.tx.buf.lock();
        match buf.flush_to(&mut conn.stream) {
            Ok(drained) => !(conn.closing && drained),
            Err(_) => false,
        }
    }

    /// Routes one decoded frame according to the connection's mode.
    /// Returns `false` to sever the connection.
    fn handle_frame(&mut self, id: u64, frame: &[u8]) -> bool {
        let mut r = Reader::new(frame);
        let (Ok(req_id), Ok(req)) = (u64::decode(&mut r), Req::<I, M>::decode(&mut r)) else {
            return false; // protocol corruption: sever the connection
        };
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        if conn.closing {
            // A rejected handshake's connection takes no further
            // requests; it is only waiting for its answer to flush.
            return true;
        }
        match &conn.mode {
            ConnMode::Fresh => self.handle_first(id, req_id, req),
            ConnMode::Legacy { .. } => self.handle_legacy(id, req_id, req),
            ConnMode::Session { .. } => self.handle_session(id, req_id, req),
        }
    }

    /// The connection's first frame: session handshake or legacy entry.
    fn handle_first(&mut self, id: u64, req_id: u64, req: Req<I, M>) -> bool {
        match req {
            Req::HelloNew => {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    return false;
                }
                let conn = self.conns.get_mut(&id).expect("routed conn");
                let sid = self.shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                let sess = Arc::new(Session {
                    id: sid,
                    state: Mutex::new(SessionState {
                        bound: Vec::new(),
                        subscribed: false,
                        event_resync: false,
                        writer: Some(Arc::clone(&conn.tx)),
                        stream: conn.stream.try_clone().ok(),
                        epoch: 1,
                        last_seen: Instant::now(),
                        partitioned_until: None,
                        done: HashMap::new(),
                        in_flight: HashSet::new(),
                        next_event_seq: 0,
                        events: VecDeque::new(),
                    }),
                });
                self.shared.sessions.lock().insert(sid, Arc::clone(&sess));
                conn.mode = ConnMode::Session {
                    sess: Arc::clone(&sess),
                    epoch: 1,
                };
                self.shared.session_respond(
                    &sess,
                    req_id,
                    &Resp::Session {
                        session: sid,
                        lease_ms: self.shared.lease_ms(),
                    },
                );
                true
            }
            Req::HelloResume(sid) => self.handle_resume(id, req_id, sid),
            first => {
                let conn = self.conns.get_mut(&id).expect("routed conn");
                conn.mode = ConnMode::Legacy { bound: Vec::new() };
                self.handle_legacy(id, req_id, first)
            }
        }
    }

    fn handle_resume(&mut self, id: u64, req_id: u64, sid: u64) -> bool {
        let conn = self.conns.get_mut(&id).expect("routed conn");
        let sess = self.shared.sessions.lock().get(&sid).cloned();
        let Some(sess) = sess else {
            // Expired (or never existed): the spoke must degrade to
            // crashed-peer semantics. Answer, flush, then close.
            self.shared
                .respond(&conn.tx, req_id, &Resp::<I, M>::SessionExpired);
            conn.closing = true;
            return true;
        };
        let epoch = {
            let mut st = sess.state.lock();
            let now = Instant::now();
            if let Some(until) = st.partitioned_until {
                if until > now {
                    // The spoke is provably alive — keep its lease warm
                    // while the partition embargo holds, but refuse the
                    // attach.
                    st.last_seen = now;
                    let remaining_ms = (until - now).as_millis().min(u64::MAX as u128);
                    drop(st);
                    self.shared.respond(
                        &conn.tx,
                        req_id,
                        &Resp::<I, M>::Partitioned {
                            remaining_ms: remaining_ms as u64,
                        },
                    );
                    conn.closing = true;
                    return true;
                }
                st.partitioned_until = None;
            }
            // A stale connection still attached loses to the newcomer;
            // its teardown observes the bumped epoch and leaves the
            // session alone.
            if let Some(old) = st.stream.take() {
                let _ = old.shutdown(Shutdown::Both);
            }
            st.epoch += 1;
            st.writer = Some(Arc::clone(&conn.tx));
            st.stream = conn.stream.try_clone().ok();
            st.last_seen = now;
            // A resumed subscriber holds event writes until its
            // `SubscribeFrom` replay re-syncs the stream.
            st.event_resync = st.subscribed;
            st.epoch
        };
        conn.mode = ConnMode::Session {
            sess: Arc::clone(&sess),
            epoch,
        };
        self.shared.session_respond(
            &sess,
            req_id,
            &Resp::Session {
                session: sid,
                lease_ms: self.shared.lease_ms(),
            },
        );
        let bound = sess.state.lock().bound.clone();
        for bid in bound {
            self.shared
                .inner
                .note_session_event(&SessionEvent::PeerResumed(bid));
        }
        true
    }

    /// One request on a session connection: every answer flows through
    /// the replay cache (idempotent by request id); blocking operations
    /// are submitted to the inner transport and answered by completion
    /// callbacks to whatever connection is attached then.
    fn handle_session(&mut self, id: u64, req_id: u64, req: Req<I, M>) -> bool {
        let ConnMode::Session { sess, .. } = (match self.conns.get(&id) {
            Some(c) => &c.mode,
            None => return true,
        }) else {
            return true;
        };
        let sess = Arc::clone(sess);
        let shared = &self.shared;
        {
            let mut st = sess.state.lock();
            st.last_seen = Instant::now();
            if let Some(cached) = st.done.get(&req_id) {
                // Replayed and already applied: rewrite the recorded
                // answer verbatim; never apply twice.
                let payload = cached.clone();
                write_to_session(&mut st, &payload);
                return true;
            }
            if st.in_flight.contains(&req_id) {
                // Replayed while the submitted operation still runs; it
                // will answer the current connection on completion.
                return true;
            }
        }
        match req {
            // A second handshake mid-session is protocol corruption.
            Req::HelloNew | Req::HelloResume(_) => return false,
            Req::Heartbeat { acked } => {
                {
                    let mut st = sess.state.lock();
                    st.done.retain(|k, _| *k >= acked);
                }
                // Uncached: heartbeats are never replayed, and the
                // answer doubles as the hub → spoke lease renewal.
                shared.session_write_uncached(
                    &sess,
                    req_id,
                    &Resp::Session {
                        session: sess.id,
                        lease_ms: shared.lease_ms(),
                    },
                );
            }
            Req::SubscribeFrom { seq } => {
                // Atomically: mark subscribed, replay the buffered tail
                // as one batched frame, ack — all under the state lock,
                // so no event broadcast can interleave and break
                // gaplessness.
                let mut st = sess.state.lock();
                st.subscribed = true;
                st.event_resync = false;
                let items: Vec<StreamItem<I>> = st
                    .events
                    .iter()
                    .filter(|(s, _)| *s > seq)
                    .map(|(_, item)| item.clone())
                    .collect();
                if let Some(first_seq) = st.events.iter().find(|(s, _)| *s > seq).map(|(s, _)| *s) {
                    let mut payload = Vec::new();
                    EVENT_REQ_ID.encode(&mut payload);
                    Event::SeqStream { first_seq, items }.encode(&mut payload);
                    write_to_session(&mut st, &payload);
                }
                let mut payload = Vec::new();
                req_id.encode(&mut payload);
                Resp::<I, M>::Unit.encode(&mut payload);
                write_to_session(&mut st, &payload);
            }
            Req::Subscribe => {
                {
                    let mut st = sess.state.lock();
                    st.subscribed = true;
                    st.event_resync = false;
                }
                shared.session_respond(&sess, req_id, &Resp::Unit);
            }
            Req::Bind(bid) => {
                let mut st = sess.state.lock();
                if !st.bound.contains(&bid) {
                    st.bound.push(bid);
                }
                drop(st);
                shared.session_respond(&sess, req_id, &Resp::Unit);
            }
            Req::Activate(bid) => {
                {
                    let mut st = sess.state.lock();
                    if !st.bound.contains(&bid) {
                        st.bound.push(bid.clone());
                    }
                }
                shared.inner.activate(bid);
                shared.session_respond(&sess, req_id, &Resp::Unit);
            }
            Req::Finish(bid) => {
                sess.state.lock().bound.retain(|b| b != &bid);
                shared.inner.finish(bid);
                shared.session_respond(&sess, req_id, &Resp::Unit);
            }
            Req::Send {
                from,
                to,
                msg,
                timeout_ms,
            } => {
                sess.state.lock().in_flight.insert(req_id);
                let shared = Arc::clone(&self.shared);
                let done_shared = Arc::clone(&self.shared);
                let done_sess = Arc::clone(&sess);
                let done: script_chan::SendDone<I> = Box::new(move |result| {
                    let resp = match result {
                        Ok(()) => Resp::Unit,
                        Err(e) => Resp::ChanErr(e),
                    };
                    done_shared.session_respond(&done_sess, req_id, &resp);
                });
                if let Err((msg, done)) = Arc::clone(&shared.inner).submit_send(
                    &from,
                    &to,
                    msg,
                    deadline_of(timeout_ms),
                    done,
                ) {
                    shared.spawn_worker(move |sh| {
                        done(sh.inner.send(&from, &to, msg, deadline_of(timeout_ms)));
                    });
                }
            }
            Req::Select {
                me,
                arms,
                timeout_ms,
            } => {
                sess.state.lock().in_flight.insert(req_id);
                let shared = Arc::clone(&self.shared);
                let done_shared = Arc::clone(&self.shared);
                let done_sess = Arc::clone(&sess);
                let done: script_chan::SelectDone<I, M> = Box::new(move |result| {
                    let resp = match result {
                        Ok(outcome) => Resp::Selected(outcome),
                        Err(e) => Resp::ChanErr(e),
                    };
                    done_shared.session_respond(&done_sess, req_id, &resp);
                });
                if let Err((arms, done)) = Arc::clone(&shared.inner).submit_select(
                    &me,
                    arms,
                    deadline_of(timeout_ms),
                    done,
                ) {
                    shared.spawn_worker(move |sh| {
                        done(sh.inner.select(&me, arms, deadline_of(timeout_ms)));
                    });
                }
            }
            other => {
                let resp = shared.apply_simple(other);
                shared.session_respond(&sess, req_id, &resp);
            }
        }
        true
    }

    /// One request on a pre-session connection — byte-for-byte the old
    /// contract: the connection's bound ids are finished the moment it
    /// drops.
    fn handle_legacy(&mut self, id: u64, req_id: u64, req: Req<I, M>) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        let tx = Arc::clone(&conn.tx);
        let subscribed = Arc::clone(&conn.subscribed);
        let ConnMode::Legacy { bound } = &mut conn.mode else {
            return true;
        };
        match req {
            // A session handshake is only legal as the very first
            // frame of a connection.
            Req::HelloNew | Req::HelloResume(_) => return false,
            Req::Heartbeat { .. } => {
                // No session to renew: answer the null session so a
                // confused spoke can tell.
                self.shared.respond(
                    &tx,
                    req_id,
                    &Resp::<I, M>::Session {
                        session: 0,
                        lease_ms: 0,
                    },
                );
            }
            Req::Subscribe | Req::SubscribeFrom { .. } => {
                // No event buffer on a legacy connection: subscribe
                // from now.
                subscribed.store(true, Ordering::SeqCst);
                self.shared.respond(&tx, req_id, &Resp::<I, M>::Unit);
            }
            Req::Bind(bid) => {
                if !bound.contains(&bid) {
                    bound.push(bid);
                }
                self.shared.respond(&tx, req_id, &Resp::<I, M>::Unit);
            }
            Req::Activate(bid) => {
                // The connection that animates a participant is the one
                // whose death must terminate it: activate binds.
                if !bound.contains(&bid) {
                    bound.push(bid.clone());
                }
                self.shared.inner.activate(bid);
                self.shared.respond(&tx, req_id, &Resp::<I, M>::Unit);
            }
            Req::Finish(bid) => {
                bound.retain(|b| b != &bid);
                self.shared.inner.finish(bid);
                self.shared.respond(&tx, req_id, &Resp::<I, M>::Unit);
            }
            Req::Send {
                from,
                to,
                msg,
                timeout_ms,
            } => {
                let done_shared = Arc::clone(&self.shared);
                let done: script_chan::SendDone<I> = Box::new(move |result| {
                    let resp = match result {
                        Ok(()) => Resp::<I, M>::Unit,
                        Err(e) => Resp::ChanErr(e),
                    };
                    done_shared.respond(&tx, req_id, &resp);
                });
                if let Err((msg, done)) = Arc::clone(&self.shared.inner).submit_send(
                    &from,
                    &to,
                    msg,
                    deadline_of(timeout_ms),
                    done,
                ) {
                    self.shared.spawn_worker(move |sh| {
                        done(sh.inner.send(&from, &to, msg, deadline_of(timeout_ms)));
                    });
                }
            }
            Req::Select {
                me,
                arms,
                timeout_ms,
            } => {
                let done_shared = Arc::clone(&self.shared);
                let done: script_chan::SelectDone<I, M> = Box::new(move |result| {
                    let resp = match result {
                        Ok(outcome) => Resp::Selected(outcome),
                        Err(e) => Resp::ChanErr(e),
                    };
                    done_shared.respond(&tx, req_id, &resp);
                });
                if let Err((arms, done)) = Arc::clone(&self.shared.inner).submit_select(
                    &me,
                    arms,
                    deadline_of(timeout_ms),
                    done,
                ) {
                    self.shared.spawn_worker(move |sh| {
                        done(sh.inner.select(&me, arms, deadline_of(timeout_ms)));
                    });
                }
            }
            other => {
                let resp = self.shared.apply_simple(other);
                self.shared.respond(&tx, req_id, &resp);
            }
        }
        true
    }

    /// Removes a connection, applying its mode's death semantics:
    /// legacy binds die with the connection; a session merely detaches
    /// and awaits resume or lease expiry.
    fn teardown(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        self.poller.deregister(conn.tok);
        self.shared.conns.lock().retain(|c| c.id != id);
        let _ = conn.stream.shutdown(Shutdown::Both);
        match conn.mode {
            ConnMode::Fresh => {}
            ConnMode::Legacy { bound } => {
                // The connection is gone: every participant it animated
                // is too.
                for bid in bound {
                    self.shared.inner.finish(bid);
                }
            }
            ConnMode::Session { sess, epoch } => {
                // Detach, not death: the session (and its bound
                // performances) stays alive until the lease expires or
                // a resume re-attaches.
                let mut st = sess.state.lock();
                if st.epoch == epoch {
                    st.writer = None;
                    st.stream = None;
                    st.last_seen = Instant::now();
                    let bound = st.bound.clone();
                    drop(st);
                    if !self.shared.shutdown.load(Ordering::SeqCst) {
                        for bid in bound {
                            self.shared
                                .inner
                                .note_session_event(&SessionEvent::PeerDisconnected(bid));
                        }
                    }
                }
            }
        }
    }

    /// Shutdown path: briefly re-enable blocking writes to deliver the
    /// queued [`Event::Closing`] notices, then close everything.
    fn drain_and_close(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in &ids {
            if let Some(conn) = self.conns.get_mut(id) {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn
                    .stream
                    .set_write_timeout(Some(Duration::from_millis(100)));
                let mut buf = conn.tx.buf.lock();
                let _ = buf.flush_to(&mut conn.stream);
            }
        }
        for id in ids {
            self.teardown(id);
        }
    }
}

impl<I, M> ServerShared<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    /// Executes one of the nonblocking, connection-agnostic requests.
    /// Blocking ops, handshakes and connection-scoped requests never
    /// reach here.
    fn apply_simple(&self, req: Req<I, M>) -> Resp<I, M> {
        match req {
            Req::Declare(id) => {
                self.inner.declare(id);
                Resp::Unit
            }
            Req::Seal => {
                self.inner.seal();
                Resp::Unit
            }
            Req::Abort => {
                self.inner.abort();
                Resp::Unit
            }
            Req::IsAborted => Resp::Bool(self.inner.is_aborted()),
            Req::PeerStateOf(id) => Resp::State(self.inner.peer_state(&id)),
            Req::Peers => Resp::PeerList(self.inner.peers()),
            Req::Activity => Resp::Counter(self.inner.activity()),
            Req::Reseed(seed) => {
                self.inner.reseed(seed);
                Resp::Unit
            }
            Req::EnsurePeer(id) => match self.inner.ensure_peer(&id) {
                Ok(()) => Resp::Unit,
                Err(e) => Resp::ChanErr(e),
            },
            Req::HasPendingFrom { to, from } => Resp::Bool(self.inner.has_pending_from(&to, &from)),
            Req::SetFaultPlan(plan) => {
                self.inner.set_fault_plan(plan, clone_of::<M>);
                Resp::Unit
            }
            Req::ClearFaultPlan => {
                self.inner.clear_fault_plan();
                Resp::Unit
            }
            Req::GetFaultPlan => Resp::Plan(self.inner.fault_plan()),
            Req::FaultLog => Resp::Log(self.inner.fault_log()),
            Req::TakeFaultLog => Resp::Log(self.inner.take_fault_log()),
            Req::TryRecv { me, from } => match self.inner.try_recv(&me, &from) {
                Ok(msg) => Resp::Msg(msg),
                Err(e) => Resp::ChanErr(e),
            },
            // Routed before apply_simple; answering Unit would be a
            // protocol lie, so make the bug loud.
            Req::Bind(_)
            | Req::Activate(_)
            | Req::Finish(_)
            | Req::Subscribe
            | Req::SubscribeFrom { .. }
            | Req::Send { .. }
            | Req::Select { .. }
            | Req::HelloNew
            | Req::HelloResume(_)
            | Req::Heartbeat { .. } => unreachable!("request routed before apply_simple"),
        }
    }

    /// Fallback for inner transports without submission support: one
    /// counted worker thread per blocking operation.
    fn spawn_worker(self: &Arc<Self>, job: impl FnOnce(&Arc<Self>) + Send + 'static) {
        let shared = Arc::clone(self);
        shared.workers.fetch_add(1, Ordering::SeqCst);
        thread::spawn(move || {
            job(&shared);
            shared.workers.fetch_sub(1, Ordering::SeqCst);
        });
    }

    /// Queues one `(req_id, resp)` frame on a connection's output
    /// buffer; the reactor flushes it on its next wakeup.
    fn respond(&self, tx: &ConnTx, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        tx.push(&payload);
    }

    /// Records `resp` in the session's replay cache, then queues it on
    /// the currently attached connection, if any. A severed session
    /// simply accumulates answers for the eventual replay.
    fn session_respond(&self, sess: &Session<I>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut st = sess.state.lock();
        st.in_flight.remove(&req_id);
        st.done.insert(req_id, payload.clone());
        write_to_session(&mut st, &payload);
    }

    /// Writes a response without caching it (heartbeats: never
    /// replayed, pruned nowhere).
    fn session_write_uncached(&self, sess: &Session<I>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut st = sess.state.lock();
        write_to_session(&mut st, &payload);
    }

    /// The inner transport's fault observer: streams the record to
    /// every subscriber (legacy and sequenced), then *enacts*
    /// connection faults by severing the session carrying the faulted
    /// edge. Runs on whatever thread injected the fault — the reactor
    /// itself for spoke-submitted operations — so it only touches the
    /// cross-thread state ([`ConnTx`], session state, raw stream
    /// handles), never the reactor's own maps.
    fn handle_fault(&self, rec: &FaultRecord<I>) {
        // Legacy push: unsequenced, best-effort, to subscribed
        // connections that never opened a session.
        let legacy: Vec<Arc<ConnTx>> = self
            .conns
            .lock()
            .iter()
            .filter(|c| c.subscribed.load(Ordering::SeqCst))
            .map(|c| Arc::clone(&c.tx))
            .collect();
        if !legacy.is_empty() {
            let mut payload = Vec::new();
            EVENT_REQ_ID.encode(&mut payload);
            Event::Fault(rec.clone()).encode(&mut payload);
            for tx in legacy {
                tx.push(&payload);
            }
        }
        // Sequenced push per subscribed session, buffered for gapless
        // resume replay. Sequencing and queueing happen under the state
        // lock so concurrent faults cannot reorder on the wire.
        let sessions: Vec<Arc<Session<I>>> = self.sessions.lock().values().cloned().collect();
        for sess in &sessions {
            let mut st = sess.state.lock();
            if !st.subscribed {
                continue;
            }
            st.next_event_seq += 1;
            let seq = st.next_event_seq;
            let mut payload = Vec::new();
            EVENT_REQ_ID.encode(&mut payload);
            Event::SeqFault {
                seq,
                record: rec.clone(),
            }
            .encode(&mut payload);
            st.events.push_back((seq, StreamItem::Fault(rec.clone())));
            if st.events.len() > EVENT_BUFFER_CAP {
                st.events.pop_front();
            }
            if !st.event_resync {
                write_to_session(&mut st, &payload);
            }
        }
        // Enact connection faults: tear down the connection of the
        // session animating the faulted edge (sender side first; a
        // hub-local sender severs the remote receiver instead). The
        // *decision* already lives in the inner transport's log, so the
        // chaos schedule replays identically on any transport — only
        // the enactment is connection-specific.
        if matches!(rec.kind, FaultKind::Sever | FaultKind::Partition) {
            let target = sessions
                .iter()
                .find(|s| s.state.lock().bound.contains(&rec.from))
                .or_else(|| {
                    sessions
                        .iter()
                        .find(|s| s.state.lock().bound.contains(&rec.to))
                });
            if let Some(sess) = target {
                let mut st = sess.state.lock();
                if rec.kind == FaultKind::Partition {
                    let dur = self
                        .inner
                        .fault_plan()
                        .map(|p| p.partition_duration())
                        .unwrap_or_default();
                    st.partitioned_until = Some(Instant::now() + dur);
                }
                st.last_seen = Instant::now();
                st.writer = None;
                if let Some(stream) = st.stream.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// The inner transport's rendezvous observer: streams the record,
    /// sequenced, to every subscribed session, buffered alongside
    /// faults for gapless resume replay. Runs on the delivering thread
    /// *under the receiving endpoint's lock*, which is exactly what
    /// guarantees the stream order matches pickup order; it must
    /// therefore never call back into the inner transport.
    fn handle_rendezvous(&self, rec: &RendezvousRecord<I>) {
        let sessions: Vec<Arc<Session<I>>> = self.sessions.lock().values().cloned().collect();
        for sess in &sessions {
            let mut st = sess.state.lock();
            if !st.subscribed {
                continue;
            }
            st.next_event_seq += 1;
            let seq = st.next_event_seq;
            let mut payload = Vec::new();
            EVENT_REQ_ID.encode(&mut payload);
            Event::SeqRendezvous {
                seq,
                record: rec.clone(),
            }
            .encode(&mut payload);
            st.events
                .push_back((seq, StreamItem::Rendezvous(rec.clone())));
            if st.events.len() > EVENT_BUFFER_CAP {
                st.events.pop_front();
            }
            if !st.event_resync {
                write_to_session(&mut st, &payload);
            }
        }
    }

    /// Expires sessions whose lease lapsed while severed: their bound
    /// ids are finished — the pre-session crashed-peer semantics —
    /// and the expiry is surfaced to hub-local session observers.
    fn sweep_expired(&self) {
        let now = Instant::now();
        let expired: Vec<Arc<Session<I>>> = {
            let mut sessions = self.sessions.lock();
            let ids: Vec<u64> = sessions
                .iter()
                .filter(|(_, s)| {
                    let st = s.state.lock();
                    st.writer.is_none()
                        && st.partitioned_until.is_none_or(|t| t <= now)
                        && now.duration_since(st.last_seen) > self.lease
                })
                .map(|(id, _)| *id)
                .collect();
            ids.iter().filter_map(|id| sessions.remove(id)).collect()
        };
        for sess in expired {
            let bound = sess.state.lock().bound.clone();
            for id in bound {
                // Event before effect: anyone unblocked by the finish
                // (Terminated errors surfacing) must already be able to
                // observe the expiry on the session-event plane.
                self.inner
                    .note_session_event(&SessionEvent::LeaseExpired(id.clone()));
                self.inner.finish(id);
            }
        }
    }
}

/// Queues `payload` on the session's attached connection, if any.
fn write_to_session<I>(st: &mut SessionState<I>, payload: &[u8]) {
    if let Some(tx) = st.writer.as_ref() {
        tx.push(payload);
    }
}

fn clone_of<M: Clone>(m: &M) -> M {
    m.clone()
}

/// The label-less default labeler installed at bind.
fn no_label<M>(_: &M) -> Option<String> {
    None
}
