//! The transport hub: serves an in-process [`Transport`] over TCP.
//!
//! A [`TransportServer`] owns no rendezvous logic of its own — it wraps
//! an *inner* transport (normally a seeded
//! [`ShardedTransport`](script_chan::ShardedTransport)) and executes
//! decoded [`Req`]s against it, one accept loop per endpoint address.
//! All semantics — matching, selection fairness, lifecycle, and in
//! particular **fault injection at the sending edge** — happen in the
//! inner transport exactly as they do in-process, which is what makes a
//! chaos seed replay the identical fault log whether the participants
//! are threads or processes.
//!
//! Blocking operations (`Send`, `Select`) run on a worker thread per
//! request so one blocked rendezvous never stalls the connection;
//! everything else executes inline on the connection's reader thread.
//! Responses are written under a per-connection writer lock, so
//! concurrent completions interleave at frame granularity.
//!
//! **Peer loss.** Each connection accumulates the ids it *bound*
//! (explicitly via [`Req::Bind`], or implicitly by activating an id).
//! When the connection drops — process death, network partition, or
//! graceful close — the server finishes every bound id on the inner
//! transport, so remaining participants observe the standard
//! [`Terminated`](script_chan::ChanError::Terminated) error for a
//! crashed peer, after draining anything it already deposited.

use std::fmt;
use std::hash::Hash;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;

use parking_lot::Mutex;

use script_chan::{FaultRecord, Transport};

use crate::frame::{read_frame, write_frame};
use crate::proto::{deadline_of, Event, Req, Resp, EVENT_REQ_ID};
use crate::wire::{Reader, Wire};

/// One registered client connection.
struct ConnEntry {
    id: u64,
    /// Kept to force-close the socket on shutdown.
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    subscribed: Arc<AtomicBool>,
}

struct ServerShared<I, M> {
    inner: Arc<dyn Transport<I, M>>,
    conns: Mutex<Vec<ConnEntry>>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
}

/// A TCP hub exposing an inner [`Transport`] to remote
/// [`SocketTransport`](crate::SocketTransport) clients (see the module
/// docs).
pub struct TransportServer<I, M> {
    shared: Arc<ServerShared<I, M>>,
    addr: SocketAddr,
}

impl<I, M> fmt::Debug for TransportServer<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransportServer")
            .field("addr", &self.addr)
            .field("connections", &self.shared.conns.lock().len())
            .finish()
    }
}

impl<I, M> TransportServer<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `inner`. The hub registers itself as `inner`'s fault
    /// observer to stream fault events to subscribed clients.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(addr: A, inner: Arc<dyn Transport<I, M>>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            inner,
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
        });
        // Weak: the inner transport must not keep the hub alive through
        // its own observer slot.
        let weak: Weak<ServerShared<I, M>> = Arc::downgrade(&shared);
        shared.inner.set_fault_observer(Arc::new(move |rec| {
            if let Some(sh) = weak.upgrade() {
                sh.broadcast_event(rec);
            }
        }));
        let accept_shared = Arc::clone(&shared);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    accept_shared.spawn_conn(stream);
                }
            }
        });
        Ok(Self { shared, addr })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The transport the hub serves — hub-local participants use it
    /// directly, with zero socket hops.
    pub fn inner(&self) -> Arc<dyn Transport<I, M>> {
        Arc::clone(&self.shared.inner)
    }

    /// Stops accepting and severs every client connection. Each severed
    /// connection's bound participants are finished on the inner
    /// transport, exactly as if their processes had died.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; it re-checks the flag.
        let _ = TcpStream::connect(self.addr);
        for conn in self.shared.conns.lock().iter() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

impl<I, M> Drop for TransportServer<I, M> {
    fn drop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        for conn in self.shared.conns.lock().iter() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

impl<I, M> ServerShared<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    fn spawn_conn(self: &Arc<Self>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let (reader, keeper, writer) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(a), Ok(b)) => (stream, a, b),
            _ => return,
        };
        let writer = Arc::new(Mutex::new(writer));
        let subscribed = Arc::new(AtomicBool::new(false));
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().push(ConnEntry {
            id,
            stream: keeper,
            writer: Arc::clone(&writer),
            subscribed: Arc::clone(&subscribed),
        });
        let shared = Arc::clone(self);
        thread::spawn(move || {
            shared.serve_conn(reader, writer, subscribed);
            shared.conns.lock().retain(|c| c.id != id);
        });
    }

    /// The connection's reader loop: decodes requests, dispatches them,
    /// and on exit finishes every id the connection bound.
    fn serve_conn(
        self: &Arc<Self>,
        mut stream: TcpStream,
        writer: Arc<Mutex<TcpStream>>,
        subscribed: Arc<AtomicBool>,
    ) {
        let mut bound: Vec<I> = Vec::new();
        // Clean close, truncated frame, reset: all peer loss — exit.
        while let Ok(Some(frame)) = read_frame(&mut stream) {
            let mut r = Reader::new(&frame);
            let (Ok(req_id), Ok(req)) = (u64::decode(&mut r), Req::<I, M>::decode(&mut r)) else {
                break; // protocol corruption: sever the connection
            };
            match req {
                Req::Bind(id) => {
                    if !bound.contains(&id) {
                        bound.push(id);
                    }
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Declare(id) => {
                    self.inner.declare(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Activate(id) => {
                    // The connection that animates a participant is the
                    // one whose death must terminate it: activate binds.
                    if !bound.contains(&id) {
                        bound.push(id.clone());
                    }
                    self.inner.activate(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Finish(id) => {
                    bound.retain(|b| b != &id);
                    self.inner.finish(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Seal => {
                    self.inner.seal();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Abort => {
                    self.inner.abort();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::IsAborted => {
                    self.respond(&writer, req_id, &Resp::Bool(self.inner.is_aborted()));
                }
                Req::PeerStateOf(id) => {
                    self.respond(&writer, req_id, &Resp::State(self.inner.peer_state(&id)));
                }
                Req::Peers => {
                    self.respond(&writer, req_id, &Resp::PeerList(self.inner.peers()));
                }
                Req::Activity => {
                    self.respond(&writer, req_id, &Resp::Counter(self.inner.activity()));
                }
                Req::Reseed(seed) => {
                    self.inner.reseed(seed);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::EnsurePeer(id) => {
                    let resp = match self.inner.ensure_peer(&id) {
                        Ok(()) => Resp::Unit,
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.respond(&writer, req_id, &resp);
                }
                Req::HasPendingFrom { to, from } => {
                    self.respond(
                        &writer,
                        req_id,
                        &Resp::Bool(self.inner.has_pending_from(&to, &from)),
                    );
                }
                Req::SetFaultPlan(plan) => {
                    self.inner.set_fault_plan(plan, clone_of::<M>);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::ClearFaultPlan => {
                    self.inner.clear_fault_plan();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::GetFaultPlan => {
                    self.respond(&writer, req_id, &Resp::Plan(self.inner.fault_plan()));
                }
                Req::FaultLog => {
                    self.respond(&writer, req_id, &Resp::Log(self.inner.fault_log()));
                }
                Req::TakeFaultLog => {
                    self.respond(&writer, req_id, &Resp::Log(self.inner.take_fault_log()));
                }
                Req::Subscribe => {
                    subscribed.store(true, Ordering::SeqCst);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::TryRecv { me, from } => {
                    let resp = match self.inner.try_recv(&me, &from) {
                        Ok(msg) => Resp::Msg(msg),
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.respond(&writer, req_id, &resp);
                }
                // Blocking operations get a worker thread each, so one
                // parked rendezvous never blocks this reader loop.
                Req::Send {
                    from,
                    to,
                    msg,
                    timeout_ms,
                } => {
                    let shared = Arc::clone(self);
                    let writer = Arc::clone(&writer);
                    thread::spawn(move || {
                        let resp = match shared.inner.send(&from, &to, msg, deadline_of(timeout_ms))
                        {
                            Ok(()) => Resp::Unit,
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.respond(&writer, req_id, &resp);
                    });
                }
                Req::Select {
                    me,
                    arms,
                    timeout_ms,
                } => {
                    let shared = Arc::clone(self);
                    let writer = Arc::clone(&writer);
                    thread::spawn(move || {
                        let resp = match shared.inner.select(&me, arms, deadline_of(timeout_ms)) {
                            Ok(outcome) => Resp::Selected(outcome),
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.respond(&writer, req_id, &resp);
                    });
                }
            }
        }
        // The connection is gone: every participant it animated is too.
        for id in bound {
            self.inner.finish(id);
        }
    }

    /// Writes one `(req_id, resp)` frame; errors mean the connection is
    /// dying and are surfaced by its reader loop, not here.
    fn respond(&self, writer: &Mutex<TcpStream>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut w = writer.lock();
        let _ = write_frame(&mut *w, &payload);
    }

    /// Pushes a fault event to every subscribed connection.
    fn broadcast_event(&self, rec: &FaultRecord<I>) {
        let targets: Vec<Arc<Mutex<TcpStream>>> = self
            .conns
            .lock()
            .iter()
            .filter(|c| c.subscribed.load(Ordering::SeqCst))
            .map(|c| Arc::clone(&c.writer))
            .collect();
        if targets.is_empty() {
            return;
        }
        let mut payload = Vec::new();
        EVENT_REQ_ID.encode(&mut payload);
        Event::Fault(rec.clone()).encode(&mut payload);
        for writer in targets {
            let mut w = writer.lock();
            let _ = write_frame(&mut *w, &payload);
        }
    }
}

fn clone_of<M: Clone>(m: &M) -> M {
    m.clone()
}
