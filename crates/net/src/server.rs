//! The transport hub: serves an in-process [`Transport`] over TCP.
//!
//! A [`TransportServer`] owns no rendezvous logic of its own — it wraps
//! an *inner* transport (normally a seeded
//! [`ShardedTransport`](script_chan::ShardedTransport)) and executes
//! decoded [`Req`]s against it, one accept loop per endpoint address.
//! All semantics — matching, selection fairness, lifecycle, and in
//! particular **fault injection at the sending edge** — happen in the
//! inner transport exactly as they do in-process, which is what makes a
//! chaos seed replay the identical fault log whether the participants
//! are threads or processes.
//!
//! Blocking operations (`Send`, `Select`) run on a worker thread per
//! request so one blocked rendezvous never stalls the connection;
//! everything else executes inline on the connection's reader thread.
//! Responses are written under a per-connection writer lock, so
//! concurrent completions interleave at frame granularity.
//!
//! **Sessions.** A spoke that opens with [`Req::HelloNew`] gets a
//! session id and a lease. The session — its bound ids, its replay
//! answer cache, its sequenced event buffer — outlives any one TCP
//! connection: when the connection drops, the hub parks the session
//! and keeps every bound performance alive until the lease lapses. A
//! reconnect presenting [`Req::HelloResume`] re-attaches, answers
//! replayed requests from the cache (a request the hub already applied
//! is **never** applied twice; its recorded answer is rewritten
//! verbatim), and resumes the sequenced event stream from wherever the
//! spoke left off. [`Req::Heartbeat`] renews the lease and prunes the
//! cache; only lease expiry degrades to crashed-peer semantics: the
//! sweeper finishes every bound id, so remaining participants observe
//! the standard [`Terminated`](script_chan::ChanError::Terminated)
//! error exactly as before sessions existed.
//!
//! **Connection faults.** The hub registers itself as the inner
//! transport's fault observer. Chaos-injected
//! [`Sever`](script_chan::FaultKind::Sever) and
//! [`Partition`](script_chan::FaultKind::Partition) records — decided
//! deterministically at the sending edge like every other fault class —
//! are *enacted* here: the session carrying the faulted edge has its
//! connection torn down, and a partition additionally embargoes resume
//! attempts until the configured duration elapses. Because decision and
//! log live in the inner transport, the fault log still replays
//! bit-for-bit on any transport; only the enactment is hub-specific.
//!
//! **Peer loss (legacy connections).** A connection that never opens a
//! session keeps the pre-session contract: the ids it bound are
//! finished the moment the connection drops.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use script_chan::{FaultKind, FaultRecord, SessionEvent, Transport};

use crate::frame::{read_frame, write_frame};
use crate::proto::{deadline_of, Event, Req, Resp, EVENT_REQ_ID};
use crate::wire::{Reader, Wire};

/// Default session lease: how long a severed session's bound
/// performances stay alive awaiting a resume.
pub const DEFAULT_LEASE: Duration = Duration::from_secs(1);

/// Cap on buffered sequenced events retained per session for resume
/// replay; beyond it the oldest events are dropped (a resume that far
/// behind would gap anyway).
const EVENT_BUFFER_CAP: usize = 8192;

/// One registered client connection.
struct ConnEntry {
    id: u64,
    /// Kept to force-close the socket on shutdown.
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    /// Legacy (non-session) event subscription flag.
    subscribed: Arc<AtomicBool>,
}

/// One spoke session: state that must survive connection loss.
struct Session<I> {
    id: u64,
    state: Mutex<SessionState<I>>,
}

struct SessionState<I> {
    /// Ids this session animates; finished only at lease expiry or hub
    /// shutdown, never on mere connection loss.
    bound: Vec<I>,
    /// Whether the spoke subscribed to the sequenced event stream.
    subscribed: bool,
    /// Writer of the currently attached connection; `None` while
    /// severed (answers are cached instead of written).
    writer: Option<Arc<Mutex<TcpStream>>>,
    /// Raw stream of the attached connection, kept to force-sever it
    /// when a chaos fault or a stale-resume demands it.
    stream: Option<TcpStream>,
    /// Bumped on every attach so a stale reader's exit cannot detach a
    /// newer connection.
    epoch: u64,
    /// Lease clock: any traffic (or a rejected-but-alive resume
    /// attempt) refreshes it.
    last_seen: Instant,
    /// While set in the future, resume attempts are refused with
    /// [`Resp::Partitioned`].
    partitioned_until: Option<Instant>,
    /// Replay answer cache: request id → fully encoded response frame.
    /// A replayed request is answered from here, never re-applied.
    done: HashMap<u64, Vec<u8>>,
    /// Blocking requests currently running on a worker thread; a
    /// replayed duplicate is ignored rather than double-spawned.
    in_flight: HashSet<u64>,
    /// Sequence number of the last event pushed to this session.
    next_event_seq: u64,
    /// Buffered `(seq, frame)` events for gapless resume replay.
    events: VecDeque<(u64, Vec<u8>)>,
}

struct ServerShared<I, M> {
    inner: Arc<dyn Transport<I, M>>,
    conns: Mutex<Vec<ConnEntry>>,
    sessions: Mutex<HashMap<u64, Arc<Session<I>>>>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    next_session: AtomicU64,
    lease: Duration,
}

/// A TCP hub exposing an inner [`Transport`] to remote
/// [`SocketTransport`](crate::SocketTransport) clients (see the module
/// docs).
pub struct TransportServer<I, M> {
    shared: Arc<ServerShared<I, M>>,
    addr: SocketAddr,
}

impl<I, M> fmt::Debug for TransportServer<I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransportServer")
            .field("addr", &self.addr)
            .field("connections", &self.shared.conns.lock().len())
            .field("sessions", &self.shared.sessions.lock().len())
            .finish()
    }
}

impl<I, M> TransportServer<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `inner` with the [`DEFAULT_LEASE`]. The hub registers
    /// itself as `inner`'s fault observer to stream fault events to
    /// subscribed clients and to enact connection faults.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(addr: A, inner: Arc<dyn Transport<I, M>>) -> io::Result<Self> {
        Self::bind_with_lease(addr, inner, DEFAULT_LEASE)
    }

    /// [`TransportServer::bind`] with an explicit session lease: how
    /// long a severed session's bound performances survive awaiting a
    /// resume before degrading to crashed-peer semantics.
    ///
    /// # Errors
    ///
    /// Any socket-binding error.
    pub fn bind_with_lease<A: ToSocketAddrs>(
        addr: A,
        inner: Arc<dyn Transport<I, M>>,
        lease: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            inner,
            conns: Mutex::new(Vec::new()),
            sessions: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            lease,
        });
        // Weak: the inner transport must not keep the hub alive through
        // its own observer slot.
        let weak: Weak<ServerShared<I, M>> = Arc::downgrade(&shared);
        shared.inner.set_fault_observer(Arc::new(move |rec| {
            if let Some(sh) = weak.upgrade() {
                sh.handle_fault(rec);
            }
        }));
        let accept_shared = Arc::clone(&shared);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    accept_shared.spawn_conn(stream);
                }
            }
        });
        // Lease sweeper: holds only a weak reference so a dropped hub's
        // sweeper exits on its next tick.
        let sweep: Weak<ServerShared<I, M>> = Arc::downgrade(&shared);
        let tick = (lease / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        thread::spawn(move || loop {
            thread::sleep(tick);
            let Some(sh) = sweep.upgrade() else { return };
            if sh.shutdown.load(Ordering::SeqCst) {
                return;
            }
            sh.sweep_expired();
        });
        Ok(Self { shared, addr })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session lease this hub grants.
    pub fn lease(&self) -> Duration {
        self.shared.lease
    }

    /// The transport the hub serves — hub-local participants use it
    /// directly, with zero socket hops.
    pub fn inner(&self) -> Arc<dyn Transport<I, M>> {
        Arc::clone(&self.shared.inner)
    }

    /// Stops accepting, severs every client connection and discards
    /// every session, finishing its bound participants on the inner
    /// transport exactly as if their processes had died. Idempotent:
    /// repeated calls (or a close racing a drop) are no-ops.
    pub fn shutdown(&self) {
        self.shared.shutdown_hub(self.addr);
    }
}

impl<I, M> Drop for TransportServer<I, M> {
    fn drop(&mut self) {
        self.shared.shutdown_hub(self.addr);
    }
}

impl<I, M> ServerShared<I, M> {
    fn lease_ms(&self) -> u64 {
        self.lease.as_millis().min(u64::MAX as u128) as u64
    }

    fn shutdown_hub(&self, addr: SocketAddr) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; it re-checks the flag.
        let _ = TcpStream::connect(addr);
        for conn in self.conns.lock().iter() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Hub death is final for every session: finish the bound ids so
        // hub-local participants observe crashed peers, not a hang.
        let sessions: Vec<Arc<Session<I>>> = self.sessions.lock().drain().map(|(_, s)| s).collect();
        for sess in sessions {
            let bound = {
                let mut st = sess.state.lock();
                if let Some(stream) = st.stream.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                st.writer = None;
                std::mem::take(&mut st.bound)
            };
            for id in bound {
                self.inner.finish(id);
            }
        }
    }
}

impl<I, M> ServerShared<I, M>
where
    I: Wire + Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static,
    M: Wire + Clone + Send + Sync + 'static,
{
    fn spawn_conn(self: &Arc<Self>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let (reader, keeper, writer) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(a), Ok(b)) => (stream, a, b),
            _ => return,
        };
        let writer = Arc::new(Mutex::new(writer));
        let subscribed = Arc::new(AtomicBool::new(false));
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().push(ConnEntry {
            id,
            stream: keeper,
            writer: Arc::clone(&writer),
            subscribed: Arc::clone(&subscribed),
        });
        let shared = Arc::clone(self);
        thread::spawn(move || {
            shared.serve_conn(reader, writer, subscribed);
            shared.conns.lock().retain(|c| c.id != id);
        });
    }

    /// Reads the connection's first frame and routes it: a session
    /// handshake attaches (or creates) a session; anything else serves
    /// the legacy connection-scoped contract.
    fn serve_conn(
        self: &Arc<Self>,
        mut stream: TcpStream,
        writer: Arc<Mutex<TcpStream>>,
        subscribed: Arc<AtomicBool>,
    ) {
        let Ok(Some(frame)) = read_frame(&mut stream) else {
            return;
        };
        let mut r = Reader::new(&frame);
        let (Ok(req_id), Ok(req)) = (u64::decode(&mut r), Req::<I, M>::decode(&mut r)) else {
            return; // protocol corruption: sever the connection
        };
        match req {
            Req::HelloNew => {
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let sid = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                let sess = Arc::new(Session {
                    id: sid,
                    state: Mutex::new(SessionState {
                        bound: Vec::new(),
                        subscribed: false,
                        writer: Some(Arc::clone(&writer)),
                        stream: stream.try_clone().ok(),
                        epoch: 1,
                        last_seen: Instant::now(),
                        partitioned_until: None,
                        done: HashMap::new(),
                        in_flight: HashSet::new(),
                        next_event_seq: 0,
                        events: VecDeque::new(),
                    }),
                });
                self.sessions.lock().insert(sid, Arc::clone(&sess));
                self.session_respond(
                    &sess,
                    req_id,
                    &Resp::Session {
                        session: sid,
                        lease_ms: self.lease_ms(),
                    },
                );
                self.serve_session(stream, &sess, 1);
            }
            Req::HelloResume(sid) => {
                let sess = self.sessions.lock().get(&sid).cloned();
                let Some(sess) = sess else {
                    // Expired (or never existed): the spoke must degrade
                    // to crashed-peer semantics.
                    self.respond(&writer, req_id, &Resp::SessionExpired);
                    return;
                };
                let epoch = {
                    let mut st = sess.state.lock();
                    let now = Instant::now();
                    if let Some(until) = st.partitioned_until {
                        if until > now {
                            // The spoke is provably alive — keep its
                            // lease warm while the partition embargo
                            // holds, but refuse the attach.
                            st.last_seen = now;
                            let remaining_ms = (until - now).as_millis().min(u64::MAX as u128);
                            drop(st);
                            self.respond(
                                &writer,
                                req_id,
                                &Resp::Partitioned {
                                    remaining_ms: remaining_ms as u64,
                                },
                            );
                            return;
                        }
                        st.partitioned_until = None;
                    }
                    // A stale connection still attached loses to the
                    // newcomer; its reader observes the bumped epoch.
                    if let Some(old) = st.stream.take() {
                        let _ = old.shutdown(Shutdown::Both);
                    }
                    st.epoch += 1;
                    st.writer = Some(Arc::clone(&writer));
                    st.stream = stream.try_clone().ok();
                    st.last_seen = now;
                    st.epoch
                };
                self.session_respond(
                    &sess,
                    req_id,
                    &Resp::Session {
                        session: sid,
                        lease_ms: self.lease_ms(),
                    },
                );
                let bound = sess.state.lock().bound.clone();
                for id in bound {
                    self.inner
                        .note_session_event(&SessionEvent::PeerResumed(id));
                }
                self.serve_session(stream, &sess, epoch);
            }
            first => self.serve_legacy(stream, writer, subscribed, Some((req_id, first))),
        }
    }

    /// The session-mode reader loop: every request is answered through
    /// the replay cache (idempotent by request id), blocking operations
    /// go to workers that respond to whatever connection is attached
    /// when they complete, and exit detaches — never finishes — the
    /// session.
    fn serve_session(self: &Arc<Self>, mut stream: TcpStream, sess: &Arc<Session<I>>, epoch: u64) {
        while let Ok(Some(frame)) = read_frame(&mut stream) {
            let mut r = Reader::new(&frame);
            let (Ok(req_id), Ok(req)) = (u64::decode(&mut r), Req::<I, M>::decode(&mut r)) else {
                break; // protocol corruption: sever the connection
            };
            {
                let mut st = sess.state.lock();
                st.last_seen = Instant::now();
                if let Some(cached) = st.done.get(&req_id) {
                    // Replayed and already applied: rewrite the recorded
                    // answer verbatim; never apply twice.
                    let payload = cached.clone();
                    write_to_session(&mut st, &payload);
                    continue;
                }
                if st.in_flight.contains(&req_id) {
                    // Replayed while a worker still computes the answer;
                    // it will respond to the current connection.
                    continue;
                }
            }
            match req {
                // A second handshake mid-session is protocol corruption.
                Req::HelloNew | Req::HelloResume(_) => break,
                Req::Heartbeat { acked } => {
                    {
                        let mut st = sess.state.lock();
                        st.done.retain(|k, _| *k >= acked);
                    }
                    // Uncached: heartbeats are never replayed, and the
                    // answer doubles as the hub → spoke lease renewal.
                    self.session_write_uncached(
                        sess,
                        req_id,
                        &Resp::Session {
                            session: sess.id,
                            lease_ms: self.lease_ms(),
                        },
                    );
                }
                Req::SubscribeFrom { seq } => {
                    // Atomically: mark subscribed, replay the buffered
                    // tail, ack — all under the state lock, so no event
                    // broadcast can interleave and break gaplessness.
                    let mut st = sess.state.lock();
                    st.subscribed = true;
                    let tail: Vec<Vec<u8>> = st
                        .events
                        .iter()
                        .filter(|(s, _)| *s > seq)
                        .map(|(_, p)| p.clone())
                        .collect();
                    for payload in &tail {
                        write_to_session(&mut st, payload);
                    }
                    let mut payload = Vec::new();
                    req_id.encode(&mut payload);
                    Resp::<I, M>::Unit.encode(&mut payload);
                    write_to_session(&mut st, &payload);
                }
                Req::Subscribe => {
                    let mut st = sess.state.lock();
                    st.subscribed = true;
                    drop(st);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Bind(id) => {
                    let mut st = sess.state.lock();
                    if !st.bound.contains(&id) {
                        st.bound.push(id);
                    }
                    drop(st);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Activate(id) => {
                    {
                        let mut st = sess.state.lock();
                        if !st.bound.contains(&id) {
                            st.bound.push(id.clone());
                        }
                    }
                    self.inner.activate(id);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Finish(id) => {
                    sess.state.lock().bound.retain(|b| b != &id);
                    self.inner.finish(id);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Declare(id) => {
                    self.inner.declare(id);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Seal => {
                    self.inner.seal();
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::Abort => {
                    self.inner.abort();
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::IsAborted => {
                    let resp = Resp::Bool(self.inner.is_aborted());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::PeerStateOf(id) => {
                    let resp = Resp::State(self.inner.peer_state(&id));
                    self.session_respond(sess, req_id, &resp);
                }
                Req::Peers => {
                    let resp = Resp::PeerList(self.inner.peers());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::Activity => {
                    let resp = Resp::Counter(self.inner.activity());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::Reseed(seed) => {
                    self.inner.reseed(seed);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::EnsurePeer(id) => {
                    let resp = match self.inner.ensure_peer(&id) {
                        Ok(()) => Resp::Unit,
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.session_respond(sess, req_id, &resp);
                }
                Req::HasPendingFrom { to, from } => {
                    let resp = Resp::Bool(self.inner.has_pending_from(&to, &from));
                    self.session_respond(sess, req_id, &resp);
                }
                Req::SetFaultPlan(plan) => {
                    self.inner.set_fault_plan(plan, clone_of::<M>);
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::ClearFaultPlan => {
                    self.inner.clear_fault_plan();
                    self.session_respond(sess, req_id, &Resp::Unit);
                }
                Req::GetFaultPlan => {
                    let resp = Resp::Plan(self.inner.fault_plan());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::FaultLog => {
                    let resp = Resp::Log(self.inner.fault_log());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::TakeFaultLog => {
                    let resp = Resp::Log(self.inner.take_fault_log());
                    self.session_respond(sess, req_id, &resp);
                }
                Req::TryRecv { me, from } => {
                    let resp = match self.inner.try_recv(&me, &from) {
                        Ok(msg) => Resp::Msg(msg),
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.session_respond(sess, req_id, &resp);
                }
                // Blocking operations get a worker thread each, so one
                // parked rendezvous never blocks this reader loop. The
                // worker answers whatever connection is attached when
                // the rendezvous completes — possibly none, in which
                // case the cached answer waits for the replay.
                Req::Send {
                    from,
                    to,
                    msg,
                    timeout_ms,
                } => {
                    sess.state.lock().in_flight.insert(req_id);
                    let shared = Arc::clone(self);
                    let sess = Arc::clone(sess);
                    thread::spawn(move || {
                        let resp = match shared.inner.send(&from, &to, msg, deadline_of(timeout_ms))
                        {
                            Ok(()) => Resp::Unit,
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.session_respond(&sess, req_id, &resp);
                    });
                }
                Req::Select {
                    me,
                    arms,
                    timeout_ms,
                } => {
                    sess.state.lock().in_flight.insert(req_id);
                    let shared = Arc::clone(self);
                    let sess = Arc::clone(sess);
                    thread::spawn(move || {
                        let resp = match shared.inner.select(&me, arms, deadline_of(timeout_ms)) {
                            Ok(outcome) => Resp::Selected(outcome),
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.session_respond(&sess, req_id, &resp);
                    });
                }
            }
        }
        // Detach, not death: the session (and its bound performances)
        // stays alive until the lease expires or a resume re-attaches.
        let mut st = sess.state.lock();
        if st.epoch == epoch {
            st.writer = None;
            st.stream = None;
            st.last_seen = Instant::now();
            let bound = st.bound.clone();
            drop(st);
            if !self.shutdown.load(Ordering::SeqCst) {
                for id in bound {
                    self.inner
                        .note_session_event(&SessionEvent::PeerDisconnected(id));
                }
            }
        }
    }

    /// The pre-session reader loop, byte-for-byte today's contract: the
    /// connection's bound ids are finished the moment it drops.
    fn serve_legacy(
        self: &Arc<Self>,
        mut stream: TcpStream,
        writer: Arc<Mutex<TcpStream>>,
        subscribed: Arc<AtomicBool>,
        first: Option<(u64, Req<I, M>)>,
    ) {
        let mut bound: Vec<I> = Vec::new();
        let mut pending = first;
        // Clean close, truncated frame, reset: all peer loss — exit.
        loop {
            let (req_id, req) = match pending.take() {
                Some(x) => x,
                None => {
                    let Ok(Some(frame)) = read_frame(&mut stream) else {
                        break;
                    };
                    let mut r = Reader::new(&frame);
                    let (Ok(req_id), Ok(req)) = (u64::decode(&mut r), Req::<I, M>::decode(&mut r))
                    else {
                        break; // protocol corruption: sever the connection
                    };
                    (req_id, req)
                }
            };
            match req {
                // A session handshake is only legal as the very first
                // frame of a connection.
                Req::HelloNew | Req::HelloResume(_) => break,
                Req::Heartbeat { .. } => {
                    // No session to renew: answer the null session so a
                    // confused spoke can tell.
                    self.respond(
                        &writer,
                        req_id,
                        &Resp::Session {
                            session: 0,
                            lease_ms: 0,
                        },
                    );
                }
                Req::SubscribeFrom { .. } => {
                    // No event buffer on a legacy connection: subscribe
                    // from now.
                    subscribed.store(true, Ordering::SeqCst);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Bind(id) => {
                    if !bound.contains(&id) {
                        bound.push(id);
                    }
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Declare(id) => {
                    self.inner.declare(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Activate(id) => {
                    // The connection that animates a participant is the
                    // one whose death must terminate it: activate binds.
                    if !bound.contains(&id) {
                        bound.push(id.clone());
                    }
                    self.inner.activate(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Finish(id) => {
                    bound.retain(|b| b != &id);
                    self.inner.finish(id);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Seal => {
                    self.inner.seal();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::Abort => {
                    self.inner.abort();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::IsAborted => {
                    self.respond(&writer, req_id, &Resp::Bool(self.inner.is_aborted()));
                }
                Req::PeerStateOf(id) => {
                    self.respond(&writer, req_id, &Resp::State(self.inner.peer_state(&id)));
                }
                Req::Peers => {
                    self.respond(&writer, req_id, &Resp::PeerList(self.inner.peers()));
                }
                Req::Activity => {
                    self.respond(&writer, req_id, &Resp::Counter(self.inner.activity()));
                }
                Req::Reseed(seed) => {
                    self.inner.reseed(seed);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::EnsurePeer(id) => {
                    let resp = match self.inner.ensure_peer(&id) {
                        Ok(()) => Resp::Unit,
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.respond(&writer, req_id, &resp);
                }
                Req::HasPendingFrom { to, from } => {
                    self.respond(
                        &writer,
                        req_id,
                        &Resp::Bool(self.inner.has_pending_from(&to, &from)),
                    );
                }
                Req::SetFaultPlan(plan) => {
                    self.inner.set_fault_plan(plan, clone_of::<M>);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::ClearFaultPlan => {
                    self.inner.clear_fault_plan();
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::GetFaultPlan => {
                    self.respond(&writer, req_id, &Resp::Plan(self.inner.fault_plan()));
                }
                Req::FaultLog => {
                    self.respond(&writer, req_id, &Resp::Log(self.inner.fault_log()));
                }
                Req::TakeFaultLog => {
                    self.respond(&writer, req_id, &Resp::Log(self.inner.take_fault_log()));
                }
                Req::Subscribe => {
                    subscribed.store(true, Ordering::SeqCst);
                    self.respond(&writer, req_id, &Resp::Unit);
                }
                Req::TryRecv { me, from } => {
                    let resp = match self.inner.try_recv(&me, &from) {
                        Ok(msg) => Resp::Msg(msg),
                        Err(e) => Resp::ChanErr(e),
                    };
                    self.respond(&writer, req_id, &resp);
                }
                // Blocking operations get a worker thread each, so one
                // parked rendezvous never blocks this reader loop.
                Req::Send {
                    from,
                    to,
                    msg,
                    timeout_ms,
                } => {
                    let shared = Arc::clone(self);
                    let writer = Arc::clone(&writer);
                    thread::spawn(move || {
                        let resp = match shared.inner.send(&from, &to, msg, deadline_of(timeout_ms))
                        {
                            Ok(()) => Resp::Unit,
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.respond(&writer, req_id, &resp);
                    });
                }
                Req::Select {
                    me,
                    arms,
                    timeout_ms,
                } => {
                    let shared = Arc::clone(self);
                    let writer = Arc::clone(&writer);
                    thread::spawn(move || {
                        let resp = match shared.inner.select(&me, arms, deadline_of(timeout_ms)) {
                            Ok(outcome) => Resp::Selected(outcome),
                            Err(e) => Resp::ChanErr(e),
                        };
                        shared.respond(&writer, req_id, &resp);
                    });
                }
            }
        }
        // The connection is gone: every participant it animated is too.
        for id in bound {
            self.inner.finish(id);
        }
    }

    /// Writes one `(req_id, resp)` frame; errors mean the connection is
    /// dying and are surfaced by its reader loop, not here.
    fn respond(&self, writer: &Mutex<TcpStream>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut w = writer.lock();
        let _ = write_frame(&mut *w, &payload);
    }

    /// Records `resp` in the session's replay cache, then writes it to
    /// the currently attached connection, if any. A severed session
    /// simply accumulates answers for the eventual replay.
    fn session_respond(&self, sess: &Session<I>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut st = sess.state.lock();
        st.in_flight.remove(&req_id);
        st.done.insert(req_id, payload.clone());
        write_to_session(&mut st, &payload);
    }

    /// Writes a response without caching it (heartbeats: never
    /// replayed, pruned nowhere).
    fn session_write_uncached(&self, sess: &Session<I>, req_id: u64, resp: &Resp<I, M>) {
        let mut payload = Vec::new();
        req_id.encode(&mut payload);
        resp.encode(&mut payload);
        let mut st = sess.state.lock();
        write_to_session(&mut st, &payload);
    }

    /// The inner transport's fault observer: streams the record to
    /// every subscriber (legacy and sequenced), then *enacts*
    /// connection faults by severing the session carrying the faulted
    /// edge.
    fn handle_fault(&self, rec: &FaultRecord<I>) {
        // Legacy push: unsequenced, best-effort, to subscribed
        // connections that never opened a session.
        let legacy: Vec<Arc<Mutex<TcpStream>>> = self
            .conns
            .lock()
            .iter()
            .filter(|c| c.subscribed.load(Ordering::SeqCst))
            .map(|c| Arc::clone(&c.writer))
            .collect();
        if !legacy.is_empty() {
            let mut payload = Vec::new();
            EVENT_REQ_ID.encode(&mut payload);
            Event::Fault(rec.clone()).encode(&mut payload);
            for writer in legacy {
                let mut w = writer.lock();
                let _ = write_frame(&mut *w, &payload);
            }
        }
        // Sequenced push per subscribed session, buffered for gapless
        // resume replay. Sequencing and writing happen under the state
        // lock so concurrent faults cannot reorder on the wire.
        let sessions: Vec<Arc<Session<I>>> = self.sessions.lock().values().cloned().collect();
        for sess in &sessions {
            let mut st = sess.state.lock();
            if !st.subscribed {
                continue;
            }
            st.next_event_seq += 1;
            let seq = st.next_event_seq;
            let mut payload = Vec::new();
            EVENT_REQ_ID.encode(&mut payload);
            Event::SeqFault {
                seq,
                record: rec.clone(),
            }
            .encode(&mut payload);
            st.events.push_back((seq, payload.clone()));
            if st.events.len() > EVENT_BUFFER_CAP {
                st.events.pop_front();
            }
            write_to_session(&mut st, &payload);
        }
        // Enact connection faults: tear down the connection of the
        // session animating the faulted edge (sender side first; a
        // hub-local sender severs the remote receiver instead). The
        // *decision* already lives in the inner transport's log, so the
        // chaos schedule replays identically on any transport — only
        // the enactment is connection-specific.
        if matches!(rec.kind, FaultKind::Sever | FaultKind::Partition) {
            let target = sessions
                .iter()
                .find(|s| s.state.lock().bound.contains(&rec.from))
                .or_else(|| {
                    sessions
                        .iter()
                        .find(|s| s.state.lock().bound.contains(&rec.to))
                });
            if let Some(sess) = target {
                let mut st = sess.state.lock();
                if rec.kind == FaultKind::Partition {
                    let dur = self
                        .inner
                        .fault_plan()
                        .map(|p| p.partition_duration())
                        .unwrap_or_default();
                    st.partitioned_until = Some(Instant::now() + dur);
                }
                st.last_seen = Instant::now();
                st.writer = None;
                if let Some(stream) = st.stream.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// Expires sessions whose lease lapsed while severed: their bound
    /// ids are finished — the pre-session crashed-peer semantics —
    /// and the expiry is surfaced to hub-local session observers.
    fn sweep_expired(&self) {
        let now = Instant::now();
        let expired: Vec<Arc<Session<I>>> = {
            let mut sessions = self.sessions.lock();
            let ids: Vec<u64> = sessions
                .iter()
                .filter(|(_, s)| {
                    let st = s.state.lock();
                    st.writer.is_none()
                        && st.partitioned_until.is_none_or(|t| t <= now)
                        && now.duration_since(st.last_seen) > self.lease
                })
                .map(|(id, _)| *id)
                .collect();
            ids.iter().filter_map(|id| sessions.remove(id)).collect()
        };
        for sess in expired {
            let bound = sess.state.lock().bound.clone();
            for id in bound {
                // Event before effect: anyone unblocked by the finish
                // (Terminated errors surfacing) must already be able to
                // observe the expiry on the session-event plane.
                self.inner
                    .note_session_event(&SessionEvent::LeaseExpired(id.clone()));
                self.inner.finish(id);
            }
        }
    }
}

/// Writes `payload` to the session's attached connection, if any. Write
/// errors are ignored: the reader loop notices the dying connection and
/// the replay cache already holds the answer.
fn write_to_session<I>(st: &mut SessionState<I>, payload: &[u8]) {
    if let Some(w) = st.writer.as_ref() {
        let mut w = w.lock();
        let _ = write_frame(&mut *w, payload);
    }
}

fn clone_of<M: Clone>(m: &M) -> M {
    m.clone()
}
