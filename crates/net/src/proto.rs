//! The RPC protocol spoken between [`SocketTransport`] and
//! [`TransportServer`]: [`Wire`] encodings for the channel-layer types
//! and the request/response envelope.
//!
//! Client → server frames carry `(req_id, Req)`; server → client frames
//! carry `(req_id, Resp)`. Request ids start at 1; the reserved id
//! [`EVENT_REQ_ID`] marks an unsolicited server push carrying a tagged
//! [`Event`] envelope, streamed to clients that sent
//! [`Req::Subscribe`]. Clients skip event frames they cannot decode, so
//! the envelope can grow new event kinds without breaking older spokes.
//!
//! [`SocketTransport`]: crate::SocketTransport
//! [`TransportServer`]: crate::TransportServer

use std::time::{Duration, Instant};

use script_chan::{
    Arm, ChanError, FaultKind, FaultPlan, FaultRecord, Outcome, PeerState, RendezvousRecord, Source,
};
use script_core::RoleId;

use crate::wire::{Reader, Wire, WireError};

/// Request id reserved for unsolicited server → client event frames.
pub const EVENT_REQ_ID: u64 = 0;

/// One RPC request: a [`Transport`](script_chan::Transport) method call
/// plus the connection-scoped `Bind`/`Subscribe` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Req<I, M> {
    /// Associates `I` with this connection: if the connection drops, the
    /// server finishes the id, so remote process death surfaces to other
    /// participants exactly like a crashed peer.
    Bind(I),
    /// `Transport::declare`.
    Declare(I),
    /// `Transport::activate` (also binds, like [`Req::Bind`]).
    Activate(I),
    /// `Transport::finish`.
    Finish(I),
    /// `Transport::seal`.
    Seal,
    /// `Transport::abort`.
    Abort,
    /// `Transport::is_aborted`.
    IsAborted,
    /// `Transport::peer_state`.
    PeerStateOf(I),
    /// `Transport::peers`.
    Peers,
    /// `Transport::activity`.
    Activity,
    /// `Transport::reseed`.
    Reseed(u64),
    /// `Transport::ensure_peer`.
    EnsurePeer(I),
    /// `Transport::has_pending_from`.
    HasPendingFrom {
        /// Receiving endpoint.
        to: I,
        /// Sending endpoint.
        from: I,
    },
    /// `Transport::set_fault_plan` (duplication uses the hub's clone).
    SetFaultPlan(FaultPlan),
    /// `Transport::clear_fault_plan`.
    ClearFaultPlan,
    /// `Transport::fault_plan`.
    GetFaultPlan,
    /// `Transport::fault_log`.
    FaultLog,
    /// `Transport::take_fault_log`.
    TakeFaultLog,
    /// Starts streaming fault-observer events to this connection.
    Subscribe,
    /// `Transport::send`. Deadlines cross the wire as remaining
    /// milliseconds (clocks are not shared between processes).
    Send {
        /// Sender.
        from: I,
        /// Receiver.
        to: I,
        /// Payload.
        msg: M,
        /// Remaining budget, `None` for no deadline.
        timeout_ms: Option<u64>,
    },
    /// `Transport::try_recv`.
    TryRecv {
        /// Receiving endpoint.
        me: I,
        /// Sending endpoint.
        from: I,
    },
    /// `Transport::select`.
    Select {
        /// Selecting endpoint.
        me: I,
        /// The guarded arms.
        arms: Vec<Arm<I, M>>,
        /// Remaining budget, `None` for no deadline.
        timeout_ms: Option<u64>,
    },
    /// Opens a new session: the hub replies [`Resp::Session`] with a
    /// fresh session id and lease. Sent exactly once, as the first
    /// frame on a brand-new spoke's first connection.
    HelloNew,
    /// Resumes an existing session after a severed connection: the hub
    /// replies [`Resp::Session`] (lease renewed, same id) if the lease
    /// is still live, [`Resp::SessionExpired`] if it lapsed, or
    /// [`Resp::Partitioned`] while a chaos-injected partition has the
    /// edge embargoed.
    HelloResume(u64),
    /// Spoke → hub keepalive. `acked` is the lowest request id the
    /// spoke may still replay; the hub prunes its replay-answer cache
    /// below it and renews the lease, answering [`Resp::Session`]
    /// (the hub → spoke half of the heartbeat).
    Heartbeat {
        /// Lowest un-acked request id; everything below is pruneable.
        acked: u64,
    },
    /// Starts (or resumes) streaming sequenced event pushes to this
    /// connection from the first event with sequence number strictly
    /// greater than `seq` — `0` for a fresh subscription, the last
    /// delivered sequence number on resume, making the merged stream
    /// gapless across severs.
    SubscribeFrom {
        /// Last event sequence number already delivered to this spoke.
        seq: u64,
    },
}

/// One RPC response.
#[derive(Debug, Clone, PartialEq)]
pub enum Resp<I, M> {
    /// `Ok(())`.
    Unit,
    /// A boolean answer.
    Bool(bool),
    /// A peer's lifecycle state.
    State(Option<PeerState>),
    /// All peers and their states.
    PeerList(Vec<(I, PeerState)>),
    /// The activity counter.
    Counter(u64),
    /// `try_recv`'s optional message.
    Msg(Option<M>),
    /// A fired selection arm.
    Selected(Outcome<I, M>),
    /// The attached fault plan, if any.
    Plan(Option<FaultPlan>),
    /// A fault log snapshot.
    Log(Vec<FaultRecord<I>>),
    /// The operation failed with a channel error.
    ChanErr(ChanError<I>),
    /// Session granted or renewed: the spoke's session id plus the
    /// lease duration in milliseconds. Answers [`Req::HelloNew`],
    /// [`Req::HelloResume`] and [`Req::Heartbeat`].
    Session {
        /// The session id to present on future resumes.
        session: u64,
        /// Lease duration in milliseconds; the hub keeps the session's
        /// state alive this long after the connection drops.
        lease_ms: u64,
    },
    /// The presented session's lease lapsed; its bound ids were
    /// finished hub-side and its state discarded. The spoke must
    /// degrade to crashed-peer semantics.
    SessionExpired,
    /// A chaos-injected partition currently embargoes this spoke's
    /// edge; retry the resume after roughly `remaining_ms`.
    Partitioned {
        /// Milliseconds until the partition heals.
        remaining_ms: u64,
    },
}

/// An unsolicited hub → client push, carried on [`EVENT_REQ_ID`]
/// frames to connections that subscribed with [`Req::Subscribe`].
///
/// The envelope is tagged so new event kinds append without
/// renumbering; a client that does not know a tag skips the frame
/// (forward compatibility). The hub forwards these for performances
/// placed remotely, letting the owning engine keep one merged,
/// causally consistent telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<I> {
    /// The hub's chaos layer injected a fault (tag 0). Legacy
    /// unsequenced form, kept for spokes that subscribed with a plain
    /// [`Req::Subscribe`].
    Fault(FaultRecord<I>),
    /// A sequenced fault push (tag 1): `seq` numbers the hub's event
    /// stream per session, strictly increasing from 1, so a resumed
    /// spoke can both detect gaps and discard replayed duplicates.
    SeqFault {
        /// Position in the session's event stream.
        seq: u64,
        /// The injected fault.
        record: FaultRecord<I>,
    },
    /// The hub is shutting down for good (tag 2). A spoke receiving
    /// this fails fast — its session cannot be resumed, so redialing
    /// would only burn the retry budget against a dead address.
    Closing,
    /// A batch of consecutive sequenced fault pushes (tag 3): record
    /// `i` carries stream sequence `first_seq + i`. **Decode-only
    /// legacy**: resume replay emits [`Event::SeqStream`] (tag 5, which
    /// also carries rendezvous records) since the stream unified; this
    /// form is retained so frames from older hubs still parse — never
    /// emitted, never removed (append-only tag space).
    SeqFaults {
        /// Stream sequence of `records[0]`.
        first_seq: u64,
        /// The consecutive fault records.
        records: Vec<FaultRecord<I>>,
    },
    /// A sequenced rendezvous push (tag 4): a completed rendezvous on
    /// the hub, numbered in the *same* per-session stream as
    /// [`Event::SeqFault`] — faults and rendezvous share one gapless
    /// sequence so a single high-water mark dedups both.
    SeqRendezvous {
        /// Position in the session's event stream.
        seq: u64,
        /// The completed rendezvous.
        record: RendezvousRecord<I>,
    },
    /// A batch of consecutive sequenced stream items (tag 5): item `i`
    /// carries stream sequence `first_seq + i`. Supersedes
    /// [`Event::SeqFaults`] for resume replay once rendezvous records
    /// ride the stream; the older batch form stays decodable.
    SeqStream {
        /// Stream sequence of `items[0]`.
        first_seq: u64,
        /// The consecutive stream items.
        items: Vec<StreamItem<I>>,
    },
}

/// One item of a session's sequenced event stream: the tagged union
/// buffered hub-side for gapless resume replay. Append-only tag space,
/// like [`Event`] itself.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem<I> {
    /// An injected fault (tag 0).
    Fault(FaultRecord<I>),
    /// A completed rendezvous (tag 1).
    Rendezvous(RendezvousRecord<I>),
}

/// Remaining-millisecond budget for a deadline, measured now. Saturates
/// at zero: an already-expired deadline still crosses the wire and
/// expires server-side.
pub fn timeout_ms_of(deadline: Option<Instant>) -> Option<u64> {
    deadline.map(|d| {
        d.saturating_duration_since(Instant::now())
            .as_millis()
            .min(u64::MAX as u128) as u64
    })
}

/// Re-derives a local deadline from a remaining-millisecond budget.
pub fn deadline_of(timeout_ms: Option<u64>) -> Option<Instant> {
    timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

impl Wire for PeerState {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PeerState::Expected => 0,
            PeerState::Active => 1,
            PeerState::Done => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(PeerState::Expected),
            1 => Ok(PeerState::Active),
            2 => Ok(PeerState::Done),
            _ => Err(WireError::Invalid("peer-state tag")),
        }
    }
}

impl<I: Wire> Wire for Source<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Source::Of(p) => {
                out.push(0);
                p.encode(out);
            }
            Source::Any => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Source::Of(I::decode(r)?)),
            1 => Ok(Source::Any),
            _ => Err(WireError::Invalid("source tag")),
        }
    }
}

impl<I: Wire, M: Wire> Wire for Arm<I, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Arm::Recv(src) => {
                out.push(0);
                src.encode(out);
            }
            Arm::Send { to, msg } => {
                out.push(1);
                to.encode(out);
                msg.encode(out);
            }
            Arm::Watch(p) => {
                out.push(2);
                p.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Arm::Recv(Source::decode(r)?)),
            1 => Ok(Arm::Send {
                to: I::decode(r)?,
                msg: M::decode(r)?,
            }),
            2 => Ok(Arm::Watch(I::decode(r)?)),
            _ => Err(WireError::Invalid("arm tag")),
        }
    }
}

impl<I: Wire, M: Wire> Wire for Outcome<I, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Outcome::Received { arm, from, msg } => {
                out.push(0);
                arm.encode(out);
                from.encode(out);
                msg.encode(out);
            }
            Outcome::Sent { arm, to } => {
                out.push(1);
                arm.encode(out);
                to.encode(out);
            }
            Outcome::Terminated { arm, peer } => {
                out.push(2);
                arm.encode(out);
                peer.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Outcome::Received {
                arm: usize::decode(r)?,
                from: I::decode(r)?,
                msg: M::decode(r)?,
            }),
            1 => Ok(Outcome::Sent {
                arm: usize::decode(r)?,
                to: I::decode(r)?,
            }),
            2 => Ok(Outcome::Terminated {
                arm: usize::decode(r)?,
                peer: I::decode(r)?,
            }),
            _ => Err(WireError::Invalid("outcome tag")),
        }
    }
}

impl<I: Wire> Wire for ChanError<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChanError::Terminated(p) => {
                out.push(0);
                p.encode(out);
            }
            ChanError::AllTerminated => out.push(1),
            ChanError::Aborted => out.push(2),
            ChanError::Timeout => out.push(3),
            ChanError::Unknown(p) => {
                out.push(4);
                p.encode(out);
            }
            ChanError::Myself => out.push(5),
            ChanError::EmptySelect => out.push(6),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ChanError::Terminated(I::decode(r)?)),
            1 => Ok(ChanError::AllTerminated),
            2 => Ok(ChanError::Aborted),
            3 => Ok(ChanError::Timeout),
            4 => Ok(ChanError::Unknown(I::decode(r)?)),
            5 => Ok(ChanError::Myself),
            6 => Ok(ChanError::EmptySelect),
            _ => Err(WireError::Invalid("chan-error tag")),
        }
    }
}

impl Wire for FaultKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            FaultKind::Drop => 0,
            FaultKind::Delay => 1,
            FaultKind::Duplicate => 2,
            FaultKind::Crash => 3,
            FaultKind::Sever => 4,
            FaultKind::Partition => 5,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(FaultKind::Drop),
            1 => Ok(FaultKind::Delay),
            2 => Ok(FaultKind::Duplicate),
            3 => Ok(FaultKind::Crash),
            4 => Ok(FaultKind::Sever),
            5 => Ok(FaultKind::Partition),
            _ => Err(WireError::Invalid("fault-kind tag")),
        }
    }
}

impl<I: Wire> Wire for FaultRecord<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FaultRecord {
            kind: FaultKind::decode(r)?,
            from: I::decode(r)?,
            to: I::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

impl<I: Wire> Wire for RendezvousRecord<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.label.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RendezvousRecord {
            from: I::decode(r)?,
            to: I::decode(r)?,
            label: Option::<String>::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

impl<I: Wire> Wire for StreamItem<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StreamItem::Fault(record) => {
                out.push(0);
                record.encode(out);
            }
            StreamItem::Rendezvous(record) => {
                out.push(1);
                record.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(StreamItem::Fault(FaultRecord::decode(r)?)),
            1 => Ok(StreamItem::Rendezvous(RendezvousRecord::decode(r)?)),
            _ => Err(WireError::Invalid("stream-item tag")),
        }
    }
}

impl<I: Wire> Wire for Event<I> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Append-only tag space: never renumber.
        match self {
            Event::Fault(record) => {
                out.push(0);
                record.encode(out);
            }
            Event::SeqFault { seq, record } => {
                out.push(1);
                seq.encode(out);
                record.encode(out);
            }
            Event::Closing => out.push(2),
            Event::SeqFaults { first_seq, records } => {
                out.push(3);
                first_seq.encode(out);
                records.encode(out);
            }
            Event::SeqRendezvous { seq, record } => {
                out.push(4);
                seq.encode(out);
                record.encode(out);
            }
            Event::SeqStream { first_seq, items } => {
                out.push(5);
                first_seq.encode(out);
                items.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Event::Fault(FaultRecord::decode(r)?)),
            1 => Ok(Event::SeqFault {
                seq: u64::decode(r)?,
                record: FaultRecord::decode(r)?,
            }),
            2 => Ok(Event::Closing),
            3 => Ok(Event::SeqFaults {
                first_seq: u64::decode(r)?,
                records: Vec::<FaultRecord<I>>::decode(r)?,
            }),
            4 => Ok(Event::SeqRendezvous {
                seq: u64::decode(r)?,
                record: RendezvousRecord::decode(r)?,
            }),
            5 => Ok(Event::SeqStream {
                first_seq: u64::decode(r)?,
                items: Vec::<StreamItem<I>>::decode(r)?,
            }),
            _ => Err(WireError::Invalid("event tag")),
        }
    }
}

impl Wire for FaultPlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed().encode(out);
        self.drop_probability().encode(out);
        self.delay_probability().encode(out);
        self.delay().encode(out);
        self.duplicate_probability().encode(out);
        self.crash_probability().encode(out);
        self.crash_step().encode(out);
        // Connection-fault fields append after every message-fault
        // field so offsets of the original layout never move.
        self.sever_probability().encode(out);
        self.partition_probability().encode(out);
        self.partition_duration().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seed = u64::decode(r)?;
        let drop_p = f64::decode(r)?;
        let delay_p = f64::decode(r)?;
        let delay = Duration::decode(r)?;
        let dup_p = f64::decode(r)?;
        let crash_p = f64::decode(r)?;
        let crash_step = u64::decode(r)?;
        let sever_p = f64::decode(r)?;
        let partition_p = f64::decode(r)?;
        let partition = Duration::decode(r)?;
        for p in [drop_p, delay_p, dup_p, crash_p, sever_p, partition_p] {
            if !(0.0..=1.0).contains(&p) {
                return Err(WireError::Invalid("fault probability out of range"));
            }
        }
        let mut plan = FaultPlan::new(seed)
            .with_drop(drop_p)
            .with_delay(delay_p, delay)
            .with_duplicate(dup_p)
            .with_sever(sever_p)
            .with_partition(partition_p, partition);
        if crash_step > 0 {
            plan = plan.with_crash(crash_p, crash_step);
        } else if crash_p != 0.0 {
            return Err(WireError::Invalid("crash probability without a step"));
        }
        Ok(plan)
    }
}

impl Wire for RoleId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name().to_string().encode(out);
        self.index().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = String::decode(r)?;
        Ok(match Option::<usize>::decode(r)? {
            Some(i) => RoleId::indexed(name, i),
            None => RoleId::new(name),
        })
    }
}

impl<I: Wire, M: Wire> Wire for Req<I, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Req::Bind(id) => {
                out.push(0);
                id.encode(out);
            }
            Req::Declare(id) => {
                out.push(1);
                id.encode(out);
            }
            Req::Activate(id) => {
                out.push(2);
                id.encode(out);
            }
            Req::Finish(id) => {
                out.push(3);
                id.encode(out);
            }
            Req::Seal => out.push(4),
            Req::Abort => out.push(5),
            Req::IsAborted => out.push(6),
            Req::PeerStateOf(id) => {
                out.push(7);
                id.encode(out);
            }
            Req::Peers => out.push(8),
            Req::Activity => out.push(9),
            Req::Reseed(seed) => {
                out.push(10);
                seed.encode(out);
            }
            Req::EnsurePeer(id) => {
                out.push(11);
                id.encode(out);
            }
            Req::HasPendingFrom { to, from } => {
                out.push(12);
                to.encode(out);
                from.encode(out);
            }
            Req::SetFaultPlan(plan) => {
                out.push(13);
                plan.encode(out);
            }
            Req::ClearFaultPlan => out.push(14),
            Req::GetFaultPlan => out.push(15),
            Req::FaultLog => out.push(16),
            Req::TakeFaultLog => out.push(17),
            Req::Subscribe => out.push(18),
            Req::Send {
                from,
                to,
                msg,
                timeout_ms,
            } => {
                out.push(19);
                from.encode(out);
                to.encode(out);
                msg.encode(out);
                timeout_ms.encode(out);
            }
            Req::TryRecv { me, from } => {
                out.push(20);
                me.encode(out);
                from.encode(out);
            }
            Req::Select {
                me,
                arms,
                timeout_ms,
            } => {
                out.push(21);
                me.encode(out);
                arms.encode(out);
                timeout_ms.encode(out);
            }
            Req::HelloNew => out.push(22),
            Req::HelloResume(session) => {
                out.push(23);
                session.encode(out);
            }
            Req::Heartbeat { acked } => {
                out.push(24);
                acked.encode(out);
            }
            Req::SubscribeFrom { seq } => {
                out.push(25);
                seq.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => Req::Bind(I::decode(r)?),
            1 => Req::Declare(I::decode(r)?),
            2 => Req::Activate(I::decode(r)?),
            3 => Req::Finish(I::decode(r)?),
            4 => Req::Seal,
            5 => Req::Abort,
            6 => Req::IsAborted,
            7 => Req::PeerStateOf(I::decode(r)?),
            8 => Req::Peers,
            9 => Req::Activity,
            10 => Req::Reseed(u64::decode(r)?),
            11 => Req::EnsurePeer(I::decode(r)?),
            12 => Req::HasPendingFrom {
                to: I::decode(r)?,
                from: I::decode(r)?,
            },
            13 => Req::SetFaultPlan(FaultPlan::decode(r)?),
            14 => Req::ClearFaultPlan,
            15 => Req::GetFaultPlan,
            16 => Req::FaultLog,
            17 => Req::TakeFaultLog,
            18 => Req::Subscribe,
            19 => Req::Send {
                from: I::decode(r)?,
                to: I::decode(r)?,
                msg: M::decode(r)?,
                timeout_ms: Option::<u64>::decode(r)?,
            },
            20 => Req::TryRecv {
                me: I::decode(r)?,
                from: I::decode(r)?,
            },
            21 => Req::Select {
                me: I::decode(r)?,
                arms: Vec::<Arm<I, M>>::decode(r)?,
                timeout_ms: Option::<u64>::decode(r)?,
            },
            22 => Req::HelloNew,
            23 => Req::HelloResume(u64::decode(r)?),
            24 => Req::Heartbeat {
                acked: u64::decode(r)?,
            },
            25 => Req::SubscribeFrom {
                seq: u64::decode(r)?,
            },
            _ => return Err(WireError::Invalid("request tag")),
        })
    }
}

impl<I: Wire, M: Wire> Wire for Resp<I, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Resp::Unit => out.push(0),
            Resp::Bool(b) => {
                out.push(1);
                b.encode(out);
            }
            Resp::State(s) => {
                out.push(2);
                s.encode(out);
            }
            Resp::PeerList(ps) => {
                out.push(3);
                ps.encode(out);
            }
            Resp::Counter(c) => {
                out.push(4);
                c.encode(out);
            }
            Resp::Msg(m) => {
                out.push(5);
                m.encode(out);
            }
            Resp::Selected(o) => {
                out.push(6);
                o.encode(out);
            }
            Resp::Plan(p) => {
                out.push(7);
                p.encode(out);
            }
            Resp::Log(l) => {
                out.push(8);
                l.encode(out);
            }
            Resp::ChanErr(e) => {
                out.push(9);
                e.encode(out);
            }
            Resp::Session { session, lease_ms } => {
                out.push(10);
                session.encode(out);
                lease_ms.encode(out);
            }
            Resp::SessionExpired => out.push(11),
            Resp::Partitioned { remaining_ms } => {
                out.push(12);
                remaining_ms.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => Resp::Unit,
            1 => Resp::Bool(bool::decode(r)?),
            2 => Resp::State(Option::<PeerState>::decode(r)?),
            3 => Resp::PeerList(Vec::<(I, PeerState)>::decode(r)?),
            4 => Resp::Counter(u64::decode(r)?),
            5 => Resp::Msg(Option::<M>::decode(r)?),
            6 => Resp::Selected(Outcome::decode(r)?),
            7 => Resp::Plan(Option::<FaultPlan>::decode(r)?),
            8 => Resp::Log(Vec::<FaultRecord<I>>::decode(r)?),
            9 => Resp::ChanErr(ChanError::decode(r)?),
            10 => Resp::Session {
                session: u64::decode(r)?,
                lease_ms: u64::decode(r)?,
            },
            11 => Resp::SessionExpired,
            12 => Resp::Partitioned {
                remaining_ms: u64::decode(r)?,
            },
            _ => return Err(WireError::Invalid("response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn chan_types_roundtrip() {
        roundtrip(PeerState::Expected);
        roundtrip(PeerState::Done);
        roundtrip(Source::Of(String::from("a")));
        roundtrip(Source::<String>::Any);
        roundtrip(Outcome::<String, u64>::Received {
            arm: 2,
            from: String::from("a"),
            msg: 7,
        });
        roundtrip(ChanError::Terminated(String::from("x")));
        roundtrip(ChanError::<String>::AllTerminated);
        roundtrip(FaultRecord {
            kind: FaultKind::Duplicate,
            from: String::from("a"),
            to: String::from("b"),
            seq: 11,
        });
        roundtrip(FaultRecord {
            kind: FaultKind::Sever,
            from: String::from("a"),
            to: String::from("b"),
            seq: 4,
        });
        roundtrip(FaultRecord {
            kind: FaultKind::Partition,
            from: String::from("b"),
            to: String::from("a"),
            seq: 5,
        });
        roundtrip(RoleId::new("sender"));
        roundtrip(RoleId::indexed("recipient", 3));
    }

    #[test]
    fn event_envelope_roundtrips_and_rejects_unknown_tags() {
        roundtrip(Event::Fault(FaultRecord {
            kind: FaultKind::Drop,
            from: String::from("a"),
            to: String::from("b"),
            seq: 3,
        }));
        roundtrip(Event::SeqFault {
            seq: 42,
            record: FaultRecord {
                kind: FaultKind::Sever,
                from: String::from("a"),
                to: String::from("b"),
                seq: 3,
            },
        });
        roundtrip(Event::SeqRendezvous {
            seq: 7,
            record: RendezvousRecord {
                from: String::from("a"),
                to: String::from("b"),
                label: Some(String::from("ping")),
                seq: 2,
            },
        });
        roundtrip(Event::SeqStream {
            first_seq: 11,
            items: vec![
                StreamItem::Fault(FaultRecord {
                    kind: FaultKind::Delay,
                    from: String::from("a"),
                    to: String::from("b"),
                    seq: 0,
                }),
                StreamItem::Rendezvous(RendezvousRecord {
                    from: String::from("b"),
                    to: String::from("a"),
                    label: None,
                    seq: 1,
                }),
            ],
        });
        // A tag this build does not know must decode to an error (the
        // client skips the frame), never panic.
        assert!(Event::<String>::from_bytes(&[9]).is_err());
        assert!(StreamItem::<String>::from_bytes(&[7]).is_err());
    }

    #[test]
    fn legacy_seq_faults_frames_still_parse() {
        // `Event::SeqFaults` (tag 3) is retired from every emit path —
        // resume replay rides `Event::SeqStream` — but frames recorded
        // by older hubs must keep decoding. The bytes here are written
        // out by hand against the frozen layout (tag, first_seq, record
        // count, then each record as kind/from/to/seq) so a codec
        // regression cannot hide behind a matching encoder change.
        let mut frame = vec![3u8]; // tag 3: SeqFaults
        frame.extend_from_slice(&41u64.to_be_bytes()); // first_seq
        frame.extend_from_slice(&2u64.to_be_bytes()); // record count
        for (kind, seq) in [(0u8, 7u64), (4u8, 8u64)] {
            frame.push(kind); // FaultKind tag: Drop, then Sever
            frame.extend_from_slice(&1u64.to_be_bytes()); // from: len 1
            frame.push(b'a');
            frame.extend_from_slice(&1u64.to_be_bytes()); // to: len 1
            frame.push(b'b');
            frame.extend_from_slice(&seq.to_be_bytes());
        }
        let decoded = Event::<String>::from_bytes(&frame).unwrap();
        assert_eq!(
            decoded,
            Event::SeqFaults {
                first_seq: 41,
                records: vec![
                    FaultRecord {
                        kind: FaultKind::Drop,
                        from: String::from("a"),
                        to: String::from("b"),
                        seq: 7,
                    },
                    FaultRecord {
                        kind: FaultKind::Sever,
                        from: String::from("a"),
                        to: String::from("b"),
                        seq: 8,
                    },
                ],
            }
        );
        // Truncating anywhere inside the batch is corruption, not a
        // panic.
        for cut in 1..frame.len() {
            assert!(Event::<String>::from_bytes(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn fault_plans_roundtrip_exactly() {
        roundtrip(FaultPlan::new(7));
        roundtrip(
            FaultPlan::new(9)
                .with_drop(0.25)
                .with_delay(0.5, Duration::from_micros(300))
                .with_duplicate(0.1)
                .with_crash(0.75, 4),
        );
        roundtrip(
            FaultPlan::new(12)
                .with_sever(0.2)
                .with_partition(0.1, Duration::from_millis(40)),
        );
    }

    #[test]
    fn corrupt_fault_plans_are_rejected() {
        let mut bytes = FaultPlan::new(1).with_drop(0.5).to_bytes();
        // Overwrite the drop probability with 2.0 (bytes 8..16).
        bytes[8..16].copy_from_slice(&2.0f64.to_bits().to_be_bytes());
        assert!(matches!(
            FaultPlan::from_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn corrupt_sever_probability_is_rejected() {
        let plan = FaultPlan::new(2).with_sever(0.5);
        let mut bytes = plan.to_bytes();
        // The sever probability sits right after the crash step: seed
        // (8) + drop (8) + delay_p (8) + delay Duration + dup_p (8) +
        // crash_p (8) + crash_step (8). Locate it from the end instead:
        // sever_p then partition_p then partition Duration.
        let dur_len = Duration::from_millis(0).to_bytes().len();
        let off = bytes.len() - dur_len - 16;
        bytes[off..off + 8].copy_from_slice(&2.0f64.to_bits().to_be_bytes());
        assert!(matches!(
            FaultPlan::from_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn session_frames_roundtrip() {
        roundtrip(Req::<String, u64>::HelloNew);
        roundtrip(Req::<String, u64>::HelloResume(17));
        roundtrip(Req::<String, u64>::Heartbeat { acked: 23 });
        roundtrip(Req::<String, u64>::SubscribeFrom { seq: 9 });
        roundtrip(Resp::<String, u64>::Session {
            session: 17,
            lease_ms: 1000,
        });
        roundtrip(Resp::<String, u64>::SessionExpired);
        roundtrip(Resp::<String, u64>::Partitioned { remaining_ms: 35 });
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(Req::<String, u64>::Bind(String::from("a")));
        roundtrip(Req::<String, u64>::Seal);
        roundtrip(Req::<String, u64>::Send {
            from: String::from("a"),
            to: String::from("b"),
            msg: 9,
            timeout_ms: Some(250),
        });
        roundtrip(Req::<String, u64>::Select {
            me: String::from("a"),
            arms: vec![
                Arm::recv_any(),
                Arm::send(String::from("b"), 3),
                Arm::watch(String::from("c")),
            ],
            timeout_ms: None,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip(Resp::<String, u64>::Unit);
        roundtrip(Resp::<String, u64>::PeerList(vec![
            (String::from("a"), PeerState::Active),
            (String::from("b"), PeerState::Done),
        ]));
        roundtrip(Resp::<String, u64>::Selected(Outcome::Sent {
            arm: 1,
            to: String::from("b"),
        }));
        roundtrip(Resp::<String, u64>::ChanErr(ChanError::Timeout));
    }
}
