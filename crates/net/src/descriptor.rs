//! Signed performance descriptors: the hand-off from control plane to
//! data plane.
//!
//! When the matcher fleet places a performance, the owning control hub
//! issues every participant one [`PerfDescriptor`]: the performance id,
//! the epoch of the placement, the chaos seed the data plane must
//! replay, the address of the performance's *home node* (the data hub
//! that hosts its rendezvous state), and the per-role peer address
//! table. Spokes then dial the home node directly — the matcher is out
//! of the data path — falling back to a relay through a control hub
//! when the direct dial fails (see [`crate::fleet`]).
//!
//! Descriptors are authenticated with a keyed MAC over their canonical
//! wire encoding so a spoke can reject a descriptor that was not minted
//! by its fleet (or was corrupted in transit). The MAC is a keyed
//! FNV-1a/SplitMix construction — the workspace vendors no
//! cryptography, and the threat model here is a *testbed* (misrouted or
//! bit-flipped frames, not an adversary); a production deployment would
//! swap in an HMAC without changing the wire layout, which reserves a
//! full 8-byte tag field.

use crate::wire::{Reader, Wire, WireError};

/// One signed data-plane placement, minted by the owning control hub at
/// initiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfDescriptor {
    /// The performance this descriptor places.
    pub perf: u64,
    /// Placement epoch: bumped each time the fleet re-places the
    /// performance, so stale descriptors are detectable.
    pub epoch: u64,
    /// The chaos seed the home node's fault plan must replay, `None`
    /// for a fault-free performance. Carrying the seed in the
    /// descriptor is what keeps federated replay bit-identical: every
    /// participant learns the same seed from the same signed artifact.
    pub chaos_seed: Option<u64>,
    /// Address of the home node hosting this performance's rendezvous
    /// state (`host:port`, dialable by every participant).
    pub home: String,
    /// Per-role peer addresses: `(role name, address)` for each
    /// enrolled participant, in placement order.
    pub peers: Vec<(String, String)>,
    /// Keyed MAC over every field above; zero until
    /// [`PerfDescriptor::sign`] runs.
    pub sig: u64,
}

impl PerfDescriptor {
    /// An unsigned descriptor (signature zero).
    pub fn new(perf: u64, epoch: u64, chaos_seed: Option<u64>, home: String) -> Self {
        Self {
            perf,
            epoch,
            chaos_seed,
            home,
            peers: Vec::new(),
            sig: 0,
        }
    }

    /// The canonical bytes the MAC covers: every field except the
    /// signature itself, in wire order.
    fn mac_input(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.perf.encode(&mut out);
        self.epoch.encode(&mut out);
        self.chaos_seed.encode(&mut out);
        self.home.encode(&mut out);
        self.peers.encode(&mut out);
        out
    }

    /// Computes and stores the MAC under `secret`, returning `self`.
    pub fn sign(mut self, secret: u64) -> Self {
        self.sig = mac(secret, &self.mac_input());
        self
    }

    /// Whether the stored MAC matches a recomputation under `secret`.
    pub fn verify(&self, secret: u64) -> bool {
        self.sig == mac(secret, &self.mac_input())
    }
}

/// Keyed FNV-1a over `bytes` with a SplitMix avalanche finish — the
/// same non-cryptographic construction the chaos layer uses for its
/// decision hashes, keyed here instead of seeded.
fn mac(secret: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ secret.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix finish so nearby inputs diverge in every output bit.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Wire for PerfDescriptor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.perf.encode(out);
        self.epoch.encode(out);
        self.chaos_seed.encode(out);
        self.home.encode(out);
        self.peers.encode(out);
        self.sig.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PerfDescriptor {
            perf: u64::decode(r)?,
            epoch: u64::decode(r)?,
            chaos_seed: Option::<u64>::decode(r)?,
            home: String::decode(r)?,
            peers: Vec::<(String, String)>::decode(r)?,
            sig: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfDescriptor {
        let mut d = PerfDescriptor::new(7, 2, Some(0xC0FFEE), String::from("127.0.0.1:9000"));
        d.peers = vec![
            (String::from("caster"), String::from("127.0.0.1:9001")),
            (String::from("recipient"), String::from("127.0.0.1:9002")),
        ];
        d
    }

    #[test]
    fn descriptors_roundtrip() {
        let d = sample().sign(0x5EC7);
        assert_eq!(PerfDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn signature_verifies_under_the_minting_secret_only() {
        let d = sample().sign(11);
        assert!(d.verify(11));
        assert!(!d.verify(12));
        assert!(!sample().verify(11), "unsigned descriptor never verifies");
    }

    #[test]
    fn any_field_tamper_breaks_the_signature() {
        let d = sample().sign(11);
        let mut t = d.clone();
        t.perf += 1;
        assert!(!t.verify(11));
        let mut t = d.clone();
        t.epoch += 1;
        assert!(!t.verify(11));
        let mut t = d.clone();
        t.chaos_seed = None;
        assert!(!t.verify(11));
        let mut t = d.clone();
        t.home = String::from("127.0.0.1:9999");
        assert!(!t.verify(11));
        let mut t = d.clone();
        t.peers.pop();
        assert!(!t.verify(11));
    }

    #[test]
    fn truncated_descriptors_are_rejected() {
        let bytes = sample().sign(3).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                PerfDescriptor::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
