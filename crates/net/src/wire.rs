//! The wire value encoding: a minimal, explicit, stable byte format.
//!
//! The workspace's vendored `serde` is a derive-compatible *marker*
//! subset — it ships no serialization format — so the socket transport
//! defines its own: every value is encoded by a [`Wire`] impl into
//! big-endian, length-prefixed bytes with one-byte enum tags. The
//! format carries no schema and no versioning; both ends of a
//! connection are expected to run the same build, which is the
//! deployment model for a reproduction testbed (and is asserted by the
//! conformance suite rather than assumed).
//!
//! Decoding is total: malformed input — truncated values, out-of-range
//! tags, lengths exceeding [`MAX_FRAME`], non-UTF-8 strings — surfaces
//! a [`WireError`], never a panic, and a decoder never allocates
//! proportionally to an attacker-supplied length before the bytes
//! actually exist.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Upper bound, in bytes, on one frame (and on any length field inside
/// one). Large enough for any control message plus a generous payload;
/// small enough that a corrupt length prefix cannot trigger a huge
/// allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Error produced by [`Wire::decode`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended in the middle of a value.
    Truncated,
    /// A declared length exceeds [`MAX_FRAME`].
    Oversized(u64),
    /// A tag or invariant check failed (the message names it).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-value"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds MAX_FRAME"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl Error for WireError {}

/// A cursor over the bytes of one frame.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// A value with a stable byte encoding (see the module docs).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must consume `buf` exactly.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Invalid("trailing bytes after value"));
        }
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.take(1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let b = r.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let b = r.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::decode(r)?).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
        self.subsec_nanos().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let secs = u64::decode(r)?;
        let nanos = u32::decode(r)?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Invalid("subsecond nanos out of range"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        if len > MAX_FRAME as u64 {
            return Err(WireError::Oversized(len));
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        if len > MAX_FRAME as u64 {
            return Err(WireError::Oversized(len));
        }
        // Grown per element: the count is attacker-controlled, the
        // remaining bytes are not.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
        roundtrip(f64::NAN.to_bits()); // NaN via bits; f64 NaN != NaN
        roundtrip(Duration::new(3, 999_999_999));
        roundtrip(String::from("héllo"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((String::from("k"), 7u64));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 12345u64.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                u64::from_bytes(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocating() {
        let mut evil = Vec::new();
        (u64::MAX).encode(&mut evil); // string length far beyond MAX_FRAME
        assert!(matches!(
            String::from_bytes(&evil),
            Err(WireError::Oversized(_))
        ));
        assert!(matches!(
            Vec::<u64>::from_bytes(&evil),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn huge_vec_count_with_no_bytes_is_truncated() {
        let mut evil = Vec::new();
        (MAX_FRAME as u64).encode(&mut evil); // plausible count, no elements
        assert_eq!(Vec::<u64>::from_bytes(&evil), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(bool::from_bytes(&[2]), Err(WireError::Invalid(_))));
        assert!(matches!(
            Option::<u8>::from_bytes(&[7]),
            Err(WireError::Invalid(_))
        ));
    }
}
